"""Lockdown of the adaptive lockstep quantum and inline shared calls.

Three layers, three kinds of test:

* **Footprint units**: the shared-footprint analysis
  (:mod:`repro.vliw.codegen.footprint`) must flag exactly the
  device-carrying packets as risky, report conservative lower bounds
  everywhere else, and cap fully-private programs at
  :data:`~repro.vliw.codegen.footprint.PRIVATE_CAP`.
* **Barrier units**: :class:`~repro.vliw.sync.AdaptiveLockstepBarrier`
  driven with scripted fakes — the progress-only gate (a window opens
  unless a *frontier* member's very next packet may be shared), the
  forced normal round after a fully-deferred window, the gate back-off,
  and the fallback to plain ``quantum=1`` rounds when any member lacks
  the adaptive protocol.
* **The lockstep differential contract**: for every communicating
  shared workload, every backend, and 2–4 cores, the adaptive mode
  must produce *bit-identical observables* to the ``quantum=1``
  baseline — per-core exits and cycle counts, the cycle-stamped
  shared-segment trace, arbitration conflicts and contention stalls —
  while executing orders of magnitude fewer arbitration rounds.  Plus
  fuzz-oracle sweeps of hand-written multicore sources under both
  modes, so the reference-ISS anchor holds in each.
"""

import pytest

from repro.arch.model import TargetArch
from repro.errors import SimulationError
from repro.programs.registry import (
    build,
    expected_shared_exits,
    shared_program_names,
)
from repro.translator.driver import translate
from repro.vliw.codegen.footprint import PRIVATE_CAP, shared_footprint
from repro.vliw.multicore import MultiCoreSoC
from repro.vliw.sync import AdaptiveLockstepBarrier, LockstepBarrier

LEVEL = 2
BDS = TargetArch().branch_delay_slots


@pytest.fixture(scope="module")
def translated():
    cache = {}

    def get(name, level=LEVEL):
        key = (name, level)
        if key not in cache:
            cache[key] = translate(build(name), level=level).program
        return cache[key]

    return get


# -- footprint analysis ------------------------------------------------------


class TestSharedFootprint:
    def test_compute_kernel_is_mostly_far_from_risky(self, translated):
        """gcd exits through the exit device, so it is *not* fully
        private — but its packets away from the exit path must report
        bounds above the single-cycle floor, and every bound must stay
        within the cap."""
        fp = shared_footprint(translated("gcd"), BDS)
        assert not fp.fully_private  # the exit device access is risky
        assert any(d > 1 for d in fp.dist)
        assert all(0 <= d <= PRIVATE_CAP for d in fp.dist)

    def test_risky_iff_device_flagged(self, translated):
        program = translated("mbox_pingpong")
        fp = shared_footprint(program, BDS)
        for index, packet in enumerate(program.packets):
            assert fp.risky[index] == any(ins.device
                                          for ins in packet.instrs)
            if fp.risky[index]:
                assert fp.dist[index] == 0

    def test_dist_is_a_lower_bound_along_static_edges(self, translated):
        """dist can drop by at most 1 per successor step: following
        any static edge from p, the remaining distance is >= dist[p]-1
        (the BFS fixed point, spot-checked on fall-through edges)."""
        program = translated("mbox_pingpong")
        fp = shared_footprint(program, BDS)
        for index in range(len(program.packets) - 1):
            if fp.dist[index] > 1:
                assert fp.dist[index + 1] >= fp.dist[index] - 1

    def test_off_program_pc_reports_zero(self, translated):
        fp = shared_footprint(translated("mbox_pingpong"), BDS)
        assert fp.bound(-1) == 0
        assert fp.bound(10 ** 6) == 0

    def test_cached_on_the_program(self, translated):
        program = translated("mbox_prodcons")
        assert shared_footprint(program, BDS) is \
            shared_footprint(program, BDS)


# -- adaptive barrier units --------------------------------------------------


class AdaptiveFake:
    """Scripted adaptive member: fixed private bound, bounded window
    progress, work finishes at *work* cycles."""

    def __init__(self, work, bound, name="m", log=None, window_step=None):
        self.work = work
        self._bound = bound
        self.name = name
        self.cycles = 0
        self.finished = False
        self.grants = 0
        self.log = log if log is not None else []
        self.window_step = window_step  # private progress cap per window

    def private_bound(self):
        return self._bound

    def advance(self, until, max_cycles):
        self.log.append(("normal", self.name, self.cycles, until))
        self.cycles = until
        if self.cycles >= self.work:
            self.finished = True

    def advance_private(self, until, max_cycles):
        self.log.append(("window", self.name, self.cycles, until))
        target = until if self.window_step is None \
            else min(until, self.cycles + self.window_step)
        self.cycles = min(target, self.work)
        if self.cycles >= self.work:
            self.finished = True


class TestAdaptiveBarrierUnits:
    def test_private_members_run_in_one_window(self):
        members = [AdaptiveFake(500, 4, "a"), AdaptiveFake(300, 4, "b")]
        barrier = AdaptiveLockstepBarrier(members)
        barrier.run_until(None, 10_000)
        assert all(m.finished for m in members)
        assert barrier.runahead_rounds == 1
        assert barrier.runahead_cycles == 800
        # the window horizon is thrown wide open (max_cycles)
        assert members[0].log[0] == ("window", "a", 0, 10_000)

    def test_frontier_bound_zero_forces_normal_round(self):
        log = []
        members = [AdaptiveFake(3, 0, "a", log),
                   AdaptiveFake(3, 9, "b", log)]
        AdaptiveLockstepBarrier(members).run_until(None, 1000)
        # member a sits at the frontier with bound 0 every round: no
        # window ever opens, every round is a plain quantum=1 round
        assert all(entry[0] == "normal" for entry in log)

    def test_member_past_the_frontier_does_not_gate(self):
        """Only members *at* the round base pay (or fail) the gate."""
        log = []
        ahead = AdaptiveFake(6, 0, "ahead", log)   # bound 0, but ahead
        ahead.cycles = 3
        behind = AdaptiveFake(6, 5, "behind", log)
        barrier = AdaptiveLockstepBarrier([ahead, behind])
        barrier.run_until(None, 1000)
        assert barrier.runahead_rounds >= 1
        assert all(m.finished for m in (ahead, behind))

    def test_fully_deferred_window_falls_back_to_normal(self):
        """A window in which nobody progresses must not raise the
        livelock error; the next round is a forced normal round."""
        log = []

        class Deferring(AdaptiveFake):
            def advance_private(self, until, max_cycles):
                self.log.append(("window", self.name, self.cycles, until))
                # defers everything (e.g. all work is interpreter-only)

        members = [Deferring(2, 8, "a", log), Deferring(2, 8, "b", log)]
        AdaptiveLockstepBarrier(members).run_until(None, 1000)
        assert all(m.finished for m in members)
        kinds = [entry[0] for entry in log]
        assert "window" in kinds and "normal" in kinds
        # the round right after a deferred window is normal
        first_window = kinds.index("window")
        after = kinds[first_window + len(members):]
        assert after[0] == "normal"

    def test_gate_backoff_skips_recheck_until_frontier_moves(self):
        calls = []

        class CountingFake(AdaptiveFake):
            def private_bound(self):
                calls.append(self.cycles)
                return self._bound

        member = CountingFake(16, 0, "a", window_step=1)
        AdaptiveLockstepBarrier([member]).run_until(None, 1000)
        # bound 0 at every frontier: the gate fails, then sleeps for a
        # doubling number of cycles (1, 2, 4, 8, 8, ...) instead of
        # recomputing the bound every round
        assert len(calls) < member.work
        assert calls == sorted(calls)

    def test_non_adaptive_member_disables_runahead(self):
        class Plain:
            def __init__(self):
                self.cycles = 0
                self.finished = False
                self.grants = 0

            def advance(self, until, max_cycles):
                self.cycles = until
                if self.cycles >= 5:
                    self.finished = True

        members = [Plain(), AdaptiveFake(5, 9, "b")]
        barrier = AdaptiveLockstepBarrier(members)
        barrier.run_until(None, 1000)
        assert barrier.runahead_rounds == 0
        assert all(m.finished for m in members)

    def test_normal_rounds_match_quantum1_schedule(self):
        """With run-ahead disabled (a bound-0 member at the frontier),
        the adaptive barrier's grant schedule is bit-identical to a
        quantum=1 LockstepBarrier."""
        def fleet(log):
            return [AdaptiveFake(4, 0, name, log)
                    for name in ("a", "b", "c")]

        log_adaptive, log_plain = [], []
        AdaptiveLockstepBarrier(fleet(log_adaptive)).run_until(None, 100)
        plain = [AdaptiveFake(4, 0, name, log_plain)
                 for name in ("a", "b", "c")]
        LockstepBarrier(plain, quantum=1).run_until(None, 100)
        assert log_adaptive == log_plain

    def test_livelock_guard_still_fires_for_normal_rounds(self):
        class Stuck(AdaptiveFake):
            def advance(self, until, max_cycles):
                pass  # granted, never progresses

        with pytest.raises(SimulationError, match="livelock"):
            AdaptiveLockstepBarrier([Stuck(5, 0, "a")]).run_until(None, 100)


# -- the lockstep differential contract --------------------------------------


def _backend_list():
    backends = ["interp", "compiled", "tiered"]
    from repro.vliw.codegen.native import native_available

    if native_available():
        backends.insert(2, "native")
    return backends


def _trace_tuples(accesses):
    return [(a.cycle, a.kind, a.addr, a.value, a.size) for a in accesses]


def _snapshot(multi):
    return (
        [r.exit_code for r in multi.per_core],
        [r.target_cycles for r in multi.per_core],
        _trace_tuples(multi.shared_trace()),
        multi.contention_stall_cycles,
        multi.contention_conflicts,
        [r.uart_output for r in multi.per_core],
    )


class TestLockstepDifferentialContract:
    @pytest.mark.parametrize("name", shared_program_names())
    @pytest.mark.parametrize("cores", (2, 3, 4))
    def test_adaptive_matches_quantum1_interp(self, name, cores,
                                              translated):
        program = translated(name)
        baseline = MultiCoreSoC(program, cores=cores, backends="interp",
                                quantum=1).run()
        adaptive = MultiCoreSoC(program, cores=cores, backends="interp",
                                quantum="adaptive").run()
        assert _snapshot(adaptive) == _snapshot(baseline)
        assert _snapshot(baseline)[0] == expected_shared_exits(name, cores)

    @pytest.mark.parametrize("backend", _backend_list())
    @pytest.mark.parametrize("name", shared_program_names())
    def test_adaptive_matches_quantum1_all_backends(self, name, backend,
                                                    translated):
        """2-core sweep of every backend; the 2–4-core interp sweep
        above pins the core-count axis (interp is where the arbitration
        schedule is computed; the backends must reproduce it)."""
        program = translated(name)
        baseline = MultiCoreSoC(program, cores=2, backends=backend,
                                quantum=1).run()
        adaptive = MultiCoreSoC(program, cores=2, backends=backend,
                                quantum="adaptive").run()
        assert _snapshot(adaptive) == _snapshot(baseline)

    def test_adaptive_collapses_rounds(self, translated):
        """The point of the whole exercise: the communicating workload
        with long private phases runs orders of magnitude fewer
        arbitration rounds under the adaptive barrier."""
        program = translated("mbox_allreduce")
        baseline = MultiCoreSoC(program, cores=2, backends="compiled",
                                quantum=1).run()
        adaptive = MultiCoreSoC(program, cores=2, backends="compiled",
                                quantum="adaptive").run()
        assert _snapshot(adaptive) == _snapshot(baseline)
        assert adaptive.lockstep["runahead_rounds"] > 0
        assert adaptive.lockstep["rounds"] * 50 < baseline.lockstep["rounds"]

    def test_inline_shared_calls_replace_bails(self, translated):
        """Under the inline emitter no compiled region bails a shared
        access to the interpreter; under quantum=1 (the legacy bail
        emitter) every shared access does."""
        program = translated("mbox_pingpong")
        adaptive = MultiCoreSoC(program, cores=2, backends="compiled",
                                quantum="adaptive").run()
        baseline = MultiCoreSoC(program, cores=2, backends="compiled",
                                quantum=1).run()
        inline = sum(c["inline_shared_calls"]
                     for c in adaptive.lockstep["per_core"])
        assert inline > 0
        assert sum(c["interp_bails"]
                   for c in adaptive.lockstep["per_core"]) == 0
        assert sum(c["inline_shared_calls"]
                   for c in baseline.lockstep["per_core"]) == 0

    def test_fixed_quantum_still_supported(self, translated):
        """An explicit integer quantum keeps the historical fixed-window
        barrier: a non-sharing program replicated under quantum=4 stays
        bit-identical to its single-core run, and the stats report the
        integer mode with no run-ahead windows."""
        from repro.vliw.platform import PrototypingPlatform

        program = translated("gcd")
        single = PrototypingPlatform(program,
                                     backend="interp").run().observables()
        multi = MultiCoreSoC(program, cores=2, backends="interp",
                             quantum=4).run()
        assert all(r.observables() == single for r in multi.per_core)
        assert multi.lockstep["quantum"] == 4
        assert multi.lockstep["runahead_rounds"] == 0

    def test_quantum_validation(self, translated):
        program = translated("mbox_pingpong")
        with pytest.raises(SimulationError):
            MultiCoreSoC(program, cores=2, quantum=0)
        with pytest.raises(SimulationError):
            MultiCoreSoC(program, cores=2, quantum="sometimes")

    def test_lockstep_stats_shape(self, translated):
        multi = MultiCoreSoC(translated("mbox_pingpong"), cores=2,
                             backends="interp").run()
        stats = multi.lockstep
        assert stats["quantum"] == "adaptive"
        assert stats["rounds"] > 0
        assert len(stats["per_core"]) == 2
        for core in stats["per_core"]:
            assert set(core) == {"core", "runahead_windows",
                                 "runahead_cycles", "inline_shared_calls",
                                 "interp_bails"}


# -- fuzz-oracle sweeps of hand-written multicore sources --------------------


#: three hand-written multicore-safe minic programs: pure compute,
#: data-memory traffic, and uart/exit device traffic — each runs the
#: oracle's full level x backend x multicore sweep against the
#: reference ISS under both scheduling modes
HANDWRITTEN = {
    "compute": """
        int main() {
            int acc = 0;
            int i = 0;
            while (i < 60) { acc = acc + i * 3; i = i + 1; }
            return acc % 128;
        }
    """,
    "memory": """
        int buf[16];
        int main() {
            int i = 0;
            while (i < 16) { buf[i] = i * 7; i = i + 1; }
            int acc = 0;
            i = 0;
            while (i < 16) { acc = acc + buf[i]; i = i + 1; }
            return acc % 100;
        }
    """,
    "devices": """
        int main() {
            int i = 0;
            while (i < 4) {
                __io_write(0xF0000000, 65 + i);
                i = i + 1;
            }
            return 40;
        }
    """,
}


class TestFuzzOracleBothModes:
    @pytest.mark.parametrize("name", sorted(HANDWRITTEN))
    @pytest.mark.parametrize("quantum", (1, "adaptive"))
    def test_handwritten_source_passes_oracle(self, name, quantum):
        from repro.fuzz.oracle import FuzzConfig, check_source

        config = FuzzConfig(levels=(0, 2), cores=3, quantum=quantum)
        verdict = check_source(HANDWRITTEN[name], config=config)
        assert verdict.ok, verdict.summary()
