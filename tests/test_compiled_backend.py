"""Differential tests of the packet-compiled execution backend.

The compiled backend is only acceptable if it is *indistinguishable*
from the interpretive core: every observable of
:class:`~repro.vliw.platform.PlatformResult` — cycle counts, emulated
cycles, data image, UART bytes, the cycle-stamped bus trace, exit code
and the full statistics — must match bit for bit on every registry
program at every detail level, under fractional sync rates, and with
the inline-cache translation variant.
"""

import pytest

from repro.errors import BusError, SimulationError
from repro.programs.registry import build, program_names
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform
from repro.vliw.syncdev import SyncDevice

LEVELS = (0, 1, 2, 3)


def _observables(result):
    """Everything PlatformResult exposes, in comparable form."""
    return result.observables()


def _run(program, backend, **kwargs):
    return PrototypingPlatform(program, backend=backend, **kwargs).run()


class TestBackendEquivalence:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", program_names())
    def test_identical_observables(self, name, level):
        obj = build(name)
        interp = _observables(_run(translate(obj, level=level).program,
                                   "interp"))
        compiled = _observables(_run(translate(obj, level=level).program,
                                     "compiled"))
        assert interp == compiled, (name, level)

    @pytest.mark.parametrize("sync_rate", (0.25, 1.5, 4.0))
    def test_identical_under_sync_rates(self, sync_rate):
        obj = build("gcd")
        tr = translate(obj, level=2)
        interp = _observables(_run(tr.program, "interp",
                                   sync_rate=sync_rate))
        compiled = _observables(_run(tr.program, "compiled",
                                     sync_rate=sync_rate))
        assert interp == compiled

    def test_identical_with_inline_cache(self):
        obj = build("ellip")
        tr = translate(obj, level=3, inline_cache_threshold=1)
        interp = _observables(_run(tr.program, "interp"))
        compiled = _observables(_run(tr.program, "compiled"))
        assert interp == compiled


class TestBackendPlumbing:
    def test_unknown_backend_rejected(self):
        tr = translate(build("gcd"), level=1)
        with pytest.raises(SimulationError):
            PrototypingPlatform(tr.program, backend="jit")

    def test_measure_program_accepts_backend(self):
        from repro.eval.runner import measure_program

        interp = measure_program("gcd", levels=(1,))
        compiled = measure_program("gcd", levels=(1,), backend="compiled")
        assert (compiled.levels[1].result.target_cycles
                == interp.levels[1].result.target_cycles)
        assert (compiled.levels[1].result.emulated_cycles
                == interp.levels[1].result.emulated_cycles)

    def test_region_code_cache_shared_across_platforms(self):
        tr = translate(build("gcd"), level=1)
        _run(tr.program, "compiled")
        caches = tr.program._region_code_cache
        assert caches  # populated by the first run
        (params, cache), = caches.items()
        snapshot = {pc: entry[0] for pc, entry in cache.items()}
        _run(tr.program, "compiled")
        for pc, code in snapshot.items():
            assert cache[pc][0] is code  # reused, not recompiled

    def test_code_cache_not_shared_across_stall_parameters(self):
        """Stall costs are baked into generated code: a platform with
        different parameters must not reuse another platform's code."""
        tr = translate(build("gcd"), level=2)
        _run(tr.program, "compiled")  # warm the cache with defaults
        for kwargs in (dict(sync_access_stall=9),
                       dict(bridge_stall=11),
                       dict(sync_access_stall=0, bridge_stall=0)):
            interp = _observables(_run(tr.program, "interp", **kwargs))
            compiled = _observables(_run(tr.program, "compiled", **kwargs))
            assert interp == compiled, kwargs

    def test_cli_run_with_compiled_backend(self, tmp_path, capsys):
        from repro.cli import minic_main, translate_main

        src = tmp_path / "p.c"
        src.write_text("int main() { return 6 * 7; }")
        out = tmp_path / "p.relf"
        minic_main([str(src), "-o", str(out)])
        assert translate_main([str(out), "--level", "1", "--run",
                               "--backend", "compiled"]) == 0
        assert "exit=42" in capsys.readouterr().out


class TestBackendErrors:
    def test_wild_store_raises_like_interp(self):
        """A store far outside every window fails identically."""
        from repro.isa.tricore.assembler import assemble

        # a0 starts at 0: the store targets no mapped region at all
        obj = assemble("""
_start:
    li d1, 7
    st.w [a0]0, d1
    halt
""")
        tr = translate(obj, level=0)
        errors = []
        for backend in ("interp", "compiled"):
            try:
                _run(tr.program, backend)
            except BusError as exc:
                errors.append(str(exc))
        assert len(errors) == 2
        assert errors[0] == errors[1]


class TestBailPath:
    def test_block_stats_counted_once_on_bail(self):
        """A non-device load in a block-head packet whose address lands
        in the sync window bails to the interpreter, which re-executes
        the packet — block statistics must not be counted twice."""
        from repro.arch.model import default_target_arch
        from repro.isa.c6x.instructions import TargetInstr, TOp
        from repro.isa.c6x.packets import BlockInfo, C6xProgram, ExecutePacket

        target = default_target_arch()
        program = C6xProgram(target=target)
        program.packets = [
            # r0 = sync_base (0x0180_0000): MVKL then MVKH
            ExecutePacket([TargetInstr(TOp.MVKL, dst=0, imm=0)]),
            ExecutePacket([TargetInstr(TOp.MVKH, dst=0, imm=0x0180)]),
            # block head: plain (non-device) load hitting the sync window
            ExecutePacket([TargetInstr(TOp.LDW, dst=1, src1=0,
                                       imm=0x4)]),  # STATUS register
            ExecutePacket([TargetInstr(TOp.NOP, imm=1)]),
            ExecutePacket([TargetInstr(TOp.HALT)]),
        ]
        program.labels = {"__entry": 0}
        program.block_at = {2: BlockInfo(source_addr=0x8000_0000,
                                         n_instructions=3,
                                         predicted_cycles=0,
                                         entry_label="B_head")}
        results = {}
        for backend in ("interp", "compiled"):
            result = _run(program, backend)
            results[backend] = (
                result.source_instructions,
                dict(result.core_stats.block_executions),
                result.core_stats.sync_stall_cycles,
                result.target_cycles,
            )
        assert results["interp"] == results["compiled"]
        assert results["interp"][0] == 3  # counted exactly once
        assert results["interp"][1] == {0x8000_0000: 1}


class TestRunSlice:
    def test_sliced_execution_is_bit_identical(self):
        """Driving the compiled backend in 1-cycle lockstep quanta (the
        multi-core scheduling pattern) must not change observables."""
        tr = translate(build("gcd"), level=2)
        interp = _observables(_run(tr.program, "interp"))
        platform = PrototypingPlatform(tr.program, backend="compiled")
        from repro.vliw.compiled import PacketCompiler

        compiler = PacketCompiler(platform.core)
        exit_device = platform.bus.device("exit")
        while not platform.core.halted and not exit_device.exited:
            compiler.run_slice(platform.core.cycles + 1)
        platform.sync.flush()
        assert _observables(platform.collect_result()) == interp

    def test_interp_handoff_with_inflight_branch(self):
        """A region that hands off to the interpreter with a branch in
        flight (a second branch inside the first one's delay slots)
        must drain the pipeline before a lockstep slice ends —
        otherwise the next compiled region runs with a stale pending
        branch and the trajectory diverges."""
        from repro.arch.model import default_target_arch
        from repro.isa.c6x.instructions import TargetInstr, TOp
        from repro.isa.c6x.packets import C6xProgram, ExecutePacket
        from repro.vliw.compiled import PacketCompiler

        target = default_target_arch()
        program = C6xProgram(target=target)
        nop = lambda: ExecutePacket([TargetInstr(TOp.NOP, imm=1)])
        program.packets = [
            # 0: unconditional branch; matures after 5 delay slots
            ExecutePacket([TargetInstr(TOp.B, target="far")]),
            nop(),                                              # 1
            # 2: predicated-false branch inside the delay slots —
            # the region compiler refuses this shape ('interp' end)
            ExecutePacket([TargetInstr(TOp.B, target="near",
                                       pred=5, pred_sense=True)]),
            nop(), nop(), nop(), nop(),                         # 3-6
            # 7: 'near' — only reachable if the pipeline went wrong
            ExecutePacket([TargetInstr(TOp.MVK, dst=1, imm=7)]),
            ExecutePacket([TargetInstr(TOp.HALT)]),             # 8
            # 9: 'far' — the correct landing site
            ExecutePacket([TargetInstr(TOp.MVK, dst=1, imm=42)]),
            ExecutePacket([TargetInstr(TOp.HALT)]),             # 10
        ]
        program.labels = {"__entry": 0, "near": 7, "far": 9}

        interp = _observables(_run(program, "interp"))
        assert _observables(_run(program, "compiled")) == interp
        platform = PrototypingPlatform(program, backend="compiled")
        compiler = PacketCompiler(platform.core)
        exit_device = platform.bus.device("exit")
        while not platform.core.halted and not exit_device.exited:
            compiler.run_slice(platform.core.cycles + 1)
        platform.sync.flush()
        assert _observables(platform.collect_result()) == interp


class TestRegionCachePickling:
    """The region cache stores *source*, so it survives pickling.

    This is the transport contract of the sharded evaluation runner:
    a parent process compiles (or precompiles) packet regions once,
    pickles the program, and every worker executes straight from the
    shipped source instead of re-scanning and re-generating regions.
    """

    def test_unpickled_clone_runs_from_shipped_source(self):
        import pickle

        tr = translate(build("fir"), level=1)
        interp = _observables(_run(tr.program, "interp"))
        _run(tr.program, "compiled")  # populate the source cache
        clone = pickle.loads(pickle.dumps(tr.program))
        platform = PrototypingPlatform(clone, backend="compiled")
        assert _observables(platform.run()) == interp
        compiler = platform._compiler
        assert compiler.regions_generated == 0
        assert compiler.regions_from_cache > 0

    def test_precompile_covers_every_executed_region(self):
        from repro.vliw.compiled import precompile_program

        tr = translate(build("gcd"), level=3)
        generated = precompile_program(tr.program)
        assert generated > 0
        platform = PrototypingPlatform(tr.program, backend="compiled")
        result = platform.run()
        assert result.exit_code is not None
        assert platform._compiler.regions_generated == 0

    def test_roundtrip_into_spawn_context_child(self):
        """Compile in the parent, execute from pickled source in a
        spawn-context child process — the exact worker handshake."""
        import pickle
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        from repro.eval.sharded import child_import_path, \
            run_pickled_program
        from repro.vliw.compiled import precompile_program

        tr = translate(build("gcd"), level=2)
        precompile_program(tr.program)
        parent = _run(tr.program, "compiled")
        blob = pickle.dumps(tr.program)
        with child_import_path():
            with ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=get_context("spawn")) as pool:
                observables, generated, from_cache = pool.submit(
                    run_pickled_program, blob).result()
        assert observables == parent.observables()
        assert generated == 0  # every region came out of the cache
        assert from_cache > 0


class TestTickN:
    @pytest.mark.parametrize("rate", (1.0, 2.0, 0.25, 0.3, 1.5))
    def test_tick_n_equals_tick_loop(self, rate):
        """tick_n(k) is bit-identical to k sequential tick() calls."""
        for pending_main, pending_corr, count in (
                (10, 0, 4), (10, 0, 40), (3, 5, 12), (0, 7, 30),
                (100, 100, 7), (1, 1, 3)):
            a = SyncDevice(rate=rate)
            b = SyncDevice(rate=rate)
            for device in (a, b):
                if pending_main:
                    device.write(0x0, pending_main)
                if pending_corr:
                    device.write(0x8, pending_corr)
            for _ in range(count):
                a.tick()
            b.tick_n(count)
            assert a.emulated_cycles == b.emulated_cycles
            assert a._pending_main == b._pending_main
            assert a._pending_corr == b._pending_corr
            assert a._accumulator == b._accumulator
            assert vars(a.stats) == vars(b.stats)

    def test_tick_n_idle_resets_accumulator(self):
        device = SyncDevice(rate=0.25)
        device.write(0x0, 1)
        device.tick()  # accumulates 0.25
        device.flush()
        device.tick_n(3)  # idle: must clear the fractional accumulator
        assert device._accumulator == 0.0
