"""Object-file container tests."""

import pytest

from repro.errors import ObjectFileError
from repro.objfile.elf import (
    MAGIC,
    ObjectFile,
    SEC_EXEC,
    SEC_WRITE,
    Section,
    Symbol,
    SymbolKind,
    dump_bytes,
    load,
    load_bytes,
    save,
)


def _sample() -> ObjectFile:
    obj = ObjectFile(entry=0x8000_0000)
    obj.sections.append(Section(".text", 0x8000_0000, b"\x12\x34" * 6,
                                SEC_EXEC))
    obj.sections.append(Section(".data", 0xD000_0000, b"hello brd",
                                SEC_WRITE))
    obj.add_symbol(Symbol("_start", 0x8000_0000, SymbolKind.FUNC))
    obj.add_symbol(Symbol("msg", 0xD000_0000, SymbolKind.OBJECT, size=9))
    return obj


class TestRoundtrip:
    def test_bytes_roundtrip(self):
        obj = _sample()
        loaded = load_bytes(dump_bytes(obj))
        assert loaded.entry == obj.entry
        assert [s.name for s in loaded.sections] == [".text", ".data"]
        assert loaded.text().data == obj.text().data
        assert loaded.symbols["msg"].size == 9
        assert loaded.symbols["_start"].kind == SymbolKind.FUNC

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "prog.relf")
        save(_sample(), path)
        loaded = load(path)
        assert loaded.section(".data").data == b"hello brd"

    def test_unicode_names(self):
        obj = _sample()
        obj.add_symbol(Symbol("größe", 0xD000_0004))
        assert "größe" in load_bytes(dump_bytes(obj)).symbols


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ObjectFileError):
            load_bytes(b"\x7fELF" + b"\x00" * 20)

    def test_truncated(self):
        blob = dump_bytes(_sample())
        with pytest.raises(ObjectFileError):
            load_bytes(blob[:-3])

    def test_trailing_garbage(self):
        blob = dump_bytes(_sample()) + b"x"
        with pytest.raises(ObjectFileError):
            load_bytes(blob)

    def test_overlapping_sections(self):
        obj = ObjectFile()
        obj.sections.append(Section("a", 0x100, b"\x00" * 16))
        obj.sections.append(Section("b", 0x108, b"\x00" * 16))
        with pytest.raises(ObjectFileError):
            obj.validate()

    def test_unaligned_section(self):
        obj = ObjectFile()
        obj.sections.append(Section("a", 0x101, b"\x00" * 4))
        with pytest.raises(ObjectFileError):
            obj.validate()

    def test_bad_version(self):
        blob = bytearray(dump_bytes(_sample()))
        blob[len(MAGIC)] = 99
        with pytest.raises(ObjectFileError):
            load_bytes(bytes(blob))


class TestAccessors:
    def test_missing_section(self):
        with pytest.raises(ObjectFileError):
            _sample().section(".bss")

    def test_text_requires_exec(self):
        obj = ObjectFile()
        obj.sections.append(Section(".data", 0, b"", SEC_WRITE))
        with pytest.raises(ObjectFileError):
            obj.text()

    def test_symbol_addr(self):
        assert _sample().symbol_addr("_start") == 0x8000_0000
        with pytest.raises(ObjectFileError):
            _sample().symbol_addr("nope")

    def test_symbol_at(self):
        obj = _sample()
        assert obj.symbol_at(0xD000_0000).name == "msg"
        assert obj.symbol_at(0xD000_0000, SymbolKind.FUNC) is None

    def test_contains(self):
        section = _sample().text()
        assert section.contains(section.addr)
        assert not section.contains(section.end)
