"""End-to-end tests of the resident simulation service.

A real ``ReproServe`` listens on a free port in a background thread
and every test talks to it over actual HTTP through the batch client,
so these cover the full stack: request validation, the job queue,
NDJSON streaming, cancellation, metrics, and — the service's core
contract — that a served sweep is bit-identical to the serial
:func:`measure_program` path and that a repeated request runs fully
warm (``regions_generated == 0``, no new translations).
"""

import asyncio
import json
import threading
import time

import pytest

from repro.eval.sharded import registry_specs
from repro.serve import client
from repro.serve.client import submit_main
from repro.serve.protocol import decode_value, encode_value
from repro.serve.server import ReproServe

HOST = "127.0.0.1"


def _start_server(jobs: int):
    """Run a server on a free port in a daemon thread."""
    holder: dict = {}
    ready = threading.Event()

    def run():
        async def main():
            server = ReproServe(host=HOST, port=0, jobs=jobs)
            await server.start()
            holder["server"] = server
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(30), "server failed to start"
    return holder["server"], thread


def _stop_server(server, thread):
    client.request(HOST, server.port, "POST", "/shutdown")
    thread.join(60)
    assert not thread.is_alive(), "server did not shut down cleanly"


@pytest.fixture(scope="module")
def served():
    """A running service with an inline runner (jobs=1)."""
    server, thread = _start_server(jobs=1)
    yield server.port
    _stop_server(server, thread)


@pytest.fixture(scope="module")
def served_pool():
    """A running service with a persistent 2-worker pool."""
    server, thread = _start_server(jobs=2)
    yield server.port
    _stop_server(server, thread)


def _wait_done(port, job_id, timeout=120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = client.request(HOST, port, "GET", f"/jobs/{job_id}")
        assert status == 200
        if body["status"] in ("done", "failed", "cancelled"):
            return body
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


MEASURE = {"type": "measure", "programs": ["gcd"], "levels": [0, 1],
           "backend": "compiled"}


def test_healthz_and_metrics_shape(served):
    status, body = client.request(HOST, served, "GET", "/healthz")
    assert status == 200 and body["ok"] is True and body["workers"] == 1
    status, metrics = client.request(HOST, served, "GET", "/metrics")
    assert status == 200
    for key in ("uptime_seconds", "jobs_in_flight", "shards_executed",
                "regions_generated", "regions_from_cache",
                "wall_histograms", "runner"):
        assert key in metrics
    assert "translations_built" in metrics["runner"]


def test_job_lifecycle_and_bit_identity(served):
    """Submit → status polls → stream replay → serial cross-check."""
    job = client.submit(HOST, served, MEASURE)
    assert job["status"] in ("queued", "running")
    final = _wait_done(served, job["id"])
    assert final["status"] == "done"
    assert final["summary"]["records"] == 3  # 1 reference + 2 levels

    records, tail = client.collect(HOST, served, job["id"])
    assert tail["status"] == "done"
    # seq-sorted records reproduce the canonical submission order
    expected = registry_specs(["gcd"], levels=(0, 1), backend="compiled")
    assert [r["spec"]["kind"] for r in records] \
        == [s.kind for s in expected]
    assert [r["spec"]["level"] for r in records if
            r["spec"]["kind"] == "platform"] == [0, 1]
    # and the observables are bit-identical to the serial runner
    assert client.check_serial(records, dict(
        programs=["gcd"], levels=[0, 1], backend="compiled",
        cores=1, sync_rate=1.0)) == []


def test_second_identical_request_is_fully_warm(served):
    """The acceptance criterion: request #2 recompiles nothing."""
    first = client.submit(HOST, served, MEASURE)
    _wait_done(served, first["id"])
    second = client.submit(HOST, served, MEASURE)
    final = _wait_done(served, second["id"])
    summary = final["summary"]
    assert summary["regions_generated"] == 0
    assert summary["regions_from_cache"] > 0
    delta = summary["runner_delta"]
    assert delta["translations_built"] == 0
    assert delta["objects_built"] == 0
    assert delta["precompiles"] == 0
    assert delta["translation_hits"] > 0


def test_translate_job_reports_translation_stats(served):
    from repro.programs.registry import build
    from repro.translator.driver import translate

    job = client.submit(HOST, served, {"type": "translate",
                                       "programs": ["gcd"], "levels": [2]})
    _wait_done(served, job["id"])
    records, tail = client.collect(HOST, served, job["id"])
    assert tail["status"] == "done"
    local = translate(build("gcd"), level=2).stats
    assert records[0]["stats"] == encode_value(vars(local))


def test_fuzz_job_streams_verdicts(served):
    job = client.submit(HOST, served, {
        "type": "fuzz", "seed": 42, "count": 2, "levels": [0],
        "backends": ["interp"], "cores": 1})
    _wait_done(served, job["id"])
    records, tail = client.collect(HOST, served, job["id"])
    assert tail["status"] == "done"
    assert [r["index"] for r in records] == [0, 1]
    assert all(r["ok"] for r in records)


def test_cancel_stops_a_running_job(served):
    job = client.submit(HOST, served, {
        "type": "fuzz", "seed": 42, "count": 200, "levels": [0],
        "backends": ["interp"], "cores": 1})
    seen = 0
    for record in client.stream(HOST, served, job["id"]):
        seen += 1
        if seen == 1:
            status, _ = client.request(HOST, served, "POST",
                                       f"/jobs/{job['id']}/cancel")
            assert status == 200
        if "status" in record and "seq" not in record:
            assert record["status"] == "cancelled"
    assert seen < 200
    final = _wait_done(served, job["id"])
    assert final["status"] == "cancelled"


def test_request_validation_and_routing(served):
    status, body = client.request(HOST, served, "POST", "/jobs",
                                  body={"type": "nonsense"})
    assert status == 400 and "unknown job type" in body["error"]
    status, body = client.request(HOST, served, "POST", "/jobs",
                                  body={"type": "measure",
                                        "programs": ["no-such-program"]})
    assert status == 400 and "unknown program" in body["error"]
    status, body = client.request(HOST, served, "POST", "/jobs",
                                  body={"type": "measure",
                                        "programs": ["gcd"],
                                        "backend": "warp-drive"})
    assert status == 400 and "unknown backend" in body["error"]
    status, _ = client.request(HOST, served, "GET", "/jobs/job-9999")
    assert status == 404
    status, _ = client.request(HOST, served, "GET", "/no/such/route")
    assert status == 404
    status, _ = client.request(HOST, served, "DELETE", "/jobs/job-0001")
    assert status == 405


def test_encode_decode_round_trip():
    value = {"a": b"\x00\xff", "b": [1, (2, 3)], "c": {7: "x"},
             "d": None, "e": 1.5}
    encoded = encode_value(value)
    json.dumps(encoded)  # must be JSON-serializable
    decoded = decode_value(encoded)
    assert decoded["a"] == b"\x00\xff"
    assert decoded["b"] == [1, [2, 3]]
    assert decoded["c"] == {"7": "x"}


def test_client_round_trip_with_serial_check(served, tmp_path, capsys):
    """The repro-submit CLI end to end, including --check-serial."""
    out = tmp_path / "records.json"
    rc = submit_main(["--port", str(served), "--programs", "gcd",
                      "--levels", "0,1", "--backend", "compiled",
                      "--check-serial", "--json", str(out)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "bit-identical to the serial runner" in printed
    records = json.loads(out.read_text())
    assert [r["seq"] for r in records] == [0, 1, 2]


# -- pooled service ---------------------------------------------------------


POOL_SWEEP = {"type": "measure", "programs": ["gcd", "fibonacci"],
              "levels": [0, 1], "backend": "compiled"}


def test_pool_stream_reassembles_deterministically(served_pool):
    """Completion order may be anything; seq order is the serial order."""
    job = client.submit(HOST, served_pool, POOL_SWEEP)
    records, tail = client.collect(HOST, served_pool, job["id"])
    assert tail["status"] == "done"
    expected = registry_specs(["gcd", "fibonacci"], levels=(0, 1),
                              backend="compiled")
    assert [(r["spec"]["program"], r["spec"]["kind"], r["spec"]["level"])
            for r in records] \
        == [(s.program, s.kind, s.level) for s in expected]
    assert client.check_serial(records, dict(
        programs=["gcd", "fibonacci"], levels=[0, 1], backend="compiled",
        cores=1, sync_rate=1.0)) == []
    # shards ran in pool workers, not the server process
    import os

    assert all(r["pid"] != os.getpid() for r in records)


def test_pool_second_request_fully_warm(served_pool):
    job = client.submit(HOST, served_pool, POOL_SWEEP)
    _wait_done(served_pool, job["id"])
    final = _wait_done(served_pool,
                       client.submit(HOST, served_pool, POOL_SWEEP)["id"])
    summary = final["summary"]
    assert summary["regions_generated"] == 0
    assert summary["runner_delta"]["translations_built"] == 0
