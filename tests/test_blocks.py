"""Basic-block construction and CFG tests."""

import pytest

from repro.errors import TranslationError
from repro.isa.tricore.assembler import assemble
from repro.translator.blocks import build_cfg
from repro.translator.decoder import decode_object
from repro.translator.ir import BranchKind


def _cfg(source: str):
    obj = assemble(source)
    return build_cfg(decode_object(obj), obj), obj


class TestLeaders:
    def test_single_block(self):
        cfg, obj = _cfg("_start:\n    nop\n    nop\n    halt\n")
        assert len(cfg) == 1
        block = cfg.blocks[obj.entry]
        assert block.n_instructions == 3

    def test_branch_target_splits(self):
        cfg, obj = _cfg("""
        _start:
            nop
        target:
            nop
            j target
        """)
        assert len(cfg) == 2
        assert obj.symbols["target"].addr in cfg.blocks

    def test_fallthrough_after_branch_is_leader(self):
        cfg, _ = _cfg("""
        _start:
            jeq d1, d2, done
            nop
        done:
            halt
        """)
        assert len(cfg) == 3

    def test_function_symbols_are_leaders(self):
        cfg, obj = _cfg("""
        _start:
            halt
            .global helper
        helper:
            nop
            ret
        """)
        assert obj.symbols["helper"].addr in cfg.blocks

    def test_call_ends_block(self):
        cfg, obj = _cfg("""
        _start:
            call fn
            nop
            halt
        fn:
            ret
        """)
        entry = cfg.blocks[obj.entry]
        assert entry.kind is BranchKind.CALL
        assert entry.n_instructions == 1


class TestTerminators:
    def test_cond_successors(self):
        cfg, obj = _cfg("""
        _start:
            jeq d1, d2, done
            nop
        done:
            halt
        """)
        entry = cfg.blocks[obj.entry]
        assert entry.kind is BranchKind.COND
        assert set(entry.successor_addrs()) == {
            obj.symbols["done"].addr, entry.end_addr}

    def test_jump_no_fallthrough(self):
        cfg, obj = _cfg("""
        _start:
            j away
            nop
        away:
            halt
        """)
        entry = cfg.blocks[obj.entry]
        assert not entry.falls_through
        assert entry.successor_addrs() == [obj.symbols["away"].addr]

    def test_ret_has_no_successors(self):
        cfg, obj = _cfg("""
        _start:
            halt
        fn:
            ret
        """)
        fn = cfg.blocks[obj.symbols["fn"].addr]
        assert fn.successor_addrs() == []

    def test_halt_no_fallthrough(self):
        cfg, obj = _cfg("_start:\n    halt\n    nop\n")
        entry = cfg.blocks[obj.entry]
        assert not entry.falls_through

    def test_fallthrough_block(self):
        cfg, obj = _cfg("""
        _start:
            nop
        merge:
            nop
            j merge
        """)
        entry = cfg.blocks[obj.entry]
        assert entry.kind is BranchKind.NONE
        assert entry.successor_addrs() == [entry.end_addr]

    def test_loop_kind(self):
        cfg, obj = _cfg("""
        _start:
            mov d1, 3
            mov.a a2, d1
        top:
            nop
            loop a2, top
            halt
        """)
        top = cfg.blocks[obj.symbols["top"].addr]
        assert top.kind is BranchKind.LOOP


class TestBlockOf:
    def test_contains_lookup(self):
        cfg, obj = _cfg("_start:\n    nop\n    nop\n    halt\n")
        block = cfg.block_of(obj.entry + 4)
        assert block.addr == obj.entry

    def test_missing_address(self):
        cfg, _ = _cfg("_start:\n    halt\n")
        with pytest.raises(TranslationError):
            cfg.block_of(0x9000_0000)


class TestErrors:
    def test_branch_into_middle_of_instruction(self):
        # jump target lands inside a 4-byte instruction
        source = """
        _start:
            j _start + 2
            halt
        """
        obj = assemble(source)
        with pytest.raises(TranslationError):
            build_cfg(decode_object(obj), obj)

    def test_empty_program(self):
        with pytest.raises(TranslationError):
            build_cfg([], assemble("_start:\n    nop\n"))
