"""RTL-style simulator tests: cycle equality with the reference ISS
and the VCD waveform writer."""

import pytest

from repro.arch.model import default_source_arch
from repro.isa.tricore.assembler import assemble
from repro.programs.registry import build
from repro.refsim.iss import CycleAccurateISS
from repro.refsim.rtlsim import RtlSimulator
from repro.refsim.vcd import VcdWriter


class TestCycleEquality:
    @pytest.mark.parametrize("name", ["gcd", "fir", "ellip", "dpcm",
                                      "sieve", "subband", "uart_hello"])
    def test_matches_reference_iss(self, name):
        obj = build(name)
        ref = CycleAccurateISS(obj).run()
        rtl = RtlSimulator(obj).run()
        assert rtl.cycles == ref.cycles
        assert rtl.instructions == ref.instructions
        assert rtl.regs == ref.regs
        assert rtl.data_image == ref.data_image
        assert rtl.exit_code == ref.exit_code
        assert rtl.cache_stats.misses == ref.cache_stats.misses
        assert rtl.branch_stats == ref.branch_stats

    def test_matches_with_custom_arch(self):
        arch = default_source_arch().with_icache(ways=1, sets=8,
                                                 line_size=16)
        obj = build("gcd")
        ref = CycleAccurateISS(obj, arch).run()
        rtl = RtlSimulator(obj, arch).run()
        assert rtl.cycles == ref.cycles

    def test_is_slower_than_iss(self):
        # The point of the stage-level model: more work per cycle.
        import time

        obj = build("sieve")
        t0 = time.perf_counter()
        CycleAccurateISS(obj).run()
        iss_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        RtlSimulator(obj).run()
        rtl_time = time.perf_counter() - t0
        # Not asserting a strict factor (CI noise); it must not be
        # dramatically faster.
        assert rtl_time > 0.3 * iss_time


class TestClockStepping:
    def test_one_cycle_per_clock_call(self):
        obj = assemble("_start:\n    nop\n    nop\n    halt\n")
        rtl = RtlSimulator(obj)
        before = rtl.cycle
        rtl.clock()
        assert rtl.cycle == before + 1

    def test_halted_rejects_clock(self):
        from repro.errors import SimulationError

        obj = assemble("_start:\n    halt\n")
        rtl = RtlSimulator(obj)
        rtl.run()
        with pytest.raises(SimulationError):
            rtl.clock()


class TestVcd:
    def test_waveform_dump(self):
        obj = assemble("""
        _start:
            li d1, 3
        top:
            add d1, d1, -1
            jnz d1, top
            halt
        """)
        vcd = VcdWriter()
        rtl = RtlSimulator(obj, vcd=vcd)
        rtl.run()
        text = vcd.render()
        assert "$timescale" in text
        assert "$var wire 32" in text and "pc" in text
        assert "#0" in text
        # stall signals toggled at least once (branches stall)
        assert "stall_branch" in text

    def test_writer_records_changes_only(self):
        vcd = VcdWriter()
        vcd.add_signal("sig", 1)
        vcd.record(0, sig=1)
        vcd.record(1, sig=1)  # no change, no output
        vcd.record(2, sig=0)
        body = vcd.render().split("$enddefinitions $end\n")[1]
        assert body.count("#") == 2

    def test_writer_rejects_late_signal(self):
        vcd = VcdWriter()
        vcd.add_signal("a", 1)
        vcd.record(0, a=1)
        with pytest.raises(RuntimeError):
            vcd.add_signal("b", 1)

    def test_save(self, tmp_path):
        vcd = VcdWriter()
        vcd.add_signal("a", 8)
        vcd.record(0, a=0x55)
        path = tmp_path / "wave.vcd"
        vcd.save(str(path))
        assert "b1010101" in path.read_text()
