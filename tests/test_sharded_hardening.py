"""Regression tests for the resident-server hardening of ShardedRunner.

Each test pins one of the latent one-shot-CLI-era bugs that only bite
in a long-lived process:

* abandoning a ``run_all(stream=True)`` iterator mid-sweep used to run
  ``ProcessPoolExecutor.__exit__`` (wait for *every* outstanding
  future) — now pending shards are cancelled and close returns without
  waiting the sweep out;
* a worker crash used to surface as a bare exception from
  ``future.result()`` — now it is a :class:`ShardError` carrying the
  shard's spec and the worker traceback;
* explicit-obj shards used to be pinned forever under ``id()`` keys
  and every memo grew without bound — now objects are keyed by content
  hash and ``max_cached`` bounds the memos with LRU eviction;
* ``child_import_path`` used to mutate ``PYTHONPATH`` non-reentrantly
  — now a lock + refcount make interleaved lifetimes safe.

Plus the ``persistent=True`` pool mode the service is built on.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro.errors import ShardError
from repro.eval.sharded import (
    ShardedRunner,
    ShardSpec,
    _BoundedMemo,
    child_import_path,
    object_content_key,
)
from repro.objfile.elf import SEC_EXEC, ObjectFile, Section, load_bytes
from repro.objfile.elf import dump_bytes
from repro.programs.registry import build


def _broken_obj() -> ObjectFile:
    """An object file that crashes the simulators at load time."""
    return ObjectFile(entry=0x1000, sections=[
        Section("text", 0x1000, b"\xff" * 8, SEC_EXEC)])


def _drain_children(timeout: float = 30.0) -> bool:
    """True once this process has no live multiprocessing children."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.1)
    return not multiprocessing.active_children()


# -- bugfix 1: stream abandon must not hang ---------------------------------


class TestStreamAbandon:
    def test_abandon_cancels_pending_and_releases_workers(self):
        specs = [ShardSpec(program="gcd", kind="reference")
                 for _ in range(8)]
        runner = ShardedRunner(jobs=2)
        stream = runner.run_all(specs, stream=True)
        first = next(stream)
        assert first.spec.kind == "reference"
        start = time.monotonic()
        stream.close()
        # close returns without executing the abandoned sweep: the
        # not-yet-started shards were cancelled, not waited for
        assert runner.cancelled_shards >= 1
        assert time.monotonic() - start < 20
        assert _drain_children(), "abandoned sweep left live workers"

    def test_abandon_on_persistent_pool_keeps_it_usable(self):
        specs = [ShardSpec(program="gcd", kind="reference")
                 for _ in range(8)]
        with ShardedRunner(jobs=2, persistent=True) as runner:
            stream = runner.run_all(specs, stream=True)
            next(stream)
            stream.close()
            assert runner.cancelled_shards >= 1
            # the shared pool survives an abandoned consumer
            outcomes = runner.run(specs[:2])
            assert [o.spec for o in outcomes] == specs[:2]
        assert _drain_children(), "close() left live workers"


# -- bugfix 2: worker crashes carry the shard's identity --------------------


class TestShardError:
    def test_inline_failure_names_the_shard(self):
        spec = ShardSpec(obj=_broken_obj(), kind="reference")
        with pytest.raises(ShardError) as info:
            ShardedRunner(jobs=1).run([spec])
        assert info.value.spec.kind == "reference"
        assert "kind=reference" in str(info.value)
        assert "backend=interp" in str(info.value)
        assert "SimulationError" in info.value.worker_traceback

    def test_pool_failure_names_the_shard_and_cancels_rest(self):
        specs = ([ShardSpec(obj=_broken_obj(), kind="reference")]
                 + [ShardSpec(program="gcd", kind="reference")
                    for _ in range(6)])
        runner = ShardedRunner(jobs=2)
        with pytest.raises(ShardError) as info:
            runner.run(specs)
        assert info.value.spec.kind == "reference"
        assert info.value.worker_traceback
        # the failed sweep abandoned its not-yet-started shards
        assert runner.cancelled_shards >= 1
        assert _drain_children()


# -- bugfix 3: content-hashed keys + bounded memos --------------------------


class TestMemoHygiene:
    def test_identical_objects_share_one_memo_entry(self):
        original = build("gcd")
        clone = load_bytes(dump_bytes(original))  # equal bytes, new id
        assert clone is not original
        assert object_content_key(clone) == object_content_key(original)
        runner = ShardedRunner(jobs=1)
        runner.translation(ShardSpec(obj=original, level=0))
        runner.translation(ShardSpec(obj=clone, level=0))
        assert len(runner._objs) == 1
        assert runner.stats["translations_built"] == 1
        assert runner.stats["translation_hits"] == 1
        (key,) = runner._objs
        assert key.startswith("@")  # content hash, not an id() pin

    def test_bounded_memo_evicts_least_recently_used(self):
        memo = _BoundedMemo(2)
        memo["a"], memo["b"] = 1, 2
        assert memo.get("a") == 1  # refresh 'a'
        memo["c"] = 3  # evicts 'b'
        assert sorted(memo) == ["a", "c"]
        with pytest.raises(ValueError):
            _BoundedMemo(0)

    def test_runner_memos_stay_bounded(self):
        runner = ShardedRunner(jobs=1, max_cached=2)
        programs = ("gcd", "fibonacci", "uart_hello")
        outcomes = runner.run([
            ShardSpec(program=name, level=0, backend="compiled")
            for name in programs])
        assert len(outcomes) == 3
        assert len(runner._objs) <= 2
        assert len(runner._translations) <= 2
        assert len(runner._precompiled) <= 2
        # evicted entries re-build correctly on the next sweep
        again = runner.run([ShardSpec(program="gcd", level=0,
                                      backend="compiled")])
        assert (again[0].result.observables()
                == outcomes[0].result.observables())


# -- bugfix 4: reentrant PYTHONPATH export ----------------------------------


class TestChildImportPath:
    @pytest.fixture()
    def scratch_pythonpath(self):
        """Pin PYTHONPATH to a known sentinel for the test's duration."""
        saved = os.environ.get("PYTHONPATH")
        os.environ["PYTHONPATH"] = "/definitely-not-repro"
        try:
            yield "/definitely-not-repro"
        finally:
            if saved is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = saved

    def test_nested_enters_restore_once(self, scratch_pythonpath):
        with child_import_path():
            inner = os.environ["PYTHONPATH"]
            assert scratch_pythonpath in inner.split(os.pathsep)
            with child_import_path():
                assert os.environ["PYTHONPATH"] == inner
            # the inner exit must NOT restore while the outer is live
            assert os.environ["PYTHONPATH"] == inner
        assert os.environ["PYTHONPATH"] == scratch_pythonpath

    def test_interleaved_lifetimes_across_threads(self, scratch_pythonpath):
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with child_import_path():
                entered.set()
                release.wait(30)

        thread = threading.Thread(target=holder)
        thread.start()
        assert entered.wait(10)
        exported = os.environ["PYTHONPATH"]
        # this enter+exit pair overlaps the holder's: before the fix it
        # restored the pre-holder value over the live export
        with child_import_path():
            pass
        assert os.environ["PYTHONPATH"] == exported
        release.set()
        thread.join(30)
        assert os.environ["PYTHONPATH"] == scratch_pythonpath


# -- persistent pool mode ---------------------------------------------------


class TestPersistentPool:
    def test_pool_is_reused_across_runs(self):
        specs = [ShardSpec(program="gcd", kind="reference")
                 for _ in range(4)]
        with ShardedRunner(jobs=2, persistent=True) as runner:
            pids_first = {o.pid for o in runner.run(specs)}
            pids_second = {o.pid for o in runner.run(specs)}
            assert pids_first & pids_second, \
                "persistent runner built a fresh pool per run"
        assert _drain_children(), "close() left live workers"

    def test_close_is_idempotent_and_inline_needs_no_pool(self):
        runner = ShardedRunner(jobs=1, persistent=True)
        outcomes = runner.run([ShardSpec(program="gcd", kind="reference")])
        assert outcomes[0].pid == os.getpid()  # inline, no pool spawned
        assert runner._pool is None
        runner.close()
        runner.close()
