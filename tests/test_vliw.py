"""VLIW core, synchronization device, and bridge tests."""

import pytest

from repro.arch.model import default_target_arch
from repro.errors import HazardError, SimulationError
from repro.isa.c6x.instructions import TargetInstr, TOp
from repro.isa.c6x.packets import C6xProgram, ExecutePacket
from repro.isa.c6x.units import Unit
from repro.soc.bus import standard_bus
from repro.vliw.bridge import BusBridge
from repro.vliw.core import C6xCore
from repro.vliw.platform import PrototypingPlatform
from repro.vliw.syncdev import (
    REG_CMD,
    REG_CORR_CMD,
    REG_CORR_STATUS,
    REG_STATUS,
    SyncDevice,
)

TARGET = default_target_arch()


def _program(packets, labels=None) -> C6xProgram:
    program = C6xProgram(target=TARGET)
    program.packets = [ExecutePacket(instrs=list(p)) for p in packets]
    program.labels = {"__entry": 0, **(labels or {})}
    for packet in program.packets:
        used: set[Unit] = set()
        for instr in packet.instrs:
            if instr.op is not TOp.NOP and instr.unit is None:
                instr.unit = _free_unit(instr, used)
                used.add(instr.unit)
    return program.finalize()


def _free_unit(instr, used) -> Unit:
    from repro.isa.c6x.instructions import UNIT_KINDS
    from repro.isa.c6x.units import UNITS_BY_KIND

    for kind in UNIT_KINDS[instr.op]:
        for unit in UNITS_BY_KIND[kind]:
            if unit not in used:
                return unit
    raise AssertionError("no free unit in test packet")


def _core(packets, labels=None, rate=1.0, strict=True):
    bus = standard_bus()
    sync = SyncDevice(rate=rate)
    bridge = BusBridge(bus, sync)
    # sync_access_stall=0: these tests probe protocol behaviour, not the
    # fixed external-bus cost of reaching the device.
    core = C6xCore(_program(packets, labels), sync, bridge, strict=strict,
                   sync_access_stall=0)
    return core, sync, bus


def _run(core, limit=10_000):
    while not core.halted:
        core.step_packet()
        if core.cycles > limit:
            raise AssertionError("runaway core")
    return core


class TestAluAndPackets:
    def test_mvk_and_add(self):
        core, _, _ = _core([
            [TargetInstr(TOp.MVK, dst=0, imm=20),
             TargetInstr(TOp.MVK, dst=1, imm=22)],
            [TargetInstr(TOp.ADD, dst=2, src1=0, src2=1)],
            [TargetInstr(TOp.HALT)],
        ])
        _run(core)
        assert core.regs[2] == 42

    def test_mvkl_mvkh_pair(self):
        core, _, _ = _core([
            [TargetInstr(TOp.MVKL, dst=0, imm=-16657)],  # 0xBEEF s16
            [TargetInstr(TOp.MVKH, dst=0, imm=0xDEAD)],
            [TargetInstr(TOp.HALT)],
        ])
        _run(core)
        assert core.regs[0] == 0xDEADBEEF

    def test_parallel_reads_see_old_values(self):
        # swap in one packet: both read pre-packet state
        core, _, _ = _core([
            [TargetInstr(TOp.MVK, dst=0, imm=1),
             TargetInstr(TOp.MVK, dst=1, imm=2)],
            [TargetInstr(TOp.ADD, dst=0, src1=1, imm=0),
             TargetInstr(TOp.ADD, dst=1, src1=0, imm=0)],
            [TargetInstr(TOp.HALT)],
        ])
        _run(core)
        assert (core.regs[0], core.regs[1]) == (2, 1)

    def test_predication(self):
        core, _, _ = _core([
            [TargetInstr(TOp.MVK, dst=0, imm=0),
             TargetInstr(TOp.MVK, dst=1, imm=7)],
            [TargetInstr(TOp.MVK, dst=2, imm=1, pred=0)],  # nullified
            [TargetInstr(TOp.MVK, dst=3, imm=1, pred=0, pred_sense=False)],
            [TargetInstr(TOp.MVK, dst=4, imm=1, pred=1)],
            [TargetInstr(TOp.HALT)],
        ])
        _run(core)
        assert core.regs[2] == 0
        assert core.regs[3] == 1
        assert core.regs[4] == 1


class TestDelaySlots:
    def test_load_delay_visible(self):
        # Reading the load's destination during the shadow is a hazard
        # in strict mode.
        core, _, _ = _core([
            [TargetInstr(TOp.LDW, dst=0, src1=1, imm=0)],
            [TargetInstr(TOp.ADD, dst=2, src1=0, imm=1)],
            [TargetInstr(TOp.HALT)],
        ])
        core.regs[1] = TARGET.data_base
        with pytest.raises(HazardError):
            _run(core)

    def test_load_result_after_delay(self):
        packets = [
            [TargetInstr(TOp.MVKL, dst=1, imm=0)],
            [TargetInstr(TOp.MVKH, dst=1, imm=TARGET.data_base >> 16)],
            [TargetInstr(TOp.LDW, dst=0, src1=1, imm=0)],
        ]
        packets += [[TargetInstr(TOp.NOP, imm=1)]] * TARGET.load_delay_slots
        packets += [
            [TargetInstr(TOp.ADD, dst=2, src1=0, imm=1)],
            [TargetInstr(TOp.HALT)],
        ]
        core, _, _ = _core(packets)
        core._mem[0:4] = (41).to_bytes(4, "little")
        _run(core)
        assert core.regs[2] == 42

    def test_branch_delay_slots_execute(self):
        labels = {"target": 8}
        packets = [
            [TargetInstr(TOp.B, target="target")],
        ]
        # 5 delay slots, each incrementing r0
        for _ in range(TARGET.branch_delay_slots):
            packets.append([TargetInstr(TOp.ADD, dst=0, src1=0, imm=1)])
        packets.append([TargetInstr(TOp.ADD, dst=0, src1=0, imm=100)])  # skipped
        packets.append([TargetInstr(TOp.ADD, dst=0, src1=0, imm=100)])  # skipped
        packets.append([TargetInstr(TOp.HALT)])  # index 8 = target
        core, _, _ = _core(packets, labels)
        _run(core)
        assert core.regs[0] == TARGET.branch_delay_slots

    def test_branch_in_delay_slots_rejected(self):
        labels = {"a": 3, "b": 4}
        packets = [
            [TargetInstr(TOp.B, target="a")],
            [TargetInstr(TOp.B, target="b")],
            [TargetInstr(TOp.NOP, imm=1)],
            [TargetInstr(TOp.HALT)],
            [TargetInstr(TOp.HALT)],
        ]
        core, _, _ = _core(packets, labels)
        with pytest.raises(SimulationError):
            _run(core)

    def test_indirect_branch_via_addr_map(self):
        labels = {"fn": 7}
        packets = [
            [TargetInstr(TOp.MVKL, dst=0, imm=0x1234)],
            [TargetInstr(TOp.MVKH, dst=0, imm=0x8000)],
            [TargetInstr(TOp.B, src1=0)],
        ]
        packets += [[TargetInstr(TOp.NOP, imm=1)]] * 5
        packets += [[TargetInstr(TOp.HALT)]]
        core, _, _ = _core(packets, labels)
        core.program.addr_to_packet[0x8000_1234] = 8
        _run(core)
        assert core.halted

    def test_indirect_branch_unmapped_rejected(self):
        packets = [
            [TargetInstr(TOp.MVK, dst=0, imm=0x100)],
            [TargetInstr(TOp.B, src1=0)],
        ] + [[TargetInstr(TOp.NOP, imm=1)]] * 6
        core, _, _ = _core(packets)
        with pytest.raises(SimulationError):
            _run(core)


class TestSyncDevice:
    def test_generation_parallel_to_execution(self):
        sync_base = TARGET.sync_base
        packets = [
            [TargetInstr(TOp.MVKL, dst=1, imm=sync_base & 0xFFFF)],
            [TargetInstr(TOp.MVKH, dst=1, imm=sync_base >> 16)],
            [TargetInstr(TOp.MVK, dst=0, imm=3)],
            [TargetInstr(TOp.STW, src1=0, src2=1, imm=REG_CMD)],
            [TargetInstr(TOp.NOP, imm=1)],
            [TargetInstr(TOp.NOP, imm=1)],
            [TargetInstr(TOp.NOP, imm=1)],
            [TargetInstr(TOp.LDW, dst=2, src1=1, imm=REG_STATUS)],
            [TargetInstr(TOp.HALT)],
        ]
        core, sync, _ = _core(packets)
        _run(core)
        assert sync.emulated_cycles == 3
        assert core.stats.sync_stall_cycles == 0  # generation finished

    def test_wait_stalls_until_done(self):
        sync_base = TARGET.sync_base
        packets = [
            [TargetInstr(TOp.MVKL, dst=1, imm=sync_base & 0xFFFF)],
            [TargetInstr(TOp.MVKH, dst=1, imm=sync_base >> 16)],
            [TargetInstr(TOp.MVK, dst=0, imm=50)],
            [TargetInstr(TOp.STW, src1=0, src2=1, imm=REG_CMD)],
            [TargetInstr(TOp.LDW, dst=2, src1=1, imm=REG_STATUS)],
            [TargetInstr(TOp.HALT)],
        ]
        core, sync, _ = _core(packets)
        _run(core)
        assert sync.emulated_cycles == 50
        assert core.stats.sync_stall_cycles > 0

    def test_double_start_rejected(self):
        sync = SyncDevice()
        sync.write(REG_CMD, 10)
        with pytest.raises(SimulationError):
            sync.write(REG_CMD, 5)

    def test_correction_channel(self):
        sync = SyncDevice(rate=2.0)
        sync.write(REG_CORR_CMD, 4)
        assert sync.read_blocks(REG_CORR_STATUS)
        sync.tick()
        sync.tick()
        assert not sync.read_blocks(REG_CORR_STATUS)
        assert sync.emulated_cycles == 4

    def test_fractional_rate(self):
        sync = SyncDevice(rate=0.5)
        sync.write(REG_CMD, 2)
        ticks = 0
        while sync.read_blocks(REG_STATUS):
            sync.tick()
            ticks += 1
        assert ticks == 4  # 0.5 cycles per tick

    def test_flush(self):
        sync = SyncDevice()
        sync.write(REG_CMD, 100)
        sync.flush()
        assert sync.emulated_cycles == 100
        assert not sync.busy

    def test_bad_rate(self):
        with pytest.raises(SimulationError):
            SyncDevice(rate=0)

    def test_stats(self):
        sync = SyncDevice()
        sync.write(REG_CMD, 5)
        sync.write(REG_CORR_CMD, 2)
        sync.flush()
        assert sync.stats.blocks_started == 1
        assert sync.stats.corrections_started == 1
        assert sync.stats.cycles_generated == 5
        assert sync.stats.correction_cycles_generated == 2


class TestBridge:
    def test_bridge_write_reaches_bus(self):
        bridge_base = TARGET.bridge_base
        packets = [
            [TargetInstr(TOp.MVKL, dst=1, imm=bridge_base & 0xFFFF)],
            [TargetInstr(TOp.MVKH, dst=1, imm=bridge_base >> 16)],
            [TargetInstr(TOp.MVK, dst=0, imm=65)],
            [TargetInstr(TOp.STW, src1=0, src2=1, imm=0)],  # uart data
            [TargetInstr(TOp.HALT)],
        ]
        core, _, bus = _core(packets)
        _run(core)
        assert bus.device("uart").output == b"A"
        assert core.stats.bridge_stall_cycles > 0

    def test_bridge_read(self):
        bridge_base = TARGET.bridge_base
        packets = [
            [TargetInstr(TOp.MVKL, dst=1, imm=bridge_base & 0xFFFF)],
            [TargetInstr(TOp.MVKH, dst=1, imm=bridge_base >> 16)],
            [TargetInstr(TOp.LDW, dst=0, src1=1, imm=0x10)],  # timer
            [TargetInstr(TOp.NOP, imm=1)] * 1,
        ] + [[TargetInstr(TOp.NOP, imm=1)]] * 4 + [
            [TargetInstr(TOp.HALT)],
        ]
        core, _, _ = _core(packets)
        _run(core)
        assert core.regs[0] == 0  # no cycles generated yet

    def test_timestamps_use_emulated_clock(self):
        sync_base = TARGET.sync_base
        bridge_base = TARGET.bridge_base
        packets = [
            [TargetInstr(TOp.MVKL, dst=1, imm=sync_base & 0xFFFF)],
            [TargetInstr(TOp.MVKH, dst=1, imm=sync_base >> 16)],
            [TargetInstr(TOp.MVKL, dst=2, imm=bridge_base & 0xFFFF)],
            [TargetInstr(TOp.MVKH, dst=2, imm=bridge_base >> 16)],
            [TargetInstr(TOp.MVK, dst=0, imm=10)],
            [TargetInstr(TOp.STW, src1=0, src2=1, imm=REG_CMD)],
            [TargetInstr(TOp.LDW, dst=3, src1=1, imm=REG_STATUS)],
            [TargetInstr(TOp.MVK, dst=4, imm=88)],
            [TargetInstr(TOp.STW, src1=4, src2=2, imm=0)],
            [TargetInstr(TOp.HALT)],
        ]
        core, sync, bus = _core(packets)
        _run(core)
        (access,) = bus.monitor.transfers()
        assert access.cycle == 10  # stamped with the emulated clock
        assert access.value == 88


class TestPlatform:
    def test_platform_wires_exit_device(self):
        bridge_base = TARGET.bridge_base
        packets = [
            [TargetInstr(TOp.MVKL, dst=1, imm=bridge_base & 0xFFFF)],
            [TargetInstr(TOp.MVKH, dst=1, imm=bridge_base >> 16)],
            [TargetInstr(TOp.MVK, dst=0, imm=5)],
            [TargetInstr(TOp.STW, src1=0, src2=1, imm=0x20)],
            [TargetInstr(TOp.HALT)],
        ]
        platform = PrototypingPlatform(_program(packets))
        result = platform.run()
        assert result.exit_code == 5

    def test_cycle_limit(self):
        labels = {"top": 0}
        packets = [[TargetInstr(TOp.B, target="top")]] \
            + [[TargetInstr(TOp.NOP, imm=1)]] * 5
        platform = PrototypingPlatform(_program(packets, labels))
        with pytest.raises(SimulationError):
            platform.run(max_cycles=500)
