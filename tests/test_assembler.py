"""Assembler and disassembler tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblerError
from repro.isa.tricore.assembler import assemble
from repro.isa.tricore.disassembler import (
    disassemble_blob,
    disassemble_object,
    format_listing,
)
from repro.isa.tricore.encoding import decode_bytes


def _text(obj):
    return obj.text().data


class TestBasics:
    def test_empty_text_section(self):
        obj = assemble("    .text\nstart:\n    nop\n")
        assert len(_text(obj)) == 4

    def test_labels_resolve(self):
        obj = assemble("""
            .text
        _start:
            j target
            nop
        target:
            halt
        """)
        decoded = decode_bytes(_text(obj), obj.text().addr)
        assert decoded[0][1].key == "j"

    def test_entry_defaults_to_start(self):
        obj = assemble("_start:\n    nop\n")
        assert obj.entry == obj.symbols["_start"].addr

    def test_entry_directive(self):
        obj = assemble("""
            .entry main
        other:
            nop
        main:
            halt
        """)
        assert obj.entry == obj.symbols["main"].addr

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\n    nop\na:\n    nop\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("    frobnicate d1, d2\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("    j nowhere\n")

    def test_comments_stripped(self):
        obj = assemble("    nop ; trailing\n    nop # hash\n    nop // slash\n")
        assert len(_text(obj)) == 12

    def test_error_reports_line(self):
        with pytest.raises(AssemblerError) as info:
            assemble("    nop\n    bogus d1\n")
        assert "line 2" in str(info.value)


class TestOperandForms:
    def test_register_register(self):
        obj = assemble("    add d3, d1, d2\n")
        (_, spec, fields, _), = decode_bytes(_text(obj), obj.text().addr)
        assert spec.key == "add"
        assert fields == {"a": 1, "b": 2, "c": 3}

    def test_register_constant_selects_rc9(self):
        obj = assemble("    add d3, d1, 42\n")
        (_, spec, fields, _), = decode_bytes(_text(obj), obj.text().addr)
        assert spec.key == "add_c"
        assert fields["k"] == 42

    def test_constant_too_large_for_rc9(self):
        with pytest.raises(AssemblerError):
            assemble("    add d3, d1, 300\n")

    def test_memory_modes(self):
        source = """
            ld.w d1, [a2]8
            ld.w d1, [a2+]4
            ld.w d1, [+a2]4
            st.w [a3]-4, d5
        """
        obj = assemble(source)
        decoded = decode_bytes(_text(obj), obj.text().addr)
        modes = [fields["mode"] for _, _, fields, _ in decoded]
        assert modes == [0, 1, 2, 0]
        assert decoded[3][2]["off"] == -4

    def test_long_offset_selects_bol(self):
        obj = assemble("    ld.w d1, [a2]1000\n")
        (_, spec, _, _), = decode_bytes(_text(obj), obj.text().addr)
        assert spec.key == "ld_w_bol"

    def test_explicit_long_form(self):
        obj = assemble("    ld.w.l d1, [a2]4\n")
        (_, spec, _, _), = decode_bytes(_text(obj), obj.text().addr)
        assert spec.key == "ld_w_bol"

    def test_jz_alias(self):
        obj = assemble("lbl:\n    jz d3, lbl\n")
        decoded = decode_bytes(_text(obj), obj.text().addr)
        assert decoded[0][1].key == "jeq_c"
        assert decoded[0][2]["k"] == 0

    def test_sixteen_bit_forms(self):
        obj = assemble("    mov16 d1, d2\n    add16 d1, 3\n    ret16\n")
        decoded = decode_bytes(_text(obj), obj.text().addr)
        assert [d[3] for d in decoded] == [2, 2, 2]

    def test_branch_displacement_negative(self):
        obj = assemble("top:\n    nop\n    j top\n")
        decoded = decode_bytes(_text(obj), obj.text().addr)
        assert decoded[1][2]["disp"] == -2  # 4 bytes back = 2 halfwords


class TestDirectives:
    def test_word_half_byte(self):
        obj = assemble("""
            .data
        v:
            .word 0x11223344
            .half 0x5566
            .byte 0x77
        """)
        data = obj.section(".data").data
        assert data == bytes.fromhex("44332211" "6655" "77")

    def test_space_and_align(self):
        obj = assemble("""
            .data
            .byte 1
            .align 4
            .word 2
        """)
        data = obj.section(".data").data
        assert len(data) == 8
        assert data[4:8] == (2).to_bytes(4, "little")

    def test_asciz(self):
        obj = assemble('    .data\n    .asciz "hi"\n')
        assert obj.section(".data").data == b"hi\x00"

    def test_equ(self):
        obj = assemble("""
            .equ MAGIC, 0x40
            .data
            .word MAGIC + 2
        """)
        assert obj.section(".data").data == (0x42).to_bytes(4, "little")

    def test_org_pads_forward(self):
        obj = assemble("""
            .text
            nop
            .org 0x80000010
            halt
        """)
        assert len(_text(obj)) == 0x14

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("    .text\n    nop\n    .org 0x80000000\n")

    def test_word_with_symbol(self):
        obj = assemble("""
            .text
        fn:
            halt
            .data
        ptr:
            .word fn
        """)
        stored = int.from_bytes(obj.section(".data").data, "little")
        assert stored == obj.symbols["fn"].addr


class TestMacros:
    def test_li_small(self):
        obj = assemble("    li d1, 5\n")
        (_, spec, _, _), = decode_bytes(_text(obj), obj.text().addr)
        assert spec.key == "mov"

    def test_li_unsigned16(self):
        obj = assemble("    li d1, 0xFFFF\n")
        (_, spec, _, _), = decode_bytes(_text(obj), obj.text().addr)
        assert spec.key == "mov_u"

    def test_li_large_expands_to_pair(self):
        obj = assemble("    li d1, 0xDEADBEEF\n")
        decoded = decode_bytes(_text(obj), obj.text().addr)
        assert [d[1].key for d in decoded] == ["movh", "addi"]

    def test_la_symbol(self):
        obj = assemble("""
            la a2, buffer
            halt
            .data
        buffer:
            .word 0
        """)
        decoded = decode_bytes(_text(obj), obj.text().addr)
        assert [d[1].key for d in decoded][:2] == ["movh_a", "lea_bol"]


class TestExpressions:
    def test_hi_lo_reconstruct(self):
        # movh + sign-extended low must reconstruct any address
        for addr in (0xD0000000, 0xD000FFF0, 0x8000ABCD, 0x0000FFFF):
            hi = ((addr + 0x8000) >> 16) & 0xFFFF
            lo = addr & 0xFFFF
            if lo >= 0x8000:
                lo -= 0x10000
            assert ((hi << 16) + lo) & 0xFFFFFFFF == addr

    def test_arithmetic(self):
        obj = assemble("    .data\n    .word 1+2-3+0x10\n")
        assert obj.section(".data").data == (0x10).to_bytes(4, "little")

    def test_parentheses(self):
        obj = assemble("    .data\n    .word (1+2)-(3-1)\n")
        assert obj.section(".data").data == (1).to_bytes(4, "little")


class TestDisassembler:
    def _roundtrip(self, source: str) -> None:
        obj = assemble(source)
        text = disassemble_object(obj)
        obj2 = assemble(text)
        assert obj2.text().data == obj.text().data

    def test_roundtrip_simple(self):
        self._roundtrip("""
        _start:
            li d4, 100
            li d5, 42
            add d6, d4, d5
            st.w [a2]4, d6
            halt
        """)

    def test_roundtrip_control_flow(self):
        self._roundtrip("""
        _start:
            mov d1, 10
        top:
            add d1, d1, -1
            jnz d1, top
            call fn
            halt
        fn:
            mov16 d2, d1
            ret16
        """)

    def test_roundtrip_memory_modes(self):
        self._roundtrip("""
        _start:
            la a2, 0xD0000000
            ld.w d1, [a2+]4
            ld.w d2, [+a2]4
            st.w [a2]8, d1
            ld.w.l d3, [a2]1000
            halt
        """)

    def test_listing_contains_addresses(self):
        obj = assemble("_start:\n    nop\n    halt\n")
        listing = format_listing(obj.text().data, obj.text().addr)
        assert "80000000" in listing
        assert "nop" in listing

    def test_blob_labels(self):
        obj = assemble("top:\n    nop\n    j top\n")
        lines = disassemble_blob(obj.text().data, obj.text().addr)
        assert "L_80000000" in lines[1].text


@given(st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=15),
       st.integers(min_value=-256, max_value=255))
def test_rc9_roundtrip_via_assembler(a, c, k):
    source = f"    add d{c}, d{a}, {k}\n"
    obj = assemble(source)
    decoded = decode_bytes(obj.text().data, obj.text().addr)
    assert decoded[0][2] == {"a": a, "c": c, "k": k}
