"""Reference-simulator tests: semantics, timing behaviours, variants."""

import pytest

from repro.arch.model import default_source_arch
from repro.errors import SimulationError
from repro.isa.tricore.assembler import assemble
from repro.refsim.iss import CycleAccurateISS, FunctionalISS, InterpretedISS
from repro.utils.bits import s32


def run_asm(body: str, cls=FunctionalISS, arch=None, max_instructions=200_000):
    """Assemble `_start:` + body (must end in halt) and run it."""
    obj = assemble("_start:\n" + body)
    iss = cls(obj, arch)
    return iss.run(max_instructions=max_instructions)


class TestArithmeticSemantics:
    def _d(self, result, reg):
        return s32(result.regs[reg])

    def test_add_sub(self):
        res = run_asm("""
            li d1, 100
            li d2, 42
            add d3, d1, d2
            sub d4, d1, d2
            halt
        """)
        assert self._d(res, 3) == 142
        assert self._d(res, 4) == 58

    def test_mul_wraps(self):
        res = run_asm("""
            li d1, 1103515245
            li d2, 987654321
            mul d3, d1, d2
            halt
        """)
        assert res.regs[3] == (1103515245 * 987654321) & 0xFFFF_FFFF

    def test_logic(self):
        res = run_asm("""
            li d1, 0xF0F0
            li d2, 0x0FF0
            and d3, d1, d2
            or d4, d1, d2
            xor d5, d1, d2
            andn d6, d1, d2
            not d7, d1
            halt
        """)
        assert res.regs[3] == 0x00F0
        assert res.regs[4] == 0xFFF0
        assert res.regs[5] == 0xFF00
        assert res.regs[6] == 0xF000
        assert res.regs[7] == 0xFFFF_0F0F

    def test_shifts(self):
        res = run_asm("""
            li d1, -16
            shl d2, d1, 2
            shr d3, d1, 2
            shra d4, d1, 2
            halt
        """)
        assert s32(res.regs[2]) == -64
        assert res.regs[3] == 0x3FFF_FFFC
        assert s32(res.regs[4]) == -4

    def test_min_max_abs(self):
        res = run_asm("""
            li d1, -5
            li d2, 3
            min d3, d1, d2
            max d4, d1, d2
            abs d5, d1
            halt
        """)
        assert s32(res.regs[3]) == -5
        assert s32(res.regs[4]) == 3
        assert s32(res.regs[5]) == 5

    def test_compares(self):
        res = run_asm("""
            li d1, -1
            li d2, 1
            lt d3, d1, d2
            lt.u d4, d1, d2
            ge d5, d1, d2
            eq d6, d1, d1
            ne d7, d1, d2
            halt
        """)
        assert res.regs[3] == 1  # signed: -1 < 1
        assert res.regs[4] == 0  # unsigned: 0xFFFFFFFF > 1
        assert res.regs[5] == 0
        assert res.regs[6] == 1
        assert res.regs[7] == 1


class TestMemorySemantics:
    def test_word_roundtrip(self):
        res = run_asm("""
            la a2, buf
            li d1, 0x12345678
            st.w [a2], d1
            ld.w d2, [a2]
            halt
            .data
        buf:
            .space 16
        """)
        assert res.regs[2] == 0x12345678

    def test_byte_sign_extension(self):
        res = run_asm("""
            la a2, buf
            li d1, 0x80
            st.b [a2], d1
            ld.b d2, [a2]
            ld.bu d3, [a2]
            halt
            .data
        buf:
            .space 4
        """)
        assert s32(res.regs[2]) == -128
        assert res.regs[3] == 0x80

    def test_half_sign_extension(self):
        res = run_asm("""
            la a2, buf
            li d1, 0x8001
            st.h [a2], d1
            ld.h d2, [a2]
            ld.hu d3, [a2]
            halt
            .data
        buf:
            .space 4
        """)
        assert s32(res.regs[2]) == -32767
        assert res.regs[3] == 0x8001

    def test_post_increment(self):
        res = run_asm("""
            la a2, buf
            li d1, 7
            st.w [a2+]4, d1
            mov.d d3, a2
            halt
            .data
        buf:
            .space 8
        """)
        base = res.regs[3] - 4
        assert res.data_image[base - 0xD000_0000:][:4] == (7).to_bytes(4, "little")

    def test_pre_increment(self):
        res = run_asm("""
            la a2, buf
            li d1, 9
            st.w [+a2]4, d1
            halt
            .data
        buf:
            .space 8
        """)
        offset = res.bus_trace  # not via bus; check memory directly
        del offset
        # the word landed at buf+4
        from repro.isa.tricore.assembler import assemble as _asm
        assert res.data_image[4:8] == (9).to_bytes(4, "little")


class TestControlFlow:
    def test_call_ret(self):
        res = run_asm("""
            li d4, 5
            call double
            mov16 d3, d2
            halt
        double:
            add d2, d4, d4
            ret
        """)
        assert res.regs[3] == 10

    def test_indirect_call(self):
        res = run_asm("""
            la a2, fn
            calli a2
            halt
        fn:
            mov d2, 77
            ret
        """)
        assert res.regs[2] == 77

    def test_indirect_jump(self):
        res = run_asm("""
            la a2, there
            ji a2
            mov d1, 1
            halt
        there:
            mov d1, 2
            halt
        """)
        assert res.regs[1] == 2

    def test_loop_instruction(self):
        res = run_asm("""
            li d1, 0
            la a2, 0xD0000005   ; counter value 5 in an address register
            mov.d d3, a2
            mov d3, 5
            mov.a a2, d3
        top:
            add d1, d1, 1
            loop a2, top
            halt
        """)
        assert res.regs[1] == 5

    def test_cond_branches(self):
        res = run_asm("""
            li d1, 3
            li d2, 5
            jlt d1, d2, less
            mov d3, 0
            halt
        less:
            mov d3, 1
            halt
        """)
        assert res.regs[3] == 1


class TestRunControl:
    def test_halt_stops(self):
        res = run_asm("    halt\n")
        assert res.halted
        assert res.instructions == 1

    def test_exit_device_stops(self):
        res = run_asm("""
            la a2, 0xF0000020
            li d1, 99
            st.w [a2], d1
            nop
            nop
            halt
        """)
        assert res.exit_code == 99
        assert not res.halted  # stopped on the exit write, not halt

    def test_instruction_limit(self):
        with pytest.raises(SimulationError):
            run_asm("top:\n    j top\n", max_instructions=100)

    def test_step_after_halt_rejected(self):
        obj = assemble("_start:\n    halt\n")
        iss = FunctionalISS(obj)
        iss.run()
        with pytest.raises(SimulationError):
            iss.step()


class TestVariantEquivalence:
    SOURCE = """
            li d1, 0
            li d2, 10
        top:
            add d1, d1, d2
            add d2, d2, -1
            jnz d2, top
            halt
    """

    def test_interpreted_matches_cached(self):
        a = run_asm(self.SOURCE, InterpretedISS)
        b = run_asm(self.SOURCE, FunctionalISS)
        assert a.regs == b.regs
        assert a.instructions == b.instructions

    def test_cycle_accurate_same_function(self):
        a = run_asm(self.SOURCE, FunctionalISS)
        b = run_asm(self.SOURCE, CycleAccurateISS)
        assert a.regs == b.regs
        assert b.cycles > b.instructions  # some timing cost exists


class TestTimingBehaviour:
    def test_icache_cold_misses_counted(self):
        res = run_asm("    nop\n" * 40 + "    halt\n", CycleAccurateISS)
        assert res.cache_stats.misses >= 2  # > one line of code

    def test_icache_disabled(self):
        arch = default_source_arch().with_icache(enabled=False)
        res = run_asm("    nop\n    halt\n", CycleAccurateISS, arch)
        assert res.cache_stats.misses == 0

    def test_branch_stats(self):
        res = run_asm("""
            li d1, 4
        top:
            add d1, d1, -1
            jnz d1, top
            halt
        """, CycleAccurateISS)
        assert res.branch_stats.conditional == 4
        assert res.branch_stats.taken == 3
        # BTFN predicts the backward branch taken: one mispredict (exit)
        assert res.branch_stats.mispredicted == 1

    def test_io_access_cost(self):
        arch = default_source_arch()
        body = """
            la a2, 0xF0000040
            li d1, 5
            st.w [a2], d1
            st.w [a2], d1
            halt
        """
        res = run_asm(body, CycleAccurateISS, arch)
        base = run_asm("""
            la a2, 0xD0000040
            li d1, 5
            st.w [a2], d1
            st.w [a2], d1
            halt
        """, CycleAccurateISS, arch)
        extra = res.cycles - base.cycles
        assert extra == 2 * arch.pipeline.io_access_cycles

    def test_cpi_reasonable(self):
        res = run_asm(TestVariantEquivalence.SOURCE, CycleAccurateISS)
        assert 1.0 <= res.cpi <= 3.0
