"""VLIW scheduler tests: dependence preservation, unit constraints,
delay-slot handling, and a hypothesis property over random instruction
sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.model import default_target_arch
from repro.isa.c6x.instructions import TargetInstr, TOp, delay_slots
from repro.translator.schedule import RegionScheduler

TARGET = default_target_arch()


def _schedule(body, terminator=None):
    return RegionScheduler(TARGET).schedule(body, terminator)


def _issue_map(region):
    """instruction id -> issue cycle."""
    result = {}
    for cycle, packet in enumerate(region.packets):
        for instr in packet.instrs:
            if instr.op is not TOp.NOP:
                result[id(instr)] = cycle
    return result


class TestBasics:
    def test_independent_ops_share_packet(self):
        a = TargetInstr(TOp.ADD, dst=0, src1=1, src2=2)
        b = TargetInstr(TOp.ADD, dst=3, src1=4, src2=5)
        region = _schedule([a, b])
        issues = _issue_map(region)
        assert issues[id(a)] == issues[id(b)] == 0

    def test_raw_chain_serializes(self):
        a = TargetInstr(TOp.ADD, dst=0, src1=1, src2=2)
        b = TargetInstr(TOp.ADD, dst=3, src1=0, src2=2)
        region = _schedule([a, b])
        issues = _issue_map(region)
        assert issues[id(b)] == issues[id(a)] + 1

    def test_load_delay_respected(self):
        load = TargetInstr(TOp.LDW, dst=0, src1=1, imm=0)
        use = TargetInstr(TOp.ADD, dst=2, src1=0, src2=3)
        region = _schedule([load, use])
        issues = _issue_map(region)
        assert issues[id(use)] >= issues[id(load)] + 1 + TARGET.load_delay_slots

    def test_mpy_delay_respected(self):
        mul = TargetInstr(TOp.MPY, dst=0, src1=1, src2=2)
        use = TargetInstr(TOp.ADD, dst=3, src1=0, src2=4)
        region = _schedule([mul, use])
        issues = _issue_map(region)
        assert issues[id(use)] >= issues[id(mul)] + 1 + TARGET.mul_delay_slots

    def test_war_allows_same_cycle(self):
        reader = TargetInstr(TOp.ADD, dst=5, src1=0, src2=1)
        writer = TargetInstr(TOp.ADD, dst=0, src1=2, src2=3)
        region = _schedule([reader, writer])
        issues = _issue_map(region)
        assert issues[id(writer)] >= issues[id(reader)]

    def test_waw_serializes(self):
        a = TargetInstr(TOp.ADD, dst=0, src1=1, src2=2)
        b = TargetInstr(TOp.ADD, dst=0, src1=3, src2=4)
        region = _schedule([a, b])
        issues = _issue_map(region)
        assert issues[id(b)] > issues[id(a)]


class TestUnits:
    def test_one_unit_per_instruction(self):
        instrs = [TargetInstr(TOp.ADD, dst=i, src1=16, src2=17)
                  for i in range(6)]
        region = _schedule(instrs)
        for packet in region.packets:
            units = [i.unit for i in packet.instrs if i.op is not TOp.NOP]
            assert len(set(units)) == len(units)

    def test_mpy_only_on_m_units(self):
        muls = [TargetInstr(TOp.MPY, dst=i, src1=8, src2=9) for i in range(4)]
        region = _schedule(muls)
        for packet in region.packets:
            for instr in packet.instrs:
                if instr.op is TOp.MPY:
                    assert instr.unit.kind == "M"

    def test_two_m_units_limit_throughput(self):
        muls = [TargetInstr(TOp.MPY, dst=i, src1=8, src2=9) for i in range(4)]
        region = _schedule(muls)
        issues = sorted(_issue_map(region).values())
        assert issues == [0, 0, 1, 1]

    def test_memory_ops_on_d_units(self):
        load = TargetInstr(TOp.LDW, dst=0, src1=1, imm=0)
        region = _schedule([load])
        assert region.packets[0].instrs[0].unit.kind == "D"

    def test_shifts_on_s_units(self):
        shift = TargetInstr(TOp.SHL, dst=0, src1=1, imm=2)
        region = _schedule([shift])
        assert region.packets[0].instrs[0].unit.kind == "S"


class TestMemoryOrdering:
    def test_stores_stay_ordered(self):
        s1 = TargetInstr(TOp.STW, src1=0, src2=1, imm=0)
        s2 = TargetInstr(TOp.STW, src1=2, src2=3, imm=4)
        region = _schedule([s1, s2])
        issues = _issue_map(region)
        assert issues[id(s2)] > issues[id(s1)]

    def test_loads_may_reorder_freely(self):
        l1 = TargetInstr(TOp.LDW, dst=0, src1=8, imm=0)
        l2 = TargetInstr(TOp.LDW, dst=1, src1=9, imm=0)
        region = _schedule([l1, l2])
        issues = _issue_map(region)
        assert issues[id(l1)] == issues[id(l2)] == 0  # both D units

    def test_device_loads_stay_ordered(self):
        l1 = TargetInstr(TOp.LDW, dst=0, src1=8, imm=0, device=True)
        l2 = TargetInstr(TOp.LDW, dst=1, src1=9, imm=0, device=True)
        region = _schedule([l1, l2])
        issues = _issue_map(region)
        assert issues[id(l2)] > issues[id(l1)]

    def test_load_does_not_pass_store(self):
        store = TargetInstr(TOp.STW, src1=0, src2=1, imm=0)
        load = TargetInstr(TOp.LDW, dst=2, src1=3, imm=0)
        region = _schedule([store, load])
        issues = _issue_map(region)
        assert issues[id(load)] > issues[id(store)]


class TestBranchPlacement:
    def test_delay_slots_padded(self):
        add = TargetInstr(TOp.ADD, dst=0, src1=1, src2=2)
        branch = TargetInstr(TOp.B, target="L")
        region = _schedule([add], branch)
        assert region.branch_issue is not None
        assert len(region.packets) == region.branch_issue \
            + TARGET.branch_delay_slots + 1

    def test_branch_waits_for_predicate(self):
        cmp = TargetInstr(TOp.CMPEQ, dst=0, src1=1, src2=2)
        branch = TargetInstr(TOp.B, target="L", pred=0)
        region = _schedule([cmp], branch)
        assert region.branch_issue >= 1

    def test_branch_covers_load_completion(self):
        load = TargetInstr(TOp.LDW, dst=0, src1=1, imm=0)
        branch = TargetInstr(TOp.B, target="L")
        region = _schedule([load], branch)
        # Control transfers at branch_issue + 6; the load completes at
        # issue + 5 <= that point.
        transfer = region.branch_issue + TARGET.branch_delay_slots + 1
        assert 0 + 1 + TARGET.load_delay_slots <= transfer

    def test_fallthrough_region_quiet_at_exit(self):
        load = TargetInstr(TOp.LDW, dst=0, src1=1, imm=0)
        region = _schedule([load])
        assert len(region.packets) >= 1 + TARGET.load_delay_slots

    def test_empty_region_with_branch(self):
        branch = TargetInstr(TOp.B, target="L")
        region = _schedule([], branch)
        assert len(region.packets) == TARGET.branch_delay_slots + 1


class TestHaltBarrier:
    def test_halt_after_everything(self):
        store = TargetInstr(TOp.STW, src1=0, src2=1, imm=0)
        halt = TargetInstr(TOp.HALT)
        region = _schedule([store, halt])
        issues = _issue_map(region)
        assert issues[id(halt)] > issues[id(store)]


@st.composite
def _random_instrs(draw):
    count = draw(st.integers(min_value=1, max_value=14))
    instrs = []
    for _ in range(count):
        kind = draw(st.sampled_from(["alu", "mul", "load", "store", "mvk"]))
        dst = draw(st.integers(min_value=0, max_value=11))
        a = draw(st.integers(min_value=0, max_value=11))
        b = draw(st.integers(min_value=0, max_value=11))
        if kind == "alu":
            instrs.append(TargetInstr(TOp.ADD, dst=dst, src1=a, src2=b))
        elif kind == "mul":
            instrs.append(TargetInstr(TOp.MPY, dst=dst, src1=a, src2=b))
        elif kind == "load":
            instrs.append(TargetInstr(TOp.LDW, dst=dst, src1=a, imm=0))
        elif kind == "store":
            instrs.append(TargetInstr(TOp.STW, src1=a, src2=b, imm=0))
        else:
            instrs.append(TargetInstr(TOp.MVK, dst=dst,
                                      imm=draw(st.integers(-100, 100))))
    return instrs


@settings(max_examples=60, deadline=None)
@given(_random_instrs())
def test_schedule_preserves_dependences(instrs):
    """Property: every RAW/WAW/store-order pair keeps its distance."""
    region = _schedule(list(instrs))
    issues = _issue_map(region)
    order = {id(i): n for n, i in enumerate(instrs)}
    for i, a in enumerate(instrs):
        for b in instrs[i + 1:]:
            # RAW
            for reg in a.writes():
                if reg in b.reads():
                    # only the *nearest* prior writer constrains b, but the
                    # conservative check still holds for the farthest one
                    # unless an intermediate write redefined the register.
                    redefined = any(reg in c.writes()
                                    for c in instrs[i + 1:order[id(b)]])
                    if not redefined:
                        assert issues[id(b)] >= issues[id(a)] + 1 + \
                            delay_slots(a.op, TARGET)
            # stores ordered
            if a.is_store() and b.is_store():
                assert issues[id(b)] > issues[id(a)]
    # unit constraints hold everywhere
    for packet in region.packets:
        packet.validate(TARGET)
