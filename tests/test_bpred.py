"""Static branch-prediction model tests."""

from repro.arch.model import BranchModel
from repro.bpred.static_pred import (
    BranchStats,
    dynamic_cost,
    predicted_taken,
    static_cost,
)
from repro.translator.ir import BranchKind


class TestPrediction:
    def test_backward_conditional_taken(self):
        assert predicted_taken(BranchKind.COND, 0x100, 0x200)

    def test_forward_conditional_not_taken(self):
        assert not predicted_taken(BranchKind.COND, 0x300, 0x200)

    def test_loop_always_taken(self):
        assert predicted_taken(BranchKind.LOOP, 0x300, 0x200)

    def test_unconditional_taken(self):
        for kind in (BranchKind.JUMP, BranchKind.CALL, BranchKind.RET,
                     BranchKind.INDIRECT, BranchKind.CALL_INDIRECT):
            assert predicted_taken(kind, None, 0x200)

    def test_none_not_taken(self):
        assert not predicted_taken(BranchKind.NONE, None, 0)


class TestDynamicCost:
    MODEL = BranchModel(taken_correct=2, not_taken_correct=1, mispredict=4,
                        unconditional=2, call=2, ret=3, loop_taken=1,
                        loop_exit=4)

    def test_conditional(self):
        assert dynamic_cost(self.MODEL, BranchKind.COND, True, True) == 2
        assert dynamic_cost(self.MODEL, BranchKind.COND, False, True) == 4

    def test_loop(self):
        assert dynamic_cost(self.MODEL, BranchKind.LOOP, True, True) == 1
        assert dynamic_cost(self.MODEL, BranchKind.LOOP, False, True) == 4

    def test_fixed_kinds(self):
        assert dynamic_cost(self.MODEL, BranchKind.CALL, True, True) == 2
        assert dynamic_cost(self.MODEL, BranchKind.RET, True, True) == 3
        assert dynamic_cost(self.MODEL, BranchKind.JUMP, True, True) == 2

    def test_none(self):
        assert dynamic_cost(self.MODEL, BranchKind.NONE, False, False) == 0


class TestStaticCost:
    MODEL = TestDynamicCost.MODEL

    def test_level1_assumes_predicted_path(self):
        assert static_cost(self.MODEL, BranchKind.COND, True, True) == 2
        assert static_cost(self.MODEL, BranchKind.COND, False, True) == 1

    def test_level2_charges_minimum(self):
        assert static_cost(self.MODEL, BranchKind.COND, True, False) == 1
        assert static_cost(self.MODEL, BranchKind.LOOP, True, False) == 1

    def test_correction_deltas_nonnegative(self):
        minimum = static_cost(self.MODEL, BranchKind.COND, True, False)
        for taken in (True, False):
            for predicted in (True, False):
                assert dynamic_cost(self.MODEL, BranchKind.COND, taken,
                                    predicted) >= minimum


class TestStats:
    def test_misprediction_rate(self):
        stats = BranchStats(conditional=10, mispredicted=3, taken=6)
        assert stats.misprediction_rate == 0.3

    def test_empty_rate(self):
        assert BranchStats().misprediction_rate == 0.0
