"""minic compiler tests: lexer, parser, and end-to-end code generation
validated on the reference ISS, including hypothesis differential tests
of expression evaluation against Python."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MinicError
from repro.minic.astnodes import Bin, Call, For, FuncDecl, If, Num, Var
from repro.minic.compiler import compile_source
from repro.minic.lexer import Token, tokenize
from repro.minic.parser import parse
from repro.refsim.iss import FunctionalISS
from repro.utils.bits import s32


def run_main(source: str) -> int:
    """Compile and run; returns main's return value (sign-extended)."""
    obj = compile_source(source)
    result = FunctionalISS(obj).run(max_instructions=2_000_000)
    assert result.exit_code is not None
    return s32(result.exit_code)


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("0x10 42")
        assert tokens[0].value == 16
        assert tokens[1].value == 42

    def test_keywords_vs_idents(self):
        tokens = tokenize("int interesting")
        assert tokens[0].kind == "keyword"
        assert tokens[1].kind == "ident"

    def test_operators_longest_match(self):
        tokens = tokenize("a <<= b << c <= d")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<<=", "<<", "<="]

    def test_char_literal(self):
        assert tokenize("'A'")[0].value == 65
        assert tokenize(r"'\n'")[0].value == 10

    def test_string_literal(self):
        assert tokenize('"hi\\n"')[0].text == "hi\n"

    def test_comments(self):
        tokens = tokenize("a // line\n/* block\nmore */ b")
        assert [t.text for t in tokens if t.kind == "ident"] == ["a", "b"]

    def test_unterminated_string(self):
        with pytest.raises(MinicError):
            tokenize('"oops')

    def test_bad_character(self):
        with pytest.raises(MinicError):
            tokenize("a @ b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]


class TestParser:
    def test_function_shape(self):
        program = parse("int f(int a, int b) { return a; }")
        func = program.functions[0]
        assert isinstance(func, FuncDecl)
        assert [p.name for p in func.params] == ["a", "b"]

    def test_precedence(self):
        program = parse("int f() { return 1 + 2 * 3; }")
        ret = program.functions[0].body.stmts[0]
        assert isinstance(ret.value, Bin)
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_global_array_sized_by_initializer(self):
        program = parse("int a[] = {1, 2, 3};")
        assert program.globals[0].array_size == 3

    def test_global_string(self):
        program = parse('char msg[8] = "hi";')
        assert program.globals[0].init == "hi"

    def test_for_parts_optional(self):
        program = parse("int f() { for (;;) { break; } return 0; }")
        loop = program.functions[0].body.stmts[0]
        assert isinstance(loop, For)
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_if_else(self):
        program = parse("int f(int x) { if (x) return 1; else return 2; }")
        stmt = program.functions[0].body.stmts[0]
        assert isinstance(stmt, If)
        assert stmt.els is not None

    def test_call_args(self):
        program = parse("int g(int x) { return x; } int f() { return g(3); }")
        ret = program.functions[1].body.stmts[0]
        assert isinstance(ret.value, Call)
        assert isinstance(ret.value.args[0], Num)

    def test_prototype(self):
        program = parse("int f(int a); int f(int a) { return a; }")
        assert program.functions[0].body is None
        assert program.functions[1].body is not None

    def test_missing_semicolon(self):
        with pytest.raises(MinicError):
            parse("int f() { return 1 }")

    def test_bad_assignment_target(self):
        with pytest.raises(MinicError):
            parse("int f() { 1 = 2; return 0; }")

    def test_const_initializer_required(self):
        with pytest.raises(MinicError):
            parse("int f(); int g = f();")


class TestCodegenBasics:
    def test_return_constant(self):
        assert run_main("int main() { return 42; }") == 42

    def test_arithmetic(self):
        assert run_main("int main() { return (7 + 3) * 4 - 6 / 2; }") == 37

    def test_negative_result(self):
        assert run_main("int main() { return 3 - 10; }") == -7

    def test_division_negative(self):
        assert run_main("int main() { return -7 / 2; }") == -3
        assert run_main("int main() { return -7 % 2; }") == -1
        assert run_main("int main() { return 7 % -2; }") == 1

    def test_locals_and_assignment(self):
        assert run_main("""
            int main() { int x = 5; int y; y = x + 1; x += y; return x; }
        """) == 11

    def test_compound_assignments(self):
        assert run_main("""
            int main() {
                int x = 7;
                x *= 3; x -= 1; x /= 2; x |= 0x10; x &= 0x1E; x ^= 2;
                x <<= 2; x >>= 1;
                return x;
            }
        """) == ((((21 - 1) // 2 | 0x10) & 0x1E) ^ 2) << 2 >> 1

    def test_while_loop(self):
        assert run_main("""
            int main() { int i = 0; int s = 0;
                while (i < 10) { s += i; i += 1; } return s; }
        """) == 45

    def test_for_loop_with_continue_break(self):
        assert run_main("""
            int main() { int s = 0; int i;
                for (i = 0; i < 100; i += 1) {
                    if (i % 2 == 0) { continue; }
                    if (i > 10) { break; }
                    s += i;
                } return s; }
        """) == 1 + 3 + 5 + 7 + 9

    def test_logical_ops(self):
        assert run_main("""
            int main() {
                int a = 3; int b = 0;
                int r = 0;
                if (a && !b) { r += 1; }
                if (a || b) { r += 2; }
                if (b && bomb()) { r += 4; }
                return r;
            }
            int bomb() { return 1 / 0; }
        """) == 3  # short circuit avoids the division

    def test_comparisons_as_values(self):
        assert run_main("""
            int main() {
                return (1 < 2) + (2 <= 2) * 2 + (3 > 2) * 4 + (2 >= 3) * 8
                     + (1 == 1) * 16 + (1 != 1) * 32;
            }
        """) == 1 + 2 + 4 + 16

    def test_unary(self):
        assert run_main("int main() { return -(-5) + ~0 + !0 + !7; }") == 5


class TestCodegenData:
    def test_global_scalar(self):
        assert run_main("""
            int g = 7;
            int main() { g = g + 1; return g; }
        """) == 8

    def test_global_array(self):
        assert run_main("""
            int a[4] = {10, 20, 30, 40};
            int main() { a[1] = a[0] + a[2]; return a[1] + a[3]; }
        """) == 80

    def test_char_array(self):
        assert run_main("""
            char c[4];
            int main() { c[0] = 200; return c[0]; }
        """) == s32(200 & 0xFF) - 256  # signed char

    def test_string_global(self):
        assert run_main("""
            char msg[6] = "abc";
            int main() { return msg[0] + msg[3]; }
        """) == ord("a")

    def test_local_array(self):
        assert run_main("""
            int main() { int a[5]; int i;
                for (i = 0; i < 5; i += 1) { a[i] = i * i; }
                return a[4] - a[2]; }
        """) == 12

    def test_pointers(self):
        assert run_main("""
            int a[3] = {1, 2, 3};
            int main() {
                int *p = a;
                int s = *p;
                p = p + 1;
                s = s + *p;
                *p = 9;
                s = s + a[1];
                return s + (p - a);
            }
        """) == 1 + 2 + 9 + 1

    def test_address_of(self):
        assert run_main("""
            int main() { int x = 3; int *p = &x; *p = 7; return x; }
        """) == 7

    def test_pointer_argument(self):
        assert run_main("""
            void bump(int *p) { *p = *p + 1; }
            int main() { int x = 9; bump(&x); return x; }
        """) == 10


class TestCodegenCalls:
    def test_four_args(self):
        assert run_main("""
            int f(int a, int b, int c, int d) { return a*1000+b*100+c*10+d; }
            int main() { return f(1, 2, 3, 4); }
        """) == 1234

    def test_recursion(self):
        assert run_main("""
            int fact(int n) { if (n < 2) { return 1; } return n * fact(n-1); }
            int main() { return fact(6); }
        """) == 720

    def test_mutual_recursion(self):
        assert run_main("""
            int is_odd(int n);
            int is_even(int n) { if (n == 0) return 1; return is_odd(n-1); }
            int is_odd(int n) { if (n == 0) return 0; return is_even(n-1); }
            int main() { return is_even(10) * 2 + is_odd(7); }
        """) == 3

    def test_call_in_expression(self):
        assert run_main("""
            int sq(int x) { return x * x; }
            int main() { return sq(3) + sq(4) * 2; }
        """) == 9 + 32

    def test_void_function(self):
        assert run_main("""
            int g = 0;
            void set(int v) { g = v; }
            int main() { set(5); return g; }
        """) == 5

    def test_wrong_arity_rejected(self):
        with pytest.raises(MinicError):
            compile_source("int f(int a) { return a; } int main() { return f(); }")

    def test_undefined_function_rejected(self):
        with pytest.raises(MinicError):
            compile_source("int main() { return zap(); }")

    def test_undefined_variable_rejected(self):
        with pytest.raises(MinicError):
            compile_source("int main() { return zz; }")


class TestIntrinsics:
    def test_io_roundtrip(self):
        source = """
            int main() {
                __io_write(0xF0000040, 1234);
                return __io_read(0xF0000040);
            }
        """
        assert run_main(source) == 1234

    def test_halt(self):
        obj = compile_source("int main() { __halt(); return 9; }")
        result = FunctionalISS(obj).run()
        assert result.halted
        assert result.exit_code is None


# -- differential expression testing ---------------------------------------

_INT = st.integers(min_value=-1000, max_value=1000)
_SMALL = st.integers(min_value=1, max_value=31)


@st.composite
def _expr(draw, depth=0):
    """A (python_value, c_source) pair of an equivalent expression."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(_INT)
        return value, f"({value})"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>",
                               "/", "%", "<", ">", "==", "!="]))
    left_val, left_src = draw(_expr(depth + 1))
    if op in ("<<", ">>"):
        shift = draw(st.integers(min_value=0, max_value=8))
        if op == "<<":
            return s32((left_val << shift) & 0xFFFFFFFF), \
                f"({left_src} << {shift})"
        return left_val >> shift, f"({left_src} >> {shift})"
    right_val, right_src = draw(_expr(depth + 1))
    source = f"({left_src} {op} {right_src})"
    if op == "+":
        return s32(left_val + right_val), source
    if op == "-":
        return s32(left_val - right_val), source
    if op == "*":
        return s32(left_val * right_val), source
    if op == "&":
        return s32((left_val & 0xFFFFFFFF) & (right_val & 0xFFFFFFFF)), source
    if op == "|":
        return s32((left_val & 0xFFFFFFFF) | (right_val & 0xFFFFFFFF)), source
    if op == "^":
        return s32((left_val & 0xFFFFFFFF) ^ (right_val & 0xFFFFFFFF)), source
    if op == "/":
        if right_val == 0:
            return left_val, f"({left_src})"
        return int(left_val / right_val), source
    if op == "%":
        if right_val == 0:
            return left_val, f"({left_src})"
        return left_val - int(left_val / right_val) * right_val, source
    if op == "<":
        return int(left_val < right_val), source
    if op == ">":
        return int(left_val > right_val), source
    if op == "==":
        return int(left_val == right_val), source
    return int(left_val != right_val), source


@settings(max_examples=40, deadline=None)
@given(_expr())
def test_expression_differential(pair):
    expected, source = pair
    got = run_main("int main() { return %s; }" % source)
    assert got == s32(expected & 0xFFFFFFFF) if abs(expected) > 0x7FFFFFFF \
        else got == expected
