"""Differential lockdown of the SoC cluster over the modeled fabric.

Two contracts pin the cluster layer:

* **Degenerate identity** — a :class:`~repro.vliw.cluster.Cluster` of
  one SoC is pure overhead: its sole SoC must produce observables bit
  identical to a standalone
  :class:`~repro.vliw.multicore.MultiCoreSoC`, for every backend mix
  and detail level.  The fabric endpoint exists but routes nothing.
* **Cross-barrier bit identity** — for every distributed workload and
  backend mix, the in-process ``barrier="lockstep"`` and the
  cross-process ``barrier="process"`` executions must produce bit
  identical :meth:`~repro.vliw.cluster.ClusterResult.observables`
  (per-SoC observables, shared traces, grant counts, fabric routing
  statistics and endpoint counters).  This is the determinism contract
  of :mod:`repro.vliw.fabric`: quantum <= fabric minimum latency makes
  window-barrier routing order-independent, so parallel workers cannot
  diverge from the serial schedule.

Plus the PR-3 round-safety contracts end to end (``max_cycles`` and
the no-progress raise, in both barrier modes) and the registry's
expected exit codes for every distributed workload.

``REPRO_SMOKE_CORES`` overrides the per-SoC core count (CI uses 2).
"""

import os

import pytest

from repro.errors import ReproError, SimulationError
from repro.programs.registry import (
    build,
    cluster_program_names,
    expected_cluster_exits,
)
from repro.translator.driver import translate
from repro.vliw.cluster import Cluster
from repro.vliw.codegen.native import native_available
from repro.soc.bus import SharedIoMap
from repro.vliw.fabric import MAX_NODES, FabricConfig
from repro.vliw.multicore import CORE_IO_STRIDE, MultiCoreSoC
from repro.vliw.platform import PrototypingPlatform

LEVEL = 2
LEVELS = (0, 1, 2, 3)
N_CORES = max(2, int(os.environ.get("REPRO_SMOKE_CORES", "2")))

_NATIVE = native_available()


def _mixes(n: int) -> list[tuple[str, ...]]:
    """Homogeneous and mixed per-core backend assignments."""
    mixes = [
        ("interp",) * n,
        ("compiled",) * n,
        tuple("interp" if i % 2 == 0 else "compiled" for i in range(n)),
    ]
    if _NATIVE:
        mixes.append(("native",) * n)
        rotation = ("tiered", "interp", "native", "compiled")
        mixes.append(tuple(rotation[i % 4] for i in range(n)))
    return mixes


@pytest.fixture(scope="module")
def translated():
    """Translation cache: every configuration runs the same program."""
    cache = {}

    def get(name, level=LEVEL):
        key = (name, level)
        if key not in cache:
            cache[key] = translate(build(name), level=level).program
        return cache[key]

    return get


class TestDegenerateClusterIdentity:
    """Cluster(1 SoC x N cores) == MultiCoreSoC, bit for bit."""

    @pytest.mark.parametrize("level", LEVELS)
    def test_equals_standalone_soc_across_levels(self, level, translated):
        program = translated("mbox_pingpong", level)
        for backends in _mixes(N_CORES):
            soc = MultiCoreSoC(program, cores=N_CORES, backends=backends)
            alone = soc.run()
            clustered = Cluster(program, socs=1, cores=N_CORES,
                                backends=backends).run()
            inner = clustered.per_soc[0]
            assert inner.observables() == alone.observables()
            # the shared-segment (arbitrated) slice of the global trace
            # is schedule-invariant; partition-local traffic may
            # interleave differently (docs/multicore.md) because the
            # cluster cuts the adaptive quantum's run-ahead windows at
            # its window boundaries while a standalone run opens them
            # wide — each partition's own subsequence is still identical
            assert _trace_tuples(inner.shared_trace()) == \
                _trace_tuples(alone.shared_trace())
            for inner_part, alone_part in zip(_partitioned(inner.bus_trace),
                                              _partitioned(alone.bus_trace)):
                assert inner_part == alone_part
            assert inner.contention_conflicts == alone.contention_conflicts
            # under a fixed quantum the schedules coincide exactly, so
            # the historical bit-for-bit identity — raw global trace
            # order and grant counts included — still holds
            fixed = MultiCoreSoC(program, cores=N_CORES,
                                 backends=backends, quantum=1).run()
            fixed_clustered = Cluster(program, socs=1, cores=N_CORES,
                                      backends=backends,
                                      core_quantum=1).run()
            assert fixed_clustered.per_soc[0].observables() == \
                fixed.observables()
            assert _trace_tuples(fixed_clustered.per_soc[0].bus_trace) == \
                _trace_tuples(fixed.bus_trace)
            assert fixed_clustered.per_soc[0].grants == fixed.grants
        # nothing ever crossed the (1-node) fabric
        assert clustered.fabric["words_routed"] == 0
        assert clustered.per_soc_fabric[0]["sent"] == 0

    def test_single_core_single_soc(self, translated):
        """The doubly degenerate cluster matches the plain platform."""
        program = translated("crc32")
        single = PrototypingPlatform(program).run()
        clustered = Cluster(program, socs=1, cores=1).run()
        assert clustered.per_soc[0].per_core[0].observables() == \
            single.observables()

    @pytest.mark.parametrize("name", cluster_program_names())
    def test_distributed_workloads_degrade_on_one_node(self, name,
                                                       translated):
        """With nodes=1 every workload reads node count 1 and exits 0
        without touching the fabric — on the cluster AND on the plain
        single-core platform (whose bus has a degenerate endpoint)."""
        program = translated(name)
        clustered = Cluster(program, socs=1, cores=1).run()
        assert clustered.exit_codes() == [[0]]
        assert clustered.fabric["words_routed"] == 0
        assert PrototypingPlatform(program).run().exit_code == 0


def _trace_tuples(trace):
    return [(a.cycle, a.kind, a.addr, a.value, a.size) for a in trace]


def _partitioned(trace):
    """Per-core-partition subsequences of a SoC's global bus trace
    (plus the shared segment as the final slot), in trace order."""
    shared = SharedIoMap()
    parts = [[] for _ in range(N_CORES + 1)]
    for access in trace:
        if access.addr >= shared.base:
            parts[N_CORES].append(access)
        else:
            parts[access.addr // CORE_IO_STRIDE].append(access)
    return [_trace_tuples(part) for part in parts]


class TestDistributedWorkloads:
    """Registry exit codes + fabric accounting, in-process barrier."""

    @pytest.mark.parametrize("nodes", (2, 3))
    @pytest.mark.parametrize("name", cluster_program_names())
    def test_exit_codes_match_registry(self, name, nodes, translated):
        result = Cluster(translated(name), socs=nodes).run()
        assert result.exit_codes() == expected_cluster_exits(name, nodes)
        # conservation: every routed word was sent and received once
        stats = result.per_soc_fabric
        assert result.fabric["words_routed"] == \
            sum(s["sent"] for s in stats) == \
            sum(s["received"] for s in stats)
        assert result.fabric["words_routed"] > 0
        # no workload leaves undrained words in a receive queue
        assert all(s["pending"] == 0 for s in stats)

    @pytest.mark.parametrize("name", cluster_program_names())
    def test_exit_codes_backend_independent(self, name, translated):
        """Per-SoC backend mixes don't change distributed results."""
        program = translated(name)
        expected = expected_cluster_exits(name, 2)
        for backends in [("interp", "compiled"), ("compiled", "interp")]:
            result = Cluster(program, socs=2, backends=backends).run()
            assert result.exit_codes() == expected, backends

    def test_secondary_cores_idle_but_arbitrate(self, translated):
        """cores>1 per SoC: core 0 runs the protocol, the others read
        node-id 0 from their coreid device and exit 0 immediately."""
        result = Cluster(translated("token_ring"), socs=2,
                         cores=N_CORES).run()
        assert result.exit_codes() == \
            expected_cluster_exits("token_ring", 2, cores=N_CORES)

    def test_ring_topology_is_observable_but_exit_invariant(self,
                                                            translated):
        """Topology and timing knobs change cycle counts, never
        protocol outcomes."""
        program = translated("allreduce")
        xbar = Cluster(program, socs=3).run()
        ring = Cluster(program, socs=3,
                       fabric=FabricConfig(latency=8, word_cycles=4,
                                           topology="ring")).run()
        assert ring.exit_codes() == xbar.exit_codes() == \
            expected_cluster_exits("allreduce", 3)
        assert ring.fabric["hop_cycles"] != xbar.fabric["hop_cycles"]

    @pytest.mark.parametrize("level", LEVELS)
    def test_token_ring_at_every_level(self, level, translated):
        result = Cluster(translated("token_ring", level), socs=2).run()
        assert result.exit_codes() == expected_cluster_exits(
            "token_ring", 2)


class TestCrossBarrierBitIdentity:
    """barrier="process" == barrier="lockstep", observably (the PR's
    acceptance criterion)."""

    @pytest.mark.parametrize("name", cluster_program_names())
    def test_every_distributed_workload(self, name, translated):
        program = translated(name)
        for backends in [("interp", "interp"), ("compiled", "compiled"),
                         ("interp", "compiled")]:
            serial = Cluster(program, socs=2, backends=backends,
                             barrier="lockstep").run()
            parallel = Cluster(program, socs=2, backends=backends,
                               barrier="process").run()
            assert parallel.observables() == serial.observables(), backends
            assert serial.exit_codes() == expected_cluster_exits(name, 2)

    def test_workers_reuse_shipped_region_caches(self, translated):
        """The sharded-runner transport trick holds for cluster
        workers: precompiled programs ship their Region IR, so no
        worker compiles anything."""
        result = Cluster(translated("token_ring"), socs=2,
                         backends="compiled", barrier="process").run()
        assert result.regions_generated == [0, 0]
        assert result.exit_codes() == expected_cluster_exits(
            "token_ring", 2)

    def test_multicore_socs_across_the_barrier(self, translated):
        """SoCs with internal shared-bus contention (cores>1) stay bit
        identical across the barrier boundary."""
        mixed = tuple("interp" if i % 2 else "compiled"
                      for i in range(N_CORES))
        program = translated("work_steal")
        serial = Cluster(program, socs=2, cores=N_CORES, backends=mixed,
                         barrier="lockstep").run()
        parallel = Cluster(program, socs=2, cores=N_CORES, backends=mixed,
                           barrier="process").run()
        assert parallel.observables() == serial.observables()

    @pytest.mark.skipif(not _NATIVE, reason="needs a C toolchain")
    def test_native_and_tiered_workers(self, translated):
        program = translated("allreduce")
        for backends in [("native", "native"), ("tiered", "native")]:
            serial = Cluster(program, socs=2, backends=backends,
                             barrier="lockstep").run()
            parallel = Cluster(program, socs=2, backends=backends,
                               barrier="process").run()
            assert parallel.observables() == serial.observables(), backends


class TestClusterRoundSafety:
    """PR-3 contracts survive the extraction, end to end, both modes."""

    @pytest.mark.parametrize("barrier", ("lockstep", "process"))
    def test_max_cycles_enforced_per_window(self, barrier, translated):
        cluster = Cluster(translated("token_ring"), socs=2,
                          barrier=barrier)
        with pytest.raises(SimulationError, match="cycle limit"):
            try:
                cluster.run(max_cycles=40)
            finally:
                for member in cluster.members:
                    member.shutdown()

    def test_no_progress_window_raises(self, translated):
        """A window in which no SoC advances trips the livelock guard
        at the cluster level too."""
        cluster = Cluster(translated("token_ring"), socs=2)
        for member in cluster.members:
            member.advance = lambda until, max_cycles: None
        with pytest.raises(SimulationError, match="livelock"):
            cluster.sync_barrier.run_until(None, 1000)

    def test_quantum_capped_by_fabric_latency(self, translated):
        program = translated("token_ring")
        config = FabricConfig(latency=4)
        cluster = Cluster(program, socs=2, fabric=config)
        assert cluster.quantum == 4  # defaults to the minimum latency
        with pytest.raises(SimulationError, match="quantum"):
            Cluster(program, socs=2, fabric=config, quantum=5)
        # a smaller window is allowed; it multiplies the cluster-level
        # round bookkeeping (and, under the adaptive core quantum, cuts
        # the intra-SoC run-ahead windows into more grants) but leaves
        # every simulation observable (per-SoC results, traces, fabric
        # timing) untouched
        small = Cluster(program, socs=2, fabric=config, quantum=1).run()
        full = Cluster(program, socs=2, fabric=config).run()
        small_obs, full_obs = small.observables(), full.observables()
        for window_counter in ("grants", "rounds"):
            assert small_obs.pop(window_counter) > \
                full_obs.pop(window_counter)
        for soc_small, soc_full in zip(small_obs.pop("soc_grants"),
                                       full_obs.pop("soc_grants")):
            assert sum(soc_small) >= sum(soc_full)  # scheduling profile
        assert small_obs == full_obs


class TestValidation:
    def test_configuration_errors(self, translated):
        program = translated("gcd")
        with pytest.raises(SimulationError, match="socs="):
            Cluster(program)
        with pytest.raises(SimulationError, match="barrier"):
            Cluster(program, socs=2, barrier="psychic")
        with pytest.raises(SimulationError, match="backends"):
            Cluster(program, socs=2, cores=2, backends=("interp",) * 3)
        with pytest.raises(SimulationError, match="limit"):
            Cluster(program, socs=MAX_NODES + 1)

    def test_registry_rejects_undersized_clusters(self):
        with pytest.raises(ReproError, match="at least 2"):
            expected_cluster_exits("token_ring", 1)


class TestMeasureProgramCluster:
    """The measurement battery drives clusters like any platform."""

    def test_replicated_program_passes_the_contract(self):
        from repro.eval.runner import measure_program

        out = measure_program("gcd", levels=(LEVEL,), nodes=2)
        assert out.levels[LEVEL].result.exit_code is not None

    def test_distributed_workload_records_soc0(self):
        from repro.eval.runner import measure_program

        out = measure_program("token_ring", levels=(LEVEL,), nodes=2,
                              shared=True, barrier="process")
        expected = expected_cluster_exits("token_ring", 2)
        assert out.levels[LEVEL].result.exit_code == expected[0][0]
