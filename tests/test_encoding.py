"""Encode/decode tests for the TriCore-like ISA, including a
hypothesis round-trip over every instruction spec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa.tricore.encoding import decode_at, decode_bytes, decode_word, encode
from repro.isa.tricore.instructions import (
    FORMAT_FIELDS,
    SPEC_BY_KEY,
    SPECS,
)


def _field_strategy(lo, width, signed):
    if signed:
        return st.integers(min_value=-(1 << (width - 1)),
                           max_value=(1 << (width - 1)) - 1)
    return st.integers(min_value=0, max_value=(1 << width) - 1)


def _fields_strategy(spec):
    layout = FORMAT_FIELDS[spec.fmt]
    parts = {name: _field_strategy(lo, width, signed)
             for name, lo, width, signed in layout}
    if "mode" in parts:
        parts["mode"] = st.integers(min_value=0, max_value=2)
    return st.fixed_dictionaries(parts)


@st.composite
def _spec_and_fields(draw):
    spec = draw(st.sampled_from(SPECS))
    fields = draw(_fields_strategy(spec))
    return spec, fields


class TestRoundtrip:
    @given(_spec_and_fields())
    def test_encode_decode_roundtrip(self, spec_fields):
        spec, fields = spec_fields
        blob = encode(spec, fields)
        assert len(blob) == spec.width
        word = int.from_bytes(blob, "little")
        decoded_spec, decoded_fields = decode_word(word, spec.width)
        assert decoded_spec.key == spec.key
        assert decoded_fields == fields

    @given(_spec_and_fields())
    def test_width_bit_marks_length(self, spec_fields):
        spec, fields = spec_fields
        blob = encode(spec, fields)
        first_halfword = int.from_bytes(blob[:2], "little")
        assert bool(first_halfword & 1) == (spec.width == 4)


class TestEncodeErrors:
    def test_missing_field(self):
        spec = SPEC_BY_KEY["add"]
        with pytest.raises(EncodingError):
            encode(spec, {"a": 1, "b": 2})

    def test_extra_field(self):
        spec = SPEC_BY_KEY["add"]
        with pytest.raises(EncodingError):
            encode(spec, {"a": 1, "b": 2, "c": 3, "zz": 0})

    def test_signed_overflow(self):
        spec = SPEC_BY_KEY["add_c"]  # k is 9-bit signed
        with pytest.raises(EncodingError):
            encode(spec, {"a": 1, "k": 256, "c": 2})

    def test_unsigned_overflow(self):
        spec = SPEC_BY_KEY["add"]
        with pytest.raises(EncodingError):
            encode(spec, {"a": 16, "b": 0, "c": 0})


class TestDecodeErrors:
    def test_unknown_long_opcode(self):
        with pytest.raises(DecodingError):
            decode_word(1 | (0x7F << 1), 4)

    def test_unknown_short_opcode(self):
        with pytest.raises(DecodingError):
            decode_word(0x3F << 1, 2)

    def test_misaligned_address(self):
        with pytest.raises(DecodingError):
            decode_at(lambda addr: 0, 1)

    def test_truncated_blob(self):
        spec = SPEC_BY_KEY["add"]
        blob = encode(spec, {"a": 1, "b": 2, "c": 3})
        with pytest.raises(DecodingError):
            decode_bytes(blob[:2])

    def test_error_carries_address(self):
        blob = (0x7F << 1 | 1).to_bytes(2, "little") + b"\x00\x00"
        with pytest.raises(DecodingError) as info:
            decode_bytes(blob, base_address=0x8000_0000)
        assert info.value.address == 0x8000_0000


class TestDecodeBytes:
    def test_mixed_width_stream(self):
        add = SPEC_BY_KEY["add"]
        mov16 = SPEC_BY_KEY["mov16"]
        blob = encode(add, {"a": 1, "b": 2, "c": 3}) \
            + encode(mov16, {"a": 4, "b": 5}) \
            + encode(add, {"a": 6, "b": 7, "c": 8})
        decoded = decode_bytes(blob, base_address=0x100)
        assert [d[0] for d in decoded] == [0x100, 0x104, 0x106]
        assert [d[1].key for d in decoded] == ["add", "mov16", "add"]


class TestSpecTable:
    def test_all_opcodes_unique_per_width(self):
        long_ops = [s.opcode for s in SPECS if s.width == 4]
        short_ops = [s.opcode for s in SPECS if s.width == 2]
        assert len(set(long_ops)) == len(long_ops)
        assert len(set(short_ops)) == len(short_ops)

    def test_expanders_produce_instructions(self):
        from repro.isa.tricore.instructions import ExpandCtx

        for spec in SPECS:
            fields = {name: 0 for name, *_ in FORMAT_FIELDS[spec.fmt]}
            expansion = spec.expand(fields, ExpandCtx(pc=0x8000_0000,
                                                      next_pc=0x8000_0004))
            assert expansion, f"{spec.key} expands to nothing"

    def test_branch_specs_flagged(self):
        assert SPEC_BY_KEY["jeq"].is_branch
        assert SPEC_BY_KEY["loop"].is_branch
        assert not SPEC_BY_KEY["add"].is_branch

    def test_classes_are_known(self):
        assert all(s.iclass in ("ip", "ls") for s in SPECS)
