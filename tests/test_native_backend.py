"""Differential lockdown of the native (C) execution backend.

Same contract as the packet-compiled backend, one stage further: every
observable of a ``backend="native"`` run must be bit-identical to the
interpretive core on every registry program at every detail level —
including the sync-device state machine mirrored in C (fractional
rates and all), the bridge-window bail path, multi-core lockstep and
the pickled-program worker transport.  Tests that need the C path
skip cleanly when no toolchain is present; the fallback tests assert
the backend still *works* (on the Python emitter) in that case.
"""

import pickle

import pytest

from repro.programs.registry import build, program_names
from repro.translator.driver import translate
from repro.vliw.codegen.native import native_available
from repro.vliw.compiled import PacketCompiler, precompile_program
from repro.vliw.platform import PrototypingPlatform

needs_toolchain = pytest.mark.skipif(
    not native_available(),
    reason="no working C toolchain (or REPRO_NATIVE=0)")

LEVELS = (0, 1, 2, 3)


def _run(program, backend, **kwargs):
    return PrototypingPlatform(program, backend=backend, **kwargs).run()


def _native_platform(program, **kwargs):
    platform = PrototypingPlatform(program, backend="native", **kwargs)
    result = platform.run()
    return platform, result


@needs_toolchain
class TestNativeEquivalence:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", program_names())
    def test_identical_observables(self, name, level):
        program = translate(build(name), level=level).program
        interp = _run(program, "interp").observables()
        platform, native = _native_platform(program)
        assert native.observables() == interp, (name, level)
        context = platform._compiler.native_context
        assert context is not None
        assert context.regions_native > 0, (name, level)

    @pytest.mark.parametrize("sync_rate", (0.25, 1.5, 4.0))
    def test_identical_under_sync_rates(self, sync_rate):
        """The C sync-device mirror replays fractional-rate float
        sequences bit-identically."""
        program = translate(build("gcd"), level=2).program
        interp = _run(program, "interp", sync_rate=sync_rate).observables()
        _platform, native = _native_platform(program, sync_rate=sync_rate)
        assert native.observables() == interp

    def test_identical_under_stall_parameters(self):
        program = translate(build("gcd"), level=2).program
        for kwargs in (dict(sync_access_stall=9),
                       dict(bridge_stall=11),
                       dict(sync_access_stall=0, bridge_stall=0)):
            interp = _run(program, "interp", **kwargs).observables()
            _platform, native = _native_platform(program, **kwargs)
            assert native.observables() == interp, kwargs


@needs_toolchain
class TestNativeRuntime:
    def test_module_covers_all_regions(self):
        """Every statically reachable region of a registry kernel
        compiles to C (device packets ride the bridge pre-check)."""
        program = translate(build("sieve"), level=3).program
        platform = PrototypingPlatform(program, backend="native")
        compiler = PacketCompiler(platform.core, backend="native")
        context = compiler.native_context
        assert context is not None
        generated = [pc0 for pc0, ir in compiler._ir_cache.items()
                     if ir is not None]
        assert set(context.plan) == set(generated)

    def test_disk_cache_shared_between_compilers(self):
        """Two platforms on one translation share one native module."""
        from repro.vliw.codegen import native as native_mod

        program = translate(build("fir"), level=1).program
        first = PacketCompiler(PrototypingPlatform(
            program, backend="native").core, backend="native")
        second = PacketCompiler(PrototypingPlatform(
            program, backend="native").core, backend="native")
        assert first.native_context is not None
        assert second.native_context is not None
        assert first.native_context.binding is second.native_context.binding
        digest, _plan = program._native_plans[first.cache_params]
        assert digest in native_mod._LOADED

    def test_bridge_heavy_region_demoted_to_python(self, monkeypatch):
        """A region looping on bridge traffic (UART) bails until the
        wrapper swaps in the Python rendering — the adaptive fallback
        that keeps native >= compiled on device-heavy code."""
        from repro.vliw.codegen import native as native_mod

        monkeypatch.setattr(native_mod, "BAIL_SWITCH", 2)
        program = translate(build("uart_hello"), level=1).program
        interp = _run(program, "interp").observables()
        platform, native = _native_platform(program)
        # the putchar block stores 11 characters through the bridge
        # window, re-entering (and bailing from) its region every time:
        # with the threshold at 2 it must demote mid-run, and the
        # observables must stay bit-identical across the swap
        assert native.observables() == interp
        context = platform._compiler.native_context
        assert context is not None
        assert context.regions_demoted >= 1

    def test_pickled_program_runs_native_from_shipped_ir(self):
        program = translate(build("gcd"), level=2).program
        precompile_program(program, backend="native")
        parent = _run(program, "native").observables()
        clone = pickle.loads(pickle.dumps(program))
        platform = PrototypingPlatform(clone, backend="native")
        assert platform.run().observables() == parent
        compiler = platform._compiler
        assert compiler.regions_generated == 0
        assert compiler.regions_from_cache > 0
        context = compiler.native_context
        assert context is not None and context.regions_native > 0

    def test_run_slice_lockstep_quanta(self):
        """Driving native in 1-cycle lockstep quanta (the multi-core
        scheduling pattern) must not change observables."""
        program = translate(build("gcd"), level=2).program
        interp = _run(program, "interp").observables()
        platform = PrototypingPlatform(program, backend="native")
        compiler = PacketCompiler(platform.core, backend="native")
        exit_device = platform.bus.device("exit")
        while not platform.core.halted and not exit_device.exited:
            compiler.run_slice(platform.core.cycles + 1)
        platform.sync.flush()
        assert platform.collect_result().observables() == interp

    def test_wild_store_raises_like_interp(self):
        """A store outside every window raises the same BusError."""
        from repro.errors import BusError
        from repro.isa.tricore.assembler import assemble

        obj = assemble("""
_start:
    li d1, 7
    st.w [a0]0, d1
    halt
""")
        program = translate(obj, level=0).program
        errors = []
        for backend in ("interp", "native"):
            try:
                _run(program, backend)
            except BusError as exc:
                errors.append(str(exc))
        assert len(errors) == 2
        assert errors[0] == errors[1]


class TestNativeFallback:
    def test_disabled_native_still_runs_correctly(self, monkeypatch):
        """REPRO_NATIVE=0: the backend silently renders through the
        Python emitter — same observables, no toolchain dependency."""
        monkeypatch.setenv("REPRO_NATIVE", "0")
        program = translate(build("gcd"), level=1).program
        interp = _run(program, "interp").observables()
        platform, native = _native_platform(program)
        assert native.observables() == interp
        assert platform._compiler.native_context is None

    def test_measure_program_accepts_native(self):
        from repro.eval.runner import measure_program

        interp = measure_program("gcd", levels=(1,))
        native = measure_program("gcd", levels=(1,), backend="native")
        assert (native.levels[1].result.observables()
                == interp.levels[1].result.observables())
