"""Fuzz subsystem: seeded reproducibility, oracle verdicts, shrinking,
and the ``repro-fuzz`` CLI.

The contract under test: ``generate(seed, index)`` is a pure function
(byte-identical source, identical predicted observables, identical
oracle verdicts for the same pair), the mirror's predicted exit/UART
match the reference ISS, the oracle flags prediction mismatches and
crashes, and the shrinker deterministically minimizes while preserving
the failure predicate.
"""

import glob
import json
import os

import pytest

from repro.cli import fuzz_main
from repro.fuzz import FuzzConfig, check_source, generate, shrink
from repro.fuzz.oracle import check_generated
from repro.fuzz.progen import FuzzGenError
from repro.minic.compiler import compile_source
from repro.refsim.iss import FunctionalISS
from repro.vliw.codegen.native import native_available

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")

#: small sweep the smoke tests use (the full matrix is the CLI's job)
SMOKE = FuzzConfig(levels=(0, 2), backends=("interp", "compiled"), cores=2)

#: the same sweep with the native C backend in the cross-check (only
#: meaningful with a toolchain; without one it exercises the Python
#: emitter twice)
NATIVE_SMOKE = FuzzConfig(levels=(0, 2), backends=("interp", "native"),
                          cores=2)


class TestGenerator:
    def test_seeded_reproducibility(self):
        for index in (0, 3, 9):
            first = generate(42, index)
            second = generate(42, index)
            assert first.render() == second.render()
            assert first.evaluate() == second.evaluate()

    def test_population_is_diverse(self):
        sources = {generate(42, index).render() for index in range(20)}
        assert len(sources) == 20

    def test_seed_changes_population(self):
        assert generate(1, 0).render() != generate(2, 0).render()

    @pytest.mark.parametrize("index", range(8))
    def test_mirror_matches_reference_iss(self, index):
        program = generate(1234, index)
        expected_exit, expected_uart = program.evaluate()
        obj = compile_source(program.render())
        result = FunctionalISS(obj).run(max_instructions=2_000_000)
        assert result.exit_code == expected_exit
        assert result.uart_output == expected_uart

    def test_mirror_is_bounded(self):
        # evaluation always terminates well inside the fuel budget
        for index in range(10):
            generate(7, index).evaluate()


class TestOracle:
    @pytest.mark.parametrize("index", range(3))
    def test_population_passes(self, index):
        verdict = check_generated(generate(42, index), SMOKE)
        assert verdict.ok, verdict.summary()

    def test_verdicts_reproducible(self):
        program = generate(42, 1)
        first = check_generated(program, SMOKE)
        second = check_generated(generate(42, 1), SMOKE)
        assert first.ok == second.ok
        assert first.summary() == second.summary()
        assert first.exit_code == second.exit_code

    def test_detects_wrong_prediction(self):
        verdict = check_source("int main() { return 7; }", expected_exit=9,
                               config=FuzzConfig(levels=(0,)))
        assert not verdict.ok
        assert any(m.kind == "predicted" for m in verdict.mismatches)

    def test_detects_wrong_uart(self):
        verdict = check_source("int main() { return 0; }",
                               expected_uart=b"x",
                               config=FuzzConfig(levels=(0,)))
        assert not verdict.ok
        assert any(m.kind == "predicted" for m in verdict.mismatches)

    def test_detects_hang_as_crash(self):
        verdict = check_source(
            "int main() { while (1) { } return 0; }",
            config=FuzzConfig(levels=(0,), max_instructions=50_000,
                              max_cycles=200_000))
        assert not verdict.ok
        assert any(m.kind == "crash" for m in verdict.mismatches)

    def test_detects_frontend_error(self):
        verdict = check_source("int main( { return; }")
        assert not verdict.ok
        assert verdict.mismatches[0].kind == "frontend"

    def test_single_core_skips_multicore_sweep(self):
        verdict = check_source("int main() { return 5; }",
                               config=FuzzConfig(levels=(1,), cores=1))
        assert verdict.ok
        assert verdict.exit_code == 5


class TestNativeOracle:
    """The fuzz oracle sweeps the native backend like any other."""

    @pytest.mark.skipif(not native_available(),
                        reason="no working C toolchain (or REPRO_NATIVE=0)")
    @pytest.mark.parametrize("index", range(6))
    def test_population_passes_native(self, index):
        verdict = check_generated(generate(42, index), NATIVE_SMOKE)
        assert verdict.ok, verdict.summary()


class TestShrink:
    @staticmethod
    def _has_io(program) -> bool:
        return "__io_write" in program.render()

    def _io_program(self):
        for index in range(40):
            program = generate(11, index)
            if self._has_io(program):
                return index, program
        raise AssertionError("population unexpectedly free of io writes")

    def test_shrink_minimizes_and_preserves_predicate(self):
        _, program = self._io_program()
        small = shrink(program, self._has_io, max_attempts=300)
        assert self._has_io(small)
        assert len(small.render()) < len(program.render())
        # the shrunk program still compiles and evaluates
        compile_source(small.render())
        small.evaluate()

    def test_shrink_is_deterministic(self):
        index, program = self._io_program()
        again = generate(11, index)
        first = shrink(program, self._has_io, max_attempts=300)
        second = shrink(again, self._has_io, max_attempts=300)
        assert first.render() == second.render()

    def test_shrink_keeps_original_when_nothing_helps(self):
        program = generate(42, 0)
        kept = shrink(program, lambda p: False, max_attempts=50)
        assert kept.render() == program.render()


class TestCli:
    def test_smoke_green(self, capsys, tmp_path):
        rc = fuzz_main(["--seed", "42", "--count", "3", "--levels", "0,1",
                        "--cores", "2",
                        "--corpus-dir", str(tmp_path / "corpus")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 failure(s)" in out
        assert not (tmp_path / "corpus").exists()  # nothing dumped

    def test_output_reproducible(self, capsys, tmp_path):
        args = ["--seed", "42", "--count", "2", "--levels", "0",
                "--cores", "1", "-v",
                "--corpus-dir", str(tmp_path / "corpus")]
        assert fuzz_main(args) == 0
        first = capsys.readouterr().out
        assert fuzz_main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_rejects_bad_levels(self, capsys):
        assert fuzz_main(["--levels", "0,9"]) == 1
        assert "levels" in capsys.readouterr().err

    def test_rejects_bad_count(self, capsys):
        assert fuzz_main(["--count", "0"]) == 1
        assert "error" in capsys.readouterr().err

    def test_failure_dumps_shrunk_reproducer(self, capsys, tmp_path,
                                             monkeypatch):
        # force the oracle to fail so the dump/shrink path runs
        from repro.fuzz import oracle as oracle_mod
        from repro.fuzz.oracle import Mismatch, Verdict

        def always_fails(program, config=None):
            verdict = Verdict(ok=False)
            verdict.mismatches.append(
                Mismatch("backend", "L0 interp vs compiled", "forced"))
            return verdict

        monkeypatch.setattr(oracle_mod, "check_generated", always_fails)
        corpus = tmp_path / "corpus"
        rc = fuzz_main(["--seed", "5", "--count", "1", "--levels", "0",
                        "--cores", "1", "--max-shrink", "40",
                        "--corpus-dir", str(corpus)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "reproducer" in out
        (mc_path,) = glob.glob(str(corpus / "*.mc"))
        (json_path,) = glob.glob(str(corpus / "*.json"))
        assert "main" in open(mc_path).read()
        meta = json.load(open(json_path))
        assert meta["seed"] == 5
        assert meta["mismatches"]


class TestCorpusReplay:
    """Committed reproducers document *fixed* bugs: they must pass."""

    def test_corpus_reproducers_stay_green(self):
        sources = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.mc")))
        if not sources:
            pytest.skip("no reproducers in the corpus yet")
        for path in sources:
            meta_path = path[:-3] + ".json"
            expected_exit = None
            if os.path.exists(meta_path):
                expected_exit = json.load(open(meta_path)).get(
                    "expected_exit")
            verdict = check_source(open(path).read(),
                                   expected_exit=expected_exit,
                                   config=SMOKE)
            assert verdict.ok, f"{path}: {verdict.summary()}"


def test_fuzz_gen_error_is_exported():
    # the mirror's safety net is part of the public surface
    assert issubclass(FuzzGenError, Exception)
