"""Pipeline-timer unit tests (the shared timing model)."""

from repro.arch.model import PipelineModel
from repro.refsim.timing import PipelineTimer, TimedOp


def _timer(**kwargs) -> PipelineTimer:
    return PipelineTimer(PipelineModel(**kwargs))


def _op(iclass="ip", reads=(), writes=(), is_load=False, is_mul=False):
    return TimedOp(iclass=iclass, reads=tuple(reads), writes=tuple(writes),
                   is_load=is_load, is_mul=is_mul)


class TestSingleIssue:
    def test_sequence_of_ip_ops(self):
        timer = _timer(dual_issue=False)
        for _ in range(5):
            timer.issue(_op("ip"))
        assert timer.cycles == 5

    def test_reset(self):
        timer = _timer()
        timer.issue(_op())
        timer.reset()
        assert timer.cycles == 0


class TestDualIssue:
    def test_ip_ls_pair_shares_cycle(self):
        timer = _timer()
        timer.issue(_op("ip", writes=(1,)))
        timer.issue(_op("ls", reads=(2,), writes=(3,)))
        assert timer.cycles == 1

    def test_dependent_pair_does_not_share(self):
        timer = _timer()
        timer.issue(_op("ip", writes=(1,)))
        timer.issue(_op("ls", reads=(1,)))
        assert timer.cycles == 2

    def test_waw_pair_does_not_share(self):
        timer = _timer()
        timer.issue(_op("ip", writes=(1,)))
        timer.issue(_op("ls", writes=(1,)))
        assert timer.cycles == 2

    def test_ls_ip_order_does_not_pair(self):
        timer = _timer()
        timer.issue(_op("ls"))
        timer.issue(_op("ip"))
        assert timer.cycles == 2

    def test_pair_slot_consumed(self):
        timer = _timer()
        timer.issue(_op("ip"))
        timer.issue(_op("ls"))
        timer.issue(_op("ls"))  # no host left: next cycle
        assert timer.cycles == 2

    def test_disabled_dual_issue(self):
        timer = _timer(dual_issue=False)
        timer.issue(_op("ip"))
        timer.issue(_op("ls"))
        assert timer.cycles == 2

    def test_ip_ip_does_not_pair(self):
        timer = _timer()
        timer.issue(_op("ip"))
        timer.issue(_op("ip"))
        assert timer.cycles == 2


class TestHazards:
    def test_load_use_stall(self):
        timer = _timer(load_use_stall=1)
        timer.issue(_op("ls", writes=(1,), is_load=True))
        timer.issue(_op("ip", reads=(1,)))
        assert timer.cycles == 3  # load at 0, consumer stalls to cycle 2

    def test_load_independent_no_stall(self):
        timer = _timer(load_use_stall=1)
        timer.issue(_op("ls", writes=(1,), is_load=True))
        timer.issue(_op("ip", reads=(2,)))
        assert timer.cycles == 2

    def test_load_use_gap_absorbs_stall(self):
        timer = _timer(load_use_stall=1)
        timer.issue(_op("ls", writes=(1,), is_load=True))
        timer.issue(_op("ip", reads=(9,)))
        timer.issue(_op("ip", reads=(1,)))
        assert timer.cycles == 3  # gap instruction hides the stall

    def test_mul_latency(self):
        timer = _timer(mul_result_latency=2)
        timer.issue(_op("ip", writes=(1,), is_mul=True))
        timer.issue(_op("ip", reads=(1,)))
        assert timer.cycles == 3

    def test_alu_forwarding_no_stall(self):
        timer = _timer()
        timer.issue(_op("ip", writes=(1,)))
        timer.issue(_op("ip", reads=(1,)))
        assert timer.cycles == 2


class TestStallsAndBarriers:
    def test_add_stall(self):
        timer = _timer()
        timer.issue(_op())
        timer.add_stall(10)
        timer.issue(_op())
        assert timer.cycles == 12

    def test_barrier_prevents_pairing(self):
        timer = _timer()
        timer.issue(_op("ip"))
        timer.barrier()
        timer.issue(_op("ls"))
        assert timer.cycles == 2

    def test_zero_stall_is_noop(self):
        timer = _timer()
        timer.issue(_op("ip"))
        timer.add_stall(0)
        timer.issue(_op("ls"))
        assert timer.cycles == 1  # pairing still possible

    def test_pending_writes_survive_barrier(self):
        timer = _timer(load_use_stall=1)
        timer.issue(_op("ls", writes=(1,), is_load=True))
        timer.barrier()
        timer.issue(_op("ip", reads=(1,)))
        assert timer.cycles == 3
