"""Lockdown of the native backend's content-addressed .so disk cache.

The cache names every module ``<sha256(abi + C source)>.so`` under
``$REPRO_NATIVE_CACHE`` (default ``~/.cache/repro-cabt/native``), so
correctness rests on three properties: an ABI revision bump changes
the digest (an old binary can never be dlopen'd against a new struct
layout), the cache directory override is honored end to end, and a
source change — different program, level or core parameters — lands in
a different file instead of silently reusing a stale build.
"""

import os

import pytest

from repro.programs.registry import build
from repro.translator.driver import translate
from repro.vliw.codegen import native as native_mod
from repro.vliw.codegen.native import (
    NativeContext,
    cache_dir,
    native_available,
    source_digest,
)
from repro.vliw.compiled import PacketCompiler
from repro.vliw.platform import PrototypingPlatform

needs_toolchain = pytest.mark.skipif(
    not native_available(),
    reason="no working C toolchain (or REPRO_NATIVE=0)")


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """A private empty disk cache and an empty in-process module map,
    so every attach in the test actually exercises the disk path."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    monkeypatch.setattr(native_mod, "_LOADED", {})
    return tmp_path


def _attach(program, **kwargs):
    platform = PrototypingPlatform(program, backend="native", **kwargs)
    compiler = PacketCompiler(platform.core, backend="native", **kwargs)
    return platform, compiler


class TestDigest:
    def test_abi_bump_changes_digest(self, monkeypatch):
        """Same C source, new ABI revision, different content address —
        a binary built for the old rio struct can never collide with
        the new layout's cache slot."""
        source = "int sb0(void) { return 0; }\n"
        old = source_digest(source)
        monkeypatch.setattr(native_mod, "ABI_VERSION",
                            native_mod.ABI_VERSION + 1)
        assert source_digest(source) != old

    def test_digest_is_pure_content_address(self):
        source = "int sb0(void) { return 0; }\n"
        assert source_digest(source) == source_digest(source)
        assert source_digest(source) != source_digest(source + " ")


@needs_toolchain
class TestDiskCache:
    def test_cache_redirection(self, fresh_cache):
        """REPRO_NATIVE_CACHE redirects both the build products and the
        lookups; the run on the private cache stays bit-identical."""
        assert cache_dir() == str(fresh_cache)
        program = translate(build("gcd"), level=1).program
        interp = PrototypingPlatform(program,
                                     backend="interp").run().observables()
        platform, compiler = _attach(program)
        context = compiler.native_context
        assert context is not None
        digest, _plan = program._native_plans[compiler.cache_params]
        assert (fresh_cache / f"{digest}.so").exists()
        assert (fresh_cache / f"{digest}.c").exists()
        assert platform.run().observables() == interp

    def test_abi_bump_invalidates_cached_module(self, fresh_cache,
                                                monkeypatch):
        """After an ABI bump the old .so is dead weight: attach builds
        a fresh module under the new digest instead of reusing it."""
        program = translate(build("gcd"), level=1).program
        _platform, compiler = _attach(program)
        old_digest, _ = program._native_plans[compiler.cache_params]

        monkeypatch.setattr(native_mod, "ABI_VERSION",
                            native_mod.ABI_VERSION + 1)
        monkeypatch.setattr(native_mod, "_LOADED", {})
        # a clone of the same translation: no memoized plan, so the
        # digest is recomputed under the bumped revision
        reprogram = translate(build("gcd"), level=1).program
        _platform2, compiler2 = _attach(reprogram)
        assert compiler2.native_context is not None
        new_digest, _ = reprogram._native_plans[compiler2.cache_params]
        assert new_digest != old_digest
        assert (fresh_cache / f"{old_digest}.so").exists()
        assert (fresh_cache / f"{new_digest}.so").exists()

    def test_source_change_is_a_different_cache_entry(self, fresh_cache):
        """A different emitted module (here: another detail level of
        the same program) must never hit the old entry."""
        first = translate(build("gcd"), level=0).program
        second = translate(build("gcd"), level=3).program
        _p1, c1 = _attach(first)
        _p2, c2 = _attach(second)
        d1, _ = first._native_plans[c1.cache_params]
        d2, _ = second._native_plans[c2.cache_params]
        assert d1 != d2
        assert {f"{d1}.so", f"{d2}.so"} <= set(os.listdir(fresh_cache))

    def test_stale_cache_artifacts_are_ignored(self, fresh_cache):
        """Foreign junk in the cache directory (a stale .so under a
        name no current digest maps to) is simply never touched."""
        stale = fresh_cache / ("ff" * 32 + ".so")
        stale.write_bytes(b"\x7fELF not really")
        program = translate(build("gcd"), level=1).program
        platform, compiler = _attach(program)
        assert compiler.native_context is not None
        interp = PrototypingPlatform(program,
                                     backend="interp").run().observables()
        assert platform.run().observables() == interp

    def test_warm_cache_loads_without_toolchain(self, fresh_cache,
                                                monkeypatch):
        """A warm disk cache serves the .so compiler-free: with the
        toolchain probe forced to 'none found', attach still loads the
        previously built module."""
        program = translate(build("gcd"), level=1).program
        _platform, compiler = _attach(program)
        assert compiler.native_context is not None

        monkeypatch.setattr(native_mod, "_TOOLCHAIN", [None])
        monkeypatch.setattr(native_mod, "_LOADED", {})
        reprogram = translate(build("gcd"), level=1).program
        platform2, compiler2 = _attach(reprogram)
        context = compiler2.native_context
        assert context is not None
        interp = PrototypingPlatform(reprogram,
                                     backend="interp").run().observables()
        assert platform2.run().observables() == interp

    def test_cold_cache_without_toolchain_returns_none(self, fresh_cache,
                                                       monkeypatch):
        monkeypatch.setattr(native_mod, "_TOOLCHAIN", [None])
        program = translate(build("gcd"), level=1).program
        platform = PrototypingPlatform(program, backend="native")
        compiler = PacketCompiler(platform.core, backend="native")
        assert compiler.native_context is None
        assert NativeContext.attach(compiler) is None
