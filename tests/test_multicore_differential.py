"""Differential lockdown of the multi-core SoC model.

Parallel execution is exactly where cycle accuracy silently breaks, so
the multi-core platform's contract is differential: for non-contending
address maps (each core owns its I/O partition on the shared bus),
every core of an N-core :class:`~repro.vliw.multicore.MultiCoreSoC`
must produce observables **bit identical** to the same program run
alone on a single-core platform — same cycle counts, same emulated
clock, same data image, same cycle-stamped bus trace, same statistics.
This holds for every registry program at every detail level, for the
interpretive and packet-compiled backends, and for mixed per-core
backend assignments, independent of lockstep scheduling and round-robin
arbitration order.

``REPRO_SMOKE_CORES`` overrides the core count (CI smoke runs use 2).
"""

import os

import pytest

from repro.errors import SimulationError
from repro.programs.registry import build, program_names
from repro.translator.driver import translate
from repro.vliw.codegen.native import native_available
from repro.vliw.multicore import CORE_IO_STRIDE, MultiCoreSoC
from repro.vliw.platform import PrototypingPlatform

N_CORES = max(2, int(os.environ.get("REPRO_SMOKE_CORES", "2")))
LEVELS = (0, 1, 2, 3)

#: the native backend joins every mix when a C toolchain is present
#: (without one it would just exercise the Python emitter twice)
_NATIVE = native_available()


def _mixes(n: int) -> list[tuple[str, ...]]:
    """Homogeneous and mixed per-core backend assignments."""
    mixes = [
        ("interp",) * n,
        ("compiled",) * n,
        tuple("interp" if i % 2 == 0 else "compiled" for i in range(n)),
    ]
    if _NATIVE:
        mixes.append(("native",) * n)
        rotation = ("native", "interp", "compiled")
        mixes.append(tuple(rotation[i % 3] for i in range(n)))
    return mixes


@pytest.fixture(scope="module")
def translated():
    """Translation cache: every backend mix runs the same program."""
    cache = {}

    def get(name, level):
        key = (name, level)
        if key not in cache:
            cache[key] = translate(build(name), level=level).program
        return cache[key]

    return get


@pytest.fixture(scope="module")
def single_run(translated):
    """Single-core reference observables, per (name, level, backend)."""
    cache = {}

    def get(name, level, backend):
        key = (name, level, backend)
        if key not in cache:
            cache[key] = PrototypingPlatform(
                translated(name, level), backend=backend).run().observables()
        return cache[key]

    return get


class TestPerCoreBitIdentity:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", program_names())
    def test_equals_independent_single_core_runs(self, name, level,
                                                 translated, single_run):
        program = translated(name, level)
        for backends in _mixes(N_CORES):
            multi = MultiCoreSoC(program, cores=N_CORES,
                                 backends=backends).run()
            assert multi.n_cores == N_CORES
            for index, backend in enumerate(backends):
                assert (multi.per_core[index].observables()
                        == single_run(name, level, backend)), \
                    (name, level, backends, index)

    def test_heterogeneous_programs_per_core(self, translated, single_run):
        """Different programs on different cores stay independent."""
        programs = [translated("gcd", 2), translated("uart_hello", 1)]
        backends = ("compiled", "interp")
        multi = MultiCoreSoC(programs, backends=backends).run()
        assert (multi.per_core[0].observables()
                == single_run("gcd", 2, "compiled"))
        assert (multi.per_core[1].observables()
                == single_run("uart_hello", 1, "interp"))
        assert multi.per_core[1].uart_output == b"hello, soc!"

    @pytest.mark.parametrize("sync_rate", (0.25, 1.5))
    def test_fractional_sync_rates(self, translated, sync_rate):
        program = translated("gcd", 2)
        backends = _mixes(N_CORES)[2]
        expected = {backend: PrototypingPlatform(
                        program, sync_rate=sync_rate,
                        backend=backend).run().observables()
                    for backend in set(backends)}
        multi = MultiCoreSoC(program, cores=N_CORES, backends=backends,
                             sync_rate=sync_rate).run()
        for backend, result in zip(backends, multi.per_core):
            assert result.observables() == expected[backend]


class TestArbitration:
    def test_global_trace_is_deterministic(self, translated):
        """Two identical multi-core runs interleave identically."""
        program = translated("timer_probe", 2)
        mix = _mixes(N_CORES)[2]
        first = MultiCoreSoC(program, cores=N_CORES, backends=mix).run()
        second = MultiCoreSoC(program, cores=N_CORES, backends=mix).run()
        assert first.bus_trace == second.bus_trace
        assert first.grants == second.grants

    def test_global_trace_partitions_by_core(self, translated):
        """The arbitrated global trace is exactly the per-core traces
        relocated into their partitions, order-preserved per core."""
        program = translated("uart_hello", 1)
        multi = MultiCoreSoC(program, cores=N_CORES, backends="interp").run()
        for index, result in enumerate(multi.per_core):
            base = index * CORE_IO_STRIDE
            relocated = [(a.cycle, a.kind, a.addr + base, a.value, a.size)
                         for a in result.bus_trace]
            in_global = [(a.cycle, a.kind, a.addr, a.value, a.size)
                         for a in multi.bus_trace
                         if base <= a.addr < base + CORE_IO_STRIDE]
            assert relocated == in_global
        total = sum(len(r.bus_trace) for r in multi.per_core)
        assert len(multi.bus_trace) == total

    def test_grants_are_balanced_for_identical_cores(self, translated):
        """Identical interp cores advance in lockstep: the round-robin
        arbiter grants every core the same number of slots."""
        program = translated("gcd", 1)
        multi = MultiCoreSoC(program, cores=N_CORES, backends="interp").run()
        assert len(set(multi.grants)) == 1


class TestConstruction:
    def test_replication_needs_core_count(self, translated):
        with pytest.raises(SimulationError):
            MultiCoreSoC(translated("gcd", 0))

    def test_core_and_program_counts_must_agree(self, translated):
        program = translated("gcd", 0)
        with pytest.raises(SimulationError):
            MultiCoreSoC([program, program], cores=3)

    def test_backend_list_length_checked(self, translated):
        with pytest.raises(SimulationError):
            MultiCoreSoC(translated("gcd", 0), cores=2,
                         backends=("interp",))

    def test_unknown_backend_rejected(self, translated):
        with pytest.raises(SimulationError):
            MultiCoreSoC(translated("gcd", 0), cores=2, backends="jit")
