"""Unit and property tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    align_down,
    align_up,
    extract,
    fits_signed,
    fits_unsigned,
    insert,
    is_power_of_two,
    log2_exact,
    s8,
    s16,
    s32,
    sign_extend,
    u8,
    u16,
    u32,
)


class TestTruncation:
    def test_u32_wraps(self):
        assert u32(0x1_2345_6789) == 0x2345_6789

    def test_u16_wraps(self):
        assert u16(0x12345) == 0x2345

    def test_u8_wraps(self):
        assert u8(0x1FF) == 0xFF

    def test_u32_negative(self):
        assert u32(-1) == 0xFFFF_FFFF

    def test_s32_positive(self):
        assert s32(5) == 5

    def test_s32_negative(self):
        assert s32(0xFFFF_FFFF) == -1

    def test_s32_min(self):
        assert s32(0x8000_0000) == -0x8000_0000

    def test_s16(self):
        assert s16(0xFFFF) == -1
        assert s16(0x7FFF) == 0x7FFF

    def test_s8(self):
        assert s8(0x80) == -128
        assert s8(0x7F) == 127


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0b0111, 4) == 7

    def test_negative(self):
        assert sign_extend(0b1000, 4) == -8

    def test_full_width(self):
        assert sign_extend(0xFFFF_FFFF, 32) == -1

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    @given(st.integers(min_value=1, max_value=32), st.integers())
    def test_roundtrip_mask(self, bits, value):
        extended = sign_extend(value, bits)
        assert extended & ((1 << bits) - 1) == value & ((1 << bits) - 1)

    @given(st.integers(min_value=1, max_value=32), st.integers())
    def test_range(self, bits, value):
        extended = sign_extend(value, bits)
        assert -(1 << (bits - 1)) <= extended < (1 << (bits - 1))


class TestFits:
    def test_fits_signed_bounds(self):
        assert fits_signed(127, 8)
        assert fits_signed(-128, 8)
        assert not fits_signed(128, 8)
        assert not fits_signed(-129, 8)

    def test_fits_unsigned_bounds(self):
        assert fits_unsigned(255, 8)
        assert not fits_unsigned(256, 8)
        assert not fits_unsigned(-1, 8)


class TestFields:
    def test_extract(self):
        assert extract(0xABCD, 4, 8) == 0xBC

    def test_insert(self):
        assert insert(0x0000, 4, 8, 0xBC) == 0x0BC0

    def test_insert_rejects_overflow(self):
        with pytest.raises(ValueError):
            insert(0, 0, 4, 16)

    @given(st.integers(min_value=0, max_value=0xFFFF_FFFF),
           st.integers(min_value=0, max_value=24),
           st.integers(min_value=1, max_value=8))
    def test_insert_extract_roundtrip(self, word, lo, width):
        value = (word >> 3) & ((1 << width) - 1)
        assert extract(insert(word, lo, width, value), lo, width) == value


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 16) == 0x1230

    def test_align_up(self):
        assert align_up(0x1231, 16) == 0x1240

    def test_align_up_exact(self):
        assert align_up(0x1230, 16) == 0x1230

    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_log2_exact(self):
        assert log2_exact(32) == 5

    def test_log2_exact_rejects(self):
        with pytest.raises(ValueError):
            log2_exact(33)
