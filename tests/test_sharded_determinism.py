"""Property tests: sharded evaluation is indistinguishable from serial.

:class:`repro.eval.sharded.ShardedRunner` may split work across any
number of processes in any submission order, yet every
``PlatformResult.observables()`` dict (and every reference run) must
be identical to what the serial :mod:`repro.eval.runner` path
produces, and outcomes must come back in submission order.  The shard
orderings and worker counts are randomized from fixed seeds so the
property is fuzzed but reproducible.

``REPRO_SMOKE_JOBS`` caps the worker count (CI smoke runs use 2).
"""

import os
import random

import pytest

from repro.eval.runner import measure_program
from repro.eval.sharded import ShardedRunner, ShardSpec

MAX_JOBS = max(2, int(os.environ.get("REPRO_SMOKE_JOBS", "3")))
PROGRAMS = ("gcd", "uart_hello", "timer_probe")
LEVELS = (0, 2)
BACKENDS = ("interp", "compiled")
SEEDS = (0xC6, 0x51, 0x2026)


@pytest.fixture(scope="module")
def serial():
    """The serial runner's measurements, per (program, backend)."""
    return {(name, backend): measure_program(name, levels=LEVELS,
                                             backend=backend)
            for name in PROGRAMS for backend in BACKENDS}


def _all_specs() -> list[ShardSpec]:
    return [ShardSpec(program=name, level=level, backend=backend)
            for name in PROGRAMS for level in LEVELS for backend in BACKENDS]


@pytest.mark.parametrize("seed", SEEDS)
def test_random_shard_order_and_worker_count(seed, serial):
    """Any (seeded) shuffle and worker count reproduces serial results."""
    rng = random.Random(seed)
    specs = _all_specs()
    rng.shuffle(specs)
    jobs = rng.randint(2, MAX_JOBS)
    outcomes = ShardedRunner(jobs=jobs).run(specs)
    assert [outcome.spec for outcome in outcomes] == specs
    parent = os.getpid()
    assert all(outcome.pid != parent for outcome in outcomes)
    for outcome in outcomes:
        spec = outcome.spec
        expected = serial[(spec.program, spec.backend)]
        assert (outcome.result.observables()
                == expected.levels[spec.level].result.observables()), \
            (seed, jobs, spec)
        assert outcome.wall_seconds > 0


def test_inline_jobs1_matches_serial_runner(serial):
    """jobs=1 (no pool at all) walks the identical code path result."""
    outcomes = ShardedRunner(jobs=1).run(_all_specs())
    parent = os.getpid()
    for outcome in outcomes:
        spec = outcome.spec
        assert outcome.pid == parent
        expected = serial[(spec.program, spec.backend)]
        assert (outcome.result.observables()
                == expected.levels[spec.level].result.observables())


def test_measure_registry_matches_measure_program(serial):
    """The assembled sweep equals per-program serial measurements."""
    sharded = ShardedRunner(jobs=2).measure_registry(
        PROGRAMS, LEVELS, backend="compiled")
    for name in PROGRAMS:
        expected = serial[(name, "compiled")]
        got = sharded[name]
        assert vars(got.reference) == vars(expected.reference)
        assert sorted(got.levels) == sorted(expected.levels)
        for level in LEVELS:
            assert (got.levels[level].result.observables()
                    == expected.levels[level].result.observables())


def test_compiled_shards_reuse_parent_regions(serial):
    """Workers execute regions precompiled by the parent: no worker
    ever generates region source for itself."""
    specs = [ShardSpec(program=name, level=2, backend="compiled")
             for name in PROGRAMS for _ in range(2)]
    outcomes = ShardedRunner(jobs=2).run(specs)
    for outcome in outcomes:
        assert outcome.regions_generated == 0, outcome.spec
        assert outcome.regions_from_cache > 0, outcome.spec


class TestStreaming:
    """``run_all(stream=True)`` yields outcomes as shards complete."""

    def test_default_run_all_is_deterministic_run(self, serial):
        """Without stream=, run_all is exactly run(): a submission-order
        list — the deterministic default path stays untouched."""
        specs = _all_specs()
        outcomes = ShardedRunner(jobs=2).run_all(specs)
        assert isinstance(outcomes, list)
        assert [outcome.spec for outcome in outcomes] == specs
        for outcome in outcomes:
            spec = outcome.spec
            expected = serial[(spec.program, spec.backend)]
            assert (outcome.result.observables()
                    == expected.levels[spec.level].result.observables())

    def test_stream_yields_every_outcome_with_identical_results(
            self, serial):
        """Completion order may differ, but the outcome *set* — and
        every observable in it — matches the serial runner."""
        specs = _all_specs()
        streamed = ShardedRunner(jobs=2).run_all(specs, stream=True)
        assert not isinstance(streamed, list)  # lazily yielded
        seen = []
        for outcome in streamed:
            seen.append(outcome.spec)
            expected = serial[(outcome.spec.program, outcome.spec.backend)]
            assert (outcome.result.observables()
                    == expected.levels[
                        outcome.spec.level].result.observables())
            assert outcome.wall_seconds > 0
        # every submitted shard came back exactly once
        assert sorted(map(repr, seen)) == sorted(map(repr, specs))

    def test_stream_inline_jobs1(self, serial):
        """jobs=1 streams inline, in submission order by construction."""
        specs = _all_specs()[:4]
        outcomes = list(ShardedRunner(jobs=1).run_all(specs, stream=True))
        assert [outcome.spec for outcome in outcomes] == specs
        parent = os.getpid()
        assert all(outcome.pid == parent for outcome in outcomes)


def test_spec_validation():
    with pytest.raises(ValueError):
        ShardSpec(program="gcd", kind="nonsense").validate()
    with pytest.raises(ValueError):
        ShardSpec().validate()
    with pytest.raises(ValueError):
        ShardedRunner(jobs=0)
