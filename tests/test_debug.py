"""Debugger and RSP protocol tests (Section 3.5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.debug.debugger import Debugger, StopReason
from repro.debug.rsp import (
    RspClient,
    RspServer,
    checksum,
    decode_packet,
    encode_packet,
)
from repro.errors import DebugError
from repro.isa.tricore.assembler import assemble
from repro.minic.compiler import compile_source
from repro.refsim.iss import FunctionalISS

LOOP_ASM = """
_start:
    li d1, 0
    li d2, 5
top:
    add d1, d1, d2
    add d2, d2, -1
    jnz d2, top
    mov d3, 42
    la a2, 0xF0000020
    st.w [a2], d1
    halt
"""


@pytest.fixture()
def loop_obj():
    return assemble(LOOP_ASM)


class TestSingleStep:
    def test_steps_track_the_iss(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        iss = FunctionalISS(loop_obj)
        for _ in range(25):
            stop = dbg.step()
            iss.step()
            if stop.reason is not StopReason.STEP:
                break
            assert dbg.src_pc == iss.state.pc
            regs = dbg.read_all_registers()
            for reg in range(16):
                assert regs[f"d{reg}"] == iss.state.regs[reg]

    def test_step_returns_step_reason(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        assert dbg.step().reason is StopReason.STEP

    def test_run_to_exit(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        stop = dbg.cont()
        assert stop.reason is StopReason.EXITED
        assert stop.exit_code == 15


class TestBreakpoints:
    def test_block_head_breakpoint(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        top = loop_obj.symbol_addr("top")
        dbg.set_breakpoint(top)
        stop = dbg.cont()
        assert stop.reason is StopReason.BREAKPOINT
        assert stop.address == top

    def test_midblock_breakpoint_uses_single_step(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        mid = loop_obj.symbol_addr("top") + 4
        dbg.set_breakpoint(mid)
        stop = dbg.cont()
        assert stop.reason is StopReason.BREAKPOINT
        assert stop.address == mid
        assert dbg.read_register("d1") == 5  # first add done

    def test_breakpoint_hits_every_iteration(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        mid = loop_obj.symbol_addr("top") + 4
        dbg.set_breakpoint(mid)
        values = []
        for _ in range(5):
            stop = dbg.cont()
            assert stop.address == mid
            values.append(dbg.read_register("d1"))
        assert values == [5, 9, 12, 14, 15]

    def test_clear_breakpoint(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        top = loop_obj.symbol_addr("top")
        dbg.set_breakpoint(top)
        dbg.cont()
        dbg.clear_breakpoint(top)
        stop = dbg.cont()
        assert stop.reason is StopReason.EXITED

    def test_invalid_breakpoint_rejected(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        with pytest.raises(DebugError):
            dbg.set_breakpoint(loop_obj.entry + 1)  # mid-instruction

    def test_step_then_continue(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        for _ in range(3):
            dbg.step()
        stop = dbg.cont()
        assert stop.reason is StopReason.EXITED
        assert stop.exit_code == 15


class TestStateAccess:
    def test_memory_read_write(self):
        obj = compile_source("""
            int g[4] = {1, 2, 3, 4};
            int main() { return g[0]; }
        """)
        dbg = Debugger(obj, level=1)
        base = obj.symbol_addr("g_g")
        data = dbg.read_memory(base, 16)
        assert [int.from_bytes(data[i:i + 4], "little")
                for i in range(0, 16, 4)] == [1, 2, 3, 4]
        dbg.write_memory(base, (99).to_bytes(4, "little"))
        stop = dbg.cont()
        assert stop.exit_code == 99  # the program saw the edit

    def test_register_write(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        for _ in range(2):  # past the two li instructions
            dbg.step()
        dbg.write_register("d2", 1)  # shorten the loop
        stop = dbg.cont()
        assert stop.exit_code == 1

    def test_memory_bounds_checked(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        with pytest.raises(DebugError):
            dbg.read_memory(0x8000_0000, 4)  # code region

    def test_emulated_cycles_advance(self, loop_obj):
        dbg = Debugger(loop_obj, level=1)
        before = dbg.emulated_cycles
        dbg.step()
        assert dbg.emulated_cycles >= before


class TestRspFraming:
    def test_encode(self):
        assert encode_packet(b"OK") == b"$OK#9a"

    def test_decode_roundtrip(self):
        assert decode_packet(encode_packet(b"hello")) == b"hello"

    def test_bad_checksum(self):
        with pytest.raises(DebugError):
            decode_packet(b"$OK#00")

    def test_missing_dollar(self):
        with pytest.raises(DebugError):
            decode_packet(b"OK#9a")

    @given(st.binary(min_size=0, max_size=64).filter(
        lambda b: b"#" not in b and b"$" not in b))
    def test_roundtrip_property(self, payload):
        assert decode_packet(encode_packet(payload)) == payload

    def test_checksum_mod_256(self):
        assert checksum(b"\xff\xff") == 0xFE


class TestRspServer:
    def _client(self, obj):
        return RspClient(RspServer(Debugger(obj, level=1)))

    def test_question_mark(self, loop_obj):
        assert self._client(loop_obj).command("?") == "S05"

    def test_g_packet_layout(self, loop_obj):
        reply = self._client(loop_obj).command("g")
        assert len(reply) == 33 * 8  # 32 registers + pc

    def test_step_and_read_register(self, loop_obj):
        client = self._client(loop_obj)
        client.command("s")  # li d1, 0
        client.command("s")  # li d2, 5
        reply = client.command("p2")  # d2
        assert int.from_bytes(bytes.fromhex(reply), "little") == 5

    def test_write_register(self, loop_obj):
        client = self._client(loop_obj)
        client.command("s")
        assert client.command("P1=" + (7).to_bytes(4, "little").hex()) == "OK"
        reply = client.command("p1")
        assert int.from_bytes(bytes.fromhex(reply), "little") == 7

    def test_memory_commands(self, loop_obj):
        client = self._client(loop_obj)
        assert client.command("M%x,4:2a000000" % 0xD0000000) == "OK"
        assert client.command("m%x,4" % 0xD0000000) == "2a000000"

    def test_continue_to_exit(self, loop_obj):
        client = self._client(loop_obj)
        assert client.command("c") == "W0f"  # exit code 15

    def test_breakpoint_commands(self, loop_obj):
        client = self._client(loop_obj)
        top = loop_obj.symbol_addr("top")
        assert client.command(f"Z0,{top:x},4") == "OK"
        assert client.command("c") == "S05"
        assert client.command(f"z0,{top:x},4") == "OK"

    def test_bad_packets(self, loop_obj):
        client = self._client(loop_obj)
        assert client.command("m nonsense") == "E02"
        assert client.command("Z0,1") == "E03"  # not an instruction
        assert client.command("qSupported:foo") .startswith("PacketSize")
        assert client.command("X123") == ""  # unsupported

    def test_nak_on_bad_frame(self, loop_obj):
        server = RspServer(Debugger(loop_obj, level=1))
        assert server.handle_frame(b"$oops#00") == b"-"
