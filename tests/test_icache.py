"""Instruction-cache model tests: a hypothesis differential test
against a naive reference implementation, and capacity-miss coverage
under the big-kernel workloads (whose code exceeds the cache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.model import ICacheModel, default_source_arch
from repro.cache.icache import InstructionCache


def _cache(ways=2, sets=4, line_size=16, penalty=10) -> InstructionCache:
    return InstructionCache(ICacheModel(ways=ways, sets=sets,
                                        line_size=line_size,
                                        miss_penalty=penalty))


class NaiveCache:
    """Reference: per-set list ordered most-recent-first."""

    def __init__(self, ways, sets, line_size):
        self.ways = ways
        self.sets = sets
        self.line_size = line_size
        self.state = [[] for _ in range(sets)]

    def access(self, addr):
        line = addr // self.line_size
        index = line % self.sets
        tag = line // self.sets
        entries = self.state[index]
        if tag in entries:
            entries.remove(tag)
            entries.insert(0, tag)
            return True
        entries.insert(0, tag)
        if len(entries) > self.ways:
            entries.pop()
        return False


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x104)  # same line

    def test_distinct_lines(self):
        cache = _cache(line_size=16)
        assert not cache.access(0x0)
        assert not cache.access(0x10)

    def test_two_way_conflict(self):
        cache = _cache(ways=2, sets=4, line_size=16)
        # three lines mapping to set 0 (stride = sets*line = 64)
        assert not cache.access(0x00)
        assert not cache.access(0x40)
        assert cache.access(0x00)
        assert cache.access(0x40)
        assert not cache.access(0x80)  # evicts LRU (0x00)
        assert not cache.access(0x00)

    def test_direct_mapped_thrash(self):
        cache = _cache(ways=1, sets=4, line_size=16)
        assert not cache.access(0x00)
        assert not cache.access(0x40)
        assert not cache.access(0x00)

    def test_penalty(self):
        cache = _cache(penalty=7)
        assert cache.access_penalty(0x0) == 7
        assert cache.access_penalty(0x0) == 0

    def test_stats(self):
        cache = _cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x40)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert 0 < cache.stats.miss_rate < 1

    def test_reset(self):
        cache = _cache()
        cache.access(0x0)
        cache.reset()
        assert not cache.access(0x0)
        assert cache.stats.misses == 1

    def test_lookup_does_not_modify(self):
        cache = _cache()
        assert not cache.lookup(0x0)
        assert not cache.access(0x0)  # still a miss: lookup changed nothing

    def test_initial_victim_is_way_zero(self):
        # Matches the zero-initialized LRU words of generated code.
        cache = _cache(ways=2, sets=1, line_size=16)
        cache.access(0x00)   # fills way 0
        contents = cache.contents()
        assert contents[0][0] is not None
        assert contents[0][1] is None

    def test_split(self):
        cache = _cache(ways=2, sets=4, line_size=16)
        tag, index = cache.split(0x45)
        assert index == (0x45 // 16) % 4
        assert tag == (0x45 // 16) // 4

    def test_line_of(self):
        cache = _cache(line_size=32)
        assert cache.line_of(0x47) == 0x40


@settings(max_examples=300, deadline=None)
@given(
    ways=st.integers(min_value=1, max_value=4),
    sets_log=st.integers(min_value=0, max_value=4),
    addrs=st.lists(st.integers(min_value=0, max_value=0x3FF), min_size=1,
                   max_size=120),
)
def test_against_naive_model(ways, sets_log, addrs):
    sets = 1 << sets_log
    cache = _cache(ways=ways, sets=sets, line_size=16)
    naive = NaiveCache(ways, sets, 16)
    for addr in addrs:
        assert cache.access(addr) == naive.access(addr), (
            f"divergence at {addr:#x}")


class TestBigKernelCapacityMisses:
    """The big kernels genuinely overflow the 2 KiB instruction cache.

    The small Section-4 kernels all fit in the default cache (every
    miss is compulsory), so until the big kernels landed, the icache
    model's replacement behaviour was never exercised by a whole
    program — only by the synthetic traces above.  ``dct8x8`` and
    ``viterbi`` must incur *capacity* misses: more misses under the
    default geometry than under a cache large enough to hold their
    whole text, by a wide margin.
    """

    @staticmethod
    def _stats(name, arch):
        from repro.programs.registry import build
        from repro.refsim.iss import CycleAccurateISS

        return CycleAccurateISS(build(name), arch).run().cache_stats

    @staticmethod
    def _code_bytes(name) -> int:
        from repro.programs.registry import build

        return len(build(name).text().data)

    @pytest.mark.parametrize("name", ("dct8x8", "viterbi"))
    def test_big_kernels_incur_capacity_misses(self, name):
        arch = default_source_arch()
        assert self._code_bytes(name) > arch.icache.size, \
            f"{name} no longer overflows the {arch.icache.size}-byte cache"
        default = self._stats(name, arch)
        # 64x the sets => whole text fits => only compulsory misses
        compulsory = self._stats(name, arch.with_icache(sets=2048))
        capacity = default.misses - compulsory.misses
        assert compulsory.misses > 0
        assert capacity >= 500, (
            f"{name}: only {capacity} capacity misses "
            f"({default.misses} total, {compulsory.misses} compulsory)")

    @pytest.mark.parametrize("name", ("gcd", "sieve", "fir"))
    def test_small_kernels_only_miss_compulsorily(self, name):
        # the property that makes the big kernels *distinct*: the
        # Section-4 kernels fit, so every miss is a cold fill
        arch = default_source_arch()
        assert self._code_bytes(name) < arch.icache.size
        default = self._stats(name, arch)
        compulsory = self._stats(name, arch.with_icache(sets=2048))
        assert default.misses == compulsory.misses

    def test_level3_translation_charges_the_misses(self):
        """The level-3 generated cache simulation must surface the
        capacity misses as emulated cycles: switching from level 2
        (no cache model) to level 3 adds at least the reference
        simulator's miss-penalty total, within the usual tolerance."""
        from repro.programs.registry import build
        from repro.translator.driver import translate
        from repro.vliw.platform import PrototypingPlatform

        arch = default_source_arch()
        obj = build("dct8x8")
        misses = self._stats("dct8x8", arch).misses
        penalty = arch.icache.miss_penalty
        runs = {}
        for level in (2, 3):
            program = translate(obj, level=level).program
            runs[level] = PrototypingPlatform(
                program, backend="compiled").run().emulated_cycles
        added = runs[3] - runs[2]
        assert added >= 0.9 * misses * penalty, (
            f"level 3 added only {added} emulated cycles; the reference "
            f"charges ~{misses * penalty}")
