"""Instruction-cache model tests, including a hypothesis differential
test against a naive reference implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.model import ICacheModel
from repro.cache.icache import InstructionCache


def _cache(ways=2, sets=4, line_size=16, penalty=10) -> InstructionCache:
    return InstructionCache(ICacheModel(ways=ways, sets=sets,
                                        line_size=line_size,
                                        miss_penalty=penalty))


class NaiveCache:
    """Reference: per-set list ordered most-recent-first."""

    def __init__(self, ways, sets, line_size):
        self.ways = ways
        self.sets = sets
        self.line_size = line_size
        self.state = [[] for _ in range(sets)]

    def access(self, addr):
        line = addr // self.line_size
        index = line % self.sets
        tag = line // self.sets
        entries = self.state[index]
        if tag in entries:
            entries.remove(tag)
            entries.insert(0, tag)
            return True
        entries.insert(0, tag)
        if len(entries) > self.ways:
            entries.pop()
        return False


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x104)  # same line

    def test_distinct_lines(self):
        cache = _cache(line_size=16)
        assert not cache.access(0x0)
        assert not cache.access(0x10)

    def test_two_way_conflict(self):
        cache = _cache(ways=2, sets=4, line_size=16)
        # three lines mapping to set 0 (stride = sets*line = 64)
        assert not cache.access(0x00)
        assert not cache.access(0x40)
        assert cache.access(0x00)
        assert cache.access(0x40)
        assert not cache.access(0x80)  # evicts LRU (0x00)
        assert not cache.access(0x00)

    def test_direct_mapped_thrash(self):
        cache = _cache(ways=1, sets=4, line_size=16)
        assert not cache.access(0x00)
        assert not cache.access(0x40)
        assert not cache.access(0x00)

    def test_penalty(self):
        cache = _cache(penalty=7)
        assert cache.access_penalty(0x0) == 7
        assert cache.access_penalty(0x0) == 0

    def test_stats(self):
        cache = _cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x40)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert 0 < cache.stats.miss_rate < 1

    def test_reset(self):
        cache = _cache()
        cache.access(0x0)
        cache.reset()
        assert not cache.access(0x0)
        assert cache.stats.misses == 1

    def test_lookup_does_not_modify(self):
        cache = _cache()
        assert not cache.lookup(0x0)
        assert not cache.access(0x0)  # still a miss: lookup changed nothing

    def test_initial_victim_is_way_zero(self):
        # Matches the zero-initialized LRU words of generated code.
        cache = _cache(ways=2, sets=1, line_size=16)
        cache.access(0x00)   # fills way 0
        contents = cache.contents()
        assert contents[0][0] is not None
        assert contents[0][1] is None

    def test_split(self):
        cache = _cache(ways=2, sets=4, line_size=16)
        tag, index = cache.split(0x45)
        assert index == (0x45 // 16) % 4
        assert tag == (0x45 // 16) // 4

    def test_line_of(self):
        cache = _cache(line_size=32)
        assert cache.line_of(0x47) == 0x40


@settings(max_examples=300, deadline=None)
@given(
    ways=st.integers(min_value=1, max_value=4),
    sets_log=st.integers(min_value=0, max_value=4),
    addrs=st.lists(st.integers(min_value=0, max_value=0x3FF), min_size=1,
                   max_size=120),
)
def test_against_naive_model(ways, sets_log, addrs):
    sets = 1 << sets_log
    cache = _cache(ways=ways, sets=sets, line_size=16)
    naive = NaiveCache(ways, sets, 16)
    for addr in addrs:
        assert cache.access(addr) == naive.access(addr), (
            f"divergence at {addr:#x}")
