"""Unit tests for individual translator passes: static cycle
calculation vs the ISS, rewrite/annotation structure, cache analysis
blocks, and the XML instruction-set description."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.model import default_source_arch, default_target_arch
from repro.errors import ArchitectureError
from repro.isa.tricore.assembler import assemble
from repro.isa.tricore.xmlspec import (
    instruction_set_to_xml,
    load_instruction_set,
)
from repro.objfile.elf import SymbolKind
from repro.refsim.iss import CycleAccurateISS
from repro.translator.annotate import build_block_regions
from repro.translator.baseaddr import analyze
from repro.translator.blocks import build_cfg
from repro.translator.cycles import static_block_cycles
from repro.translator.decoder import decode_object
from repro.translator.icache_annot import (
    CacheLayout,
    make_layout,
    split_analysis_blocks,
    tagv_word,
)
from repro.translator.ir import IROp, Role
from repro.translator.rewrite import AddressTranslator

ARCH = default_source_arch()
TARGET = default_target_arch()


def _prep(source: str, level=1):
    obj = assemble(source)
    cfg = build_cfg(decode_object(obj), obj)
    funcs = {s.addr for s in obj.symbols.values()
             if s.kind == SymbolKind.FUNC}
    accesses = analyze(cfg, ARCH.memory, funcs)
    xlator = AddressTranslator(ARCH, TARGET, accesses, level)
    return obj, cfg, accesses, xlator


class TestStaticCycles:
    """Static per-block prediction == ISS timing from a clean pipeline."""

    STRAIGHT_OPS = ["add d1, d2, d3", "sub d4, d5, d6", "mul d7, d1, d2",
                    "and d3, d3, 15", "mov d2, 100", "eq d5, d1, d2",
                    "shl d6, d6, 2", "mov.a a2, d1", "mov.d d3, a2",
                    "min d1, d1, d2"]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(STRAIGHT_OPS), min_size=1, max_size=12))
    def test_straight_line_matches_iss(self, ops):
        source = "_start:\n" + "\n".join(f"    {op}" for op in ops) \
            + "\n    halt\n"
        obj, cfg, accesses, _ = _prep(source)
        block = cfg.blocks[obj.entry]
        predicted = static_block_cycles(block, accesses, ARCH, level=1)
        arch = ARCH.with_icache(enabled=False)  # clean-pipeline comparison
        iss = CycleAccurateISS(obj, arch)
        result = iss.run()
        # The ISS executed the same single block (halt included).
        assert predicted.predicted == result.cycles

    def test_branch_cost_level1_vs_level2(self):
        source = """
        _start:
        top:
            add d1, d1, -1
            jnz d1, top
            halt
        """
        obj, cfg, accesses, _ = _prep(source)
        top = obj.symbols["top"].addr
        block = cfg.blocks[top]
        level1 = static_block_cycles(block, accesses, ARCH, level=1)
        level2 = static_block_cycles(block, accesses, ARCH, level=2)
        # Level 1 charges the predicted path (backward taken: cost 2);
        # level 2 charges the minimum (not-taken-correct: 1) plus
        # corrections: +1 when taken (correct prediction), +3 when the
        # predicted-taken branch falls through (a mispredict, cost 4).
        assert level1.predicted == level2.predicted + 1
        assert level2.correction is not None
        assert level2.correction.delta_taken == 1
        assert level2.correction.delta_not_taken == \
            ARCH.branch.mispredict - ARCH.branch.min_conditional

    def test_io_accesses_counted(self):
        source = """
        _start:
            la a2, 0xF0000040
            st.w [a2], d1
            halt
        """
        obj, cfg, accesses, _ = _prep(source)
        block = cfg.blocks[obj.entry]
        cycles = static_block_cycles(block, accesses, ARCH, level=1)
        assert cycles.io_cycles == ARCH.pipeline.io_access_cycles


class TestRewrite:
    def test_data_access_gets_delta_add(self):
        source = """
        _start:
            la a2, buf
            ld.w d1, [a2]
            halt
            .data
        buf:
            .word 0
        """
        obj, cfg, _, xlator = _prep(source)
        block_ir = xlator.rewrite_block(cfg.blocks[obj.entry])
        fixups = [i for i in block_ir.body if i.role is Role.ADDR_FIXUP]
        assert len(fixups) == 1
        assert fixups[0].op is IROp.ADD

    def test_unknown_access_gets_stub(self):
        source = """
        _start:
            mov.a a2, d1
            ld.w d3, [a2]
            halt
        """
        obj, cfg, _, xlator = _prep(source)
        block_ir = xlator.rewrite_block(cfg.blocks[obj.entry])
        stub = [i for i in block_ir.body if i.role is Role.ADDR_FIXUP]
        assert any(i.op is IROp.CMPGEU for i in stub)
        preds = [i for i in stub if i.pred is not None]
        assert len(preds) >= 2  # both translated-address alternatives

    def test_terminator_split_off(self):
        source = "_start:\n    j _start\n"
        obj, cfg, _, xlator = _prep(source)
        block_ir = xlator.rewrite_block(cfg.blocks[obj.entry])
        assert block_ir.terminator is not None
        assert block_ir.terminator.op is IROp.B
        assert all(i.op is not IROp.B for i in block_ir.body)


class TestAnnotation:
    def _regions(self, source, level, layout=None):
        obj, cfg, accesses, xlator = _prep(source, level)
        block = cfg.blocks[obj.entry]
        block_ir = xlator.rewrite_block(block)
        cycles = static_block_cycles(block, accesses, ARCH, level)
        return build_block_regions(block_ir, cycles, level, ARCH,
                                   layout, None)

    SOURCE = """
    _start:
        add d1, d1, d2
        jeq d1, d2, _start
        halt
    """

    def test_level0_unannotated(self):
        (region,) = self._regions(self.SOURCE, 0)
        roles = {i.role for i in region.items}
        assert Role.SYNC_START not in roles
        assert Role.SYNC_WAIT not in roles

    def test_level1_sync_bracket(self):
        (region,) = self._regions(self.SOURCE, 1)
        roles = [i.role for i in region.items]
        assert roles.count(Role.SYNC_START) == 2  # MVK + STW
        assert roles.count(Role.SYNC_WAIT) == 1
        # start before wait
        assert roles.index(Role.SYNC_START) < roles.index(Role.SYNC_WAIT)

    def test_level2_correction_block(self):
        (region,) = self._regions(self.SOURCE, 2)
        roles = [i.role for i in region.items]
        assert Role.CORR_ADD in roles
        assert Role.CORR_START in roles
        assert Role.CORR_WAIT in roles
        assert Role.CORR_RESET in roles
        # corrections accumulate before the wait, the correction block
        # runs after it
        assert roles.index(Role.CORR_ADD) < roles.index(Role.SYNC_WAIT)
        assert roles.index(Role.CORR_START) > roles.index(Role.SYNC_WAIT)

    def test_level3_cache_calls_split_regions(self):
        layout = make_layout(ARCH, TARGET)
        big_block = "_start:\n" + "    add d1, d1, d2\n" * 24 + "    halt\n"
        regions = self._regions(big_block, 3, layout)
        assert len(regions) >= 2  # 24 four-byte instrs span >1 line
        assert regions[0].terminator is not None
        assert regions[0].terminator.label == "__cachesub"


class TestCacheAnalysisBlocks:
    def test_split_by_line(self):
        layout = CacheLayout(base=0x8002_0000, ways=2, sets=32,
                             line_size=32, miss_penalty=10)
        # boundaries: instruction index -> source address
        boundaries = [(0, 0x8000_0000), (1, 0x8000_0010),
                      (2, 0x8000_0020), (3, 0x8000_0030)]

        class FakeBlock:
            pass

        cabs = split_analysis_blocks(FakeBlock(), boundaries, 4, layout)
        assert len(cabs) == 2
        assert cabs[0].line_addr == 0x8000_0000
        assert cabs[1].line_addr == 0x8000_0020
        assert cabs[0].end_index == 2

    def test_tag_and_set(self):
        layout = CacheLayout(base=0, ways=2, sets=32, line_size=32,
                             miss_penalty=10)
        boundaries = [(0, 0x8000_0040)]

        class FakeBlock:
            pass

        (cab,) = split_analysis_blocks(FakeBlock(), boundaries, 1, layout)
        line = 0x8000_0040 >> 5
        assert cab.set_index == line % 32
        assert cab.tag == line // 32
        assert tagv_word(cab) == (cab.tag << 1) | 1

    def test_layout_stride(self):
        layout = CacheLayout(base=0x100, ways=2, sets=4, line_size=16,
                             miss_penalty=5)
        assert layout.set_stride == 12  # 2 tag words + lru word
        assert layout.set_addr(2) == 0x100 + 24
        assert layout.size == 48

    def test_unsupported_ways_rejected(self):
        from repro.errors import TranslationError

        arch = default_source_arch().with_icache(ways=4)
        with pytest.raises(TranslationError):
            make_layout(arch, TARGET)


class TestXmlInstructionSet:
    def test_roundtrip(self):
        text = instruction_set_to_xml()
        specs = load_instruction_set(text)
        from repro.isa.tricore.instructions import SPECS

        assert [s.key for s in specs] == [s.key for s in SPECS]

    def test_document_structure(self):
        text = instruction_set_to_xml()
        assert "<formats>" in text
        assert 'mnemonic="ld.w"' in text
        assert 'class="ls"' in text

    def test_mismatched_opcode_rejected(self):
        text = instruction_set_to_xml().replace(
            'key="add" mnemonic="add" opcode="0x1"',
            'key="add" mnemonic="add" opcode="0x5"')
        with pytest.raises(ArchitectureError):
            load_instruction_set(text)

    def test_unknown_key_rejected(self):
        with pytest.raises(ArchitectureError):
            load_instruction_set(
                '<instructionset><instructions>'
                '<instruction key="zap"/></instructions></instructionset>')

    def test_malformed_rejected(self):
        with pytest.raises(ArchitectureError):
            load_instruction_set("<instructionset")
