"""Region IR: golden snapshots, structural invariants, and the
three-stage pipeline's contracts.

The IR (``repro.vliw.codegen.ir``) sits between region discovery and
pluggable codegen, so two things must hold very firmly:

* **stability** — the lowered IR of a fixed program at a fixed detail
  level is deterministic and pinned by golden fingerprints: an
  unintended change to lowering (a reordered phase, a lost counter)
  shows up here before it shows up as a one-in-a-million observable
  divergence;
* **completeness** — every epilogue's counters, spills and chain edges
  are internally consistent, the IR pickles (the sharded-runner
  transport), and every emitter renders from it without consulting the
  program again.
"""

import hashlib
import pickle

import pytest

from repro.programs.registry import build
from repro.translator.driver import translate
from repro.vliw.codegen.emit_python import PythonEmitter
from repro.vliw.codegen.ir import (
    BranchEnd,
    CutEnd,
    InterpEnd,
    RegionIR,
    fingerprint,
)
from repro.vliw.compiled import PacketCompiler
from repro.vliw.platform import PrototypingPlatform


def lowered(name: str, level: int) -> dict[int, RegionIR]:
    """Every statically reachable region of *name* at *level*."""
    program = translate(build(name), level=level).program
    compiler = PacketCompiler(PrototypingPlatform(
        program, backend="compiled").core)
    compiler.precompile()
    return {pc0: ir for pc0, ir in compiler._ir_cache.items()
            if ir is not None}


def combined_fingerprint(irs: dict[int, RegionIR]) -> str:
    joined = "".join(fingerprint(irs[pc0]) for pc0 in sorted(irs))
    return hashlib.sha256(joined.encode()).hexdigest()


#: golden pins: (program, level) -> (n_regions, entry n_packets,
#: entry end_kind, entry chain targets, entry fingerprint prefix,
#: combined fingerprint prefix).  Regenerate deliberately (see
#: docs/ir.md) when lowering changes on purpose.
GOLDEN = {
    ("gcd", 1): (34, 6, "branch", (6,),
                 "222cfe39747e201f", "a68670bec8890941"),
    ("sieve", 3): (69, 7, "branch", (7,),
                   "b7fad69cb1366a53", "de7ca6c8d87ecf3f"),
    ("fir", 0): (32, 6, "branch", (6,),
                 "f2173d453f38625f", "895c280b1e5a9a3a"),
    ("crc32", 2): (54, 7, "branch", (7,),
                   "b7fad69cb1366a53", "311905b7f96d56af"),
}


class TestGoldenSnapshots:
    @pytest.mark.parametrize("name,level", sorted(GOLDEN))
    def test_pinned_ir(self, name, level):
        irs = lowered(name, level)
        entry_pc = translate(build(name), level=level).program.entry
        entry = irs[entry_pc]
        (n_regions, n_packets, end_kind, chain, entry_fp,
         combined_fp) = GOLDEN[(name, level)]
        assert len(irs) == n_regions
        assert entry.n_packets == n_packets
        assert entry.end_kind == end_kind
        assert entry.chain_targets == chain
        assert fingerprint(entry).startswith(entry_fp)
        assert combined_fingerprint(irs).startswith(combined_fp)

    def test_lowering_is_deterministic(self):
        first = combined_fingerprint(lowered("gcd", 2))
        second = combined_fingerprint(lowered("gcd", 2))
        assert first == second


class TestStructuralInvariants:
    @pytest.mark.parametrize("name,level", (("gcd", 1), ("sieve", 3),
                                            ("uart_hello", 2)))
    def test_epilogues_and_edges_consistent(self, name, level):
        for pc0, ir in lowered(name, level).items():
            assert ir.pc0 == pc0
            assert len(ir.packets) == ir.n_packets
            for offset, packet in enumerate(ir.packets):
                assert packet.offset == offset
                assert packet.index == pc0 + offset
                assert packet.entry_commit == (offset < ir.entry_window)
            end = ir.end
            if ir.end_kind == "halt":
                assert end is None
                assert ir.packets[-1].halt_exit is not None
            elif ir.end_kind == "branch":
                assert isinstance(end, BranchEnd)
                assert end.taken.executed == ir.n_packets
                if end.pred is None:
                    assert end.fallthrough is None
                else:
                    assert end.fallthrough.pc == pc0 + ir.n_packets
            elif ir.end_kind == "cut":
                assert isinstance(end, CutEnd)
                assert end.chain_pc == pc0 + ir.n_packets
            else:
                assert isinstance(end, InterpEnd)
            # chain edges point at real packet indices
            n_program = len(translate(build(name),
                                      level=level).program.packets)
            for target in ir.chain_targets:
                assert 0 <= target <= n_program

    def test_device_regions_flagged(self):
        irs = lowered("uart_hello", 1)
        assert any(not ir.pure for ir in irs.values())
        for ir in irs.values():
            expected = any(p.device for p in ir.packets)
            assert ir.pure == (not expected)

    def test_ir_pickles(self):
        """The sharded-runner transport: IR must survive pickling with
        identical fingerprints (workers rebuild native modules from
        exactly this data)."""
        for ir in lowered("gcd", 2).values():
            clone = pickle.loads(pickle.dumps(ir))
            assert fingerprint(clone) == fingerprint(ir)


class TestEmitterContract:
    def test_python_emitter_is_pure_function_of_ir(self):
        """Emission consults only the IR: same IR -> same source."""
        emitter = PythonEmitter()
        for ir in lowered("fir", 2).values():
            first = emitter.emit(ir)
            second = emitter.emit(pickle.loads(pickle.dumps(ir)))
            assert first == second

    def test_c_emitter_declines_nothing_on_registry_kernels(self):
        """The native module covers every lowered region of the
        registry programs (device packets included, via the
        bridge-window pre-check)."""
        from repro.vliw.codegen.emit_c import CEmitter

        irs = lowered("uart_hello", 3)
        _source, plan = CEmitter().emit_module(irs.values())
        assert set(plan) == set(irs)

    def test_c_source_is_deterministic(self):
        from repro.vliw.codegen.emit_c import CEmitter

        irs = lowered("gcd", 1)
        first, _ = CEmitter().emit_module(irs.values())
        second, _ = CEmitter().emit_module(irs.values())
        assert first == second


class TestBackendRegistry:
    def test_registered_backends(self):
        from repro.vliw.codegen import backend_names, resolve_backend

        names = backend_names()
        assert names == ("interp", "compiled", "native", "tiered")
        assert not resolve_backend("interp").compiled
        assert resolve_backend("compiled").compiled
        assert resolve_backend("native").native
        spec = resolve_backend("tiered")
        assert spec.compiled and spec.tiered and not spec.native

    def test_unknown_backend_error_lists_registered(self):
        from repro.errors import SimulationError
        from repro.vliw.codegen import resolve_backend

        with pytest.raises(SimulationError) as excinfo:
            resolve_backend("jit")
        message = str(excinfo.value)
        assert "jit" in message
        for name in ("interp", "compiled", "native", "tiered"):
            assert name in message

    def test_platform_rejects_unknown_backend_with_names(self):
        from repro.errors import SimulationError

        program = translate(build("gcd"), level=0).program
        with pytest.raises(SimulationError, match="registered backends"):
            PrototypingPlatform(program, backend="turbo")

    def test_measure_program_rejects_unknown_backend_fast(self):
        from repro.errors import SimulationError
        from repro.eval.runner import measure_program

        with pytest.raises(SimulationError, match="registered backends"):
            measure_program("gcd", levels=(0,), backend="nonsense")

    def test_shard_spec_rejects_unknown_backend(self):
        from repro.errors import SimulationError
        from repro.eval.sharded import ShardSpec

        with pytest.raises(SimulationError, match="registered backends"):
            ShardSpec(program="gcd", backend="nonsense").validate()

    def test_cli_rejects_unknown_backend_listing_choices(self, tmp_path,
                                                         capsys):
        from repro.cli import minic_main, translate_main

        src = tmp_path / "p.c"
        src.write_text("int main() { return 1; }")
        out = tmp_path / "p.relf"
        minic_main([str(src), "-o", str(out)])
        with pytest.raises(SystemExit):
            translate_main([str(out), "--run", "--backend", "warp"])
        err = capsys.readouterr().err
        assert "invalid choice: 'warp'" in err
        for name in ("interp", "compiled", "native", "tiered"):
            assert name in err
