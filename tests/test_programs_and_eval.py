"""Workload registry, evaluation harness, lowering/regalloc and CLI
coverage."""

import pytest

from repro.cli import (
    asm_main,
    experiments_main,
    minic_main,
    run_main,
    translate_main,
)
from repro.errors import RegisterAllocationError, ReproError
from repro.programs.registry import (
    BIG_KERNELS,
    FIGURE5_PROGRAMS,
    PROGRAMS,
    TABLE2_PROGRAMS,
    ProgramSpec,
    build,
    expected_exit,
    program_names,
    source,
    validate_sources,
)
from repro.refsim.iss import FunctionalISS


class TestRegistry:
    def test_all_programs_build_and_validate(self):
        for name in program_names():
            obj = build(name)
            result = FunctionalISS(obj).run(max_instructions=2_000_000)
            expected = expected_exit(name)
            if expected is not None:
                assert result.exit_code == expected, name

    def test_paper_instruction_counts_calibrated(self):
        for name in TABLE2_PROGRAMS:
            obj = build(name)
            count = FunctionalISS(obj).run().instructions
            paper = PROGRAMS[name].paper_instructions
            assert 0.4 * paper <= count <= 2.5 * paper, (name, count)

    def test_figure5_set(self):
        assert len(FIGURE5_PROGRAMS) == 6
        assert set(FIGURE5_PROGRAMS) <= set(PROGRAMS)

    def test_source_text_available(self):
        assert "gcd" in source("gcd")

    def test_unknown_program(self):
        with pytest.raises(ReproError):
            source("quicksort3000")

    def test_build_cached(self):
        assert build("gcd") is build("gcd")

    def test_big_kernel_set(self):
        assert set(BIG_KERNELS) <= set(PROGRAMS)
        for name in BIG_KERNELS:
            assert expected_exit(name) is not None, name

    def test_registry_sources_all_present(self):
        # the same check that runs at import time, invoked explicitly
        validate_sources()

    def test_missing_source_named_in_error(self):
        ghost = ProgramSpec("ghost", "ghost_kernel.mc",
                            "deliberately missing", "control", None)
        with pytest.raises(ReproError, match="ghost_kernel.mc"):
            validate_sources([ghost])


class TestLowering:
    def test_mvk_splitting(self):
        from repro.isa.c6x.instructions import TOp
        from repro.translator.lower import lower_mvk

        meta = dict(pred=None, pred_sense=True, src_addr=None,
                    comment="", device=False)
        small = lower_mvk(0, 42, dict(meta))
        assert [i.op for i in small] == [TOp.MVK]
        negative = lower_mvk(0, -5, dict(meta))
        assert [i.op for i in negative] == [TOp.MVK]
        wide = lower_mvk(0, 0xDEADBEEF, dict(meta))
        assert [i.op for i in wide] == [TOp.MVKL, TOp.MVKH]
        high_only = lower_mvk(0, 0x01800000, dict(meta))
        assert [i.op for i in high_only] == [TOp.MVKL, TOp.MVKH]

    def test_mvk_pair_reconstructs_value(self):
        from repro.translator.lower import lower_mvk
        from repro.utils.bits import u32

        meta = dict(pred=None, pred_sense=True, src_addr=None,
                    comment="", device=False)
        # 0xFFFFFFFF is -1: a single sign-extending MVK suffices.
        single = lower_mvk(0, 0xFFFF_FFFF, dict(meta))
        assert len(single) == 1 and u32(single[0].imm) == 0xFFFF_FFFF
        for value in (0xDEADBEEF, 0x8000_0000, 0x0001_8000):
            pair = lower_mvk(0, value, dict(meta))
            low = u32(pair[0].imm)
            combined = ((pair[1].imm << 16) | (low & 0xFFFF)) & 0xFFFFFFFF
            assert combined == value


class TestRegisterBinding:
    def test_reserved_get_top_of_b_file(self):
        from collections import Counter

        from repro.arch.model import default_target_arch
        from repro.translator.ir import RES_DDELTA, RES_SYNC
        from repro.translator.regalloc import RegisterBinder

        binder = RegisterBinder(default_target_arch(),
                                [RES_DDELTA, RES_SYNC], Counter({0: 5}),
                                0x8002_0000)
        plan = binder.plan
        assert plan.reserved[RES_DDELTA] == 31  # B15
        assert plan.reserved[RES_SYNC] == 30  # B14
        assert plan.source[0] < 16  # data register on the A side

    def test_spill_plan_when_pressure_high(self):
        from collections import Counter

        from repro.arch.model import TargetArch
        from repro.translator.ir import RES_DDELTA
        from repro.translator.regalloc import RegisterBinder

        target = TargetArch(registers_per_side=8).validate()
        usage = Counter({reg: 32 - reg for reg in range(28)})
        binder = RegisterBinder(target, [RES_DDELTA], usage, 0x8002_0000)
        plan = binder.plan
        assert plan.spilled  # someone had to move to memory
        assert plan.spill_base_reg is not None
        assert len(plan.pool) >= 2
        # most-used registers kept physical homes
        assert 0 in plan.source and 1 in plan.source


class TestEvalHarness:
    def test_measure_program_fields(self):
        from repro.eval.runner import measure_program

        m = measure_program("gcd", levels=(1,))
        assert m.reference.cycles > 0
        assert 1 in m.levels
        assert m.levels[1].cpi > 1.0
        assert m.board_mips(48_000_000) > 1.0
        assert -1.0 < m.deviation(1) < 1.0

    def test_paper_data_sanity(self):
        from repro.eval import paper_data

        assert paper_data.TABLE1_CPI["level3"] > paper_data.TABLE1_CPI[
            "level2"]
        assert paper_data.TABLE2_INSTRUCTIONS["gcd"] == 1484
        assert paper_data.FIGURE5_MIPS_MEAN["board"] > 40


class TestCli:
    def test_minic_then_run(self, tmp_path, capsys):
        src = tmp_path / "p.c"
        src.write_text("int main() { return 7; }")
        out = tmp_path / "p.relf"
        assert minic_main([str(src), "-o", str(out)]) == 0
        assert run_main([str(out)]) == 0
        captured = capsys.readouterr()
        assert "exit=7" in captured.out

    def test_asm_listing(self, tmp_path, capsys):
        src = tmp_path / "p.s"
        src.write_text("_start:\n    nop\n    halt\n")
        out = tmp_path / "p.relf"
        assert asm_main([str(src), "-o", str(out), "--listing"]) == 0
        assert "nop" in capsys.readouterr().out

    def test_translate_and_run(self, tmp_path, capsys):
        src = tmp_path / "p.c"
        src.write_text("int main() { return 3 * 4; }")
        out = tmp_path / "p.relf"
        minic_main([str(src), "-o", str(out)])
        assert translate_main([str(out), "--level", "2", "--run"]) == 0
        assert "exit=12" in capsys.readouterr().out

    def test_minic_error_path(self, tmp_path, capsys):
        src = tmp_path / "bad.c"
        src.write_text("int main( { return; }")
        assert minic_main([str(src)]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_rtl_simulator(self, tmp_path, capsys):
        src = tmp_path / "p.c"
        src.write_text("int main() { return 1; }")
        out = tmp_path / "p.relf"
        minic_main([str(src), "-o", str(out)])
        assert run_main([str(out), "--simulator", "rtl"]) == 0
        assert "exit=1" in capsys.readouterr().out
