"""Differential lockdown of the profile-guided tiered backend.

``backend="tiered"`` climbs a ladder at run time — interpretive core,
Python emitter, native superblocks — so mid-program the *same* region
entry is served by up to three different execution engines.  The
contract stays the one every other backend honors: bit-identical
:meth:`PlatformResult.observables` with the interpretive core, on
every registry program, at every detail level, single-core and under
multi-core lockstep, across promotions *and* demotions.  The ladder
tests use aggressive thresholds so every rung is actually exercised
within small programs; threshold plumbing (``REPRO_TIER_*``, platform
kwargs) and knob validation are locked down alongside.
"""

import pickle

import pytest

from repro.errors import SimulationError
from repro.programs.registry import build, program_names
from repro.translator.driver import translate
from repro.vliw.codegen import TierConfig
from repro.vliw.codegen.native import native_available
from repro.vliw.codegen.tiering import ENV_KNOBS
from repro.vliw.compiled import PacketCompiler, precompile_program
from repro.vliw.multicore import MultiCoreSoC
from repro.vliw.platform import PrototypingPlatform

needs_toolchain = pytest.mark.skipif(
    not native_available(),
    reason="no working C toolchain (or REPRO_NATIVE=0)")

#: thresholds low enough that promotion fires inside small kernels
FAST = TierConfig(promote_python=2, promote_native=4)

LEVELS = (0, 1, 2, 3)


def _run(program, backend, **kwargs):
    return PrototypingPlatform(program, backend=backend, **kwargs).run()


def _tiered(program, tier=FAST, **kwargs):
    platform = PrototypingPlatform(program, backend="tiered", tier=tier,
                                   **kwargs)
    result = platform.run()
    return platform, result


class TestTieredEquivalence:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", program_names())
    def test_identical_observables(self, name, level):
        program = translate(build(name), level=level).program
        interp = _run(program, "interp").observables()
        platform, tiered = _tiered(program)
        assert tiered.observables() == interp, (name, level)
        stats = platform._compiler.tier_stats()
        assert stats["promoted_python"] > 0, (name, level)

    @pytest.mark.parametrize("level", (0, 2))
    @pytest.mark.parametrize("name", ("gcd", "crc32"))
    def test_multicore_lockstep_identical(self, name, level):
        """Every core of a tiered/interp lockstep SoC reports the same
        observables as its single-core run — promotion points under
        1-cycle lockstep quanta differ from the single-core schedule,
        which must not leak into any observable."""
        program = translate(build(name), level=level).program
        singles = {
            backend: _run(program, backend, tier=FAST).observables()
            for backend in ("interp", "tiered")}
        mix = ("tiered", "interp")
        multi = MultiCoreSoC(program, cores=2, backends=mix, tier=FAST).run()
        for index, backend in enumerate(mix):
            assert (multi.per_core[index].observables()
                    == singles[backend]), (name, level, index)

    def test_run_slice_lockstep_quanta(self):
        """Driving tiered in 1-cycle quanta (the multi-core scheduling
        pattern) must not change observables."""
        program = translate(build("gcd"), level=2).program
        interp = _run(program, "interp").observables()
        platform = PrototypingPlatform(program, backend="tiered", tier=FAST)
        compiler = PacketCompiler(platform.core, backend="tiered", tier=FAST)
        exit_device = platform.bus.device("exit")
        while not platform.core.halted and not exit_device.exited:
            compiler.run_slice(platform.core.cycles + 1)
        platform.sync.flush()
        assert platform.collect_result().observables() == interp

    def test_identical_under_sync_rates(self):
        program = translate(build("gcd"), level=2).program
        for sync_rate in (0.25, 1.5, 4.0):
            interp = _run(program, "interp",
                          sync_rate=sync_rate).observables()
            _platform, tiered = _tiered(program, sync_rate=sync_rate)
            assert tiered.observables() == interp, sync_rate


class TestTierLadder:
    def test_regions_climb_the_ladder(self):
        """Hot entries promote to the Python tier; the stats profile
        names the rung every entry ended on."""
        program = translate(build("gcd"), level=2).program
        platform, _result = _tiered(program)
        stats = platform._compiler.tier_stats()
        tiers = {info["tier"] for info in stats["regions"].values()}
        assert "interp" in tiers  # cold entries stay interpreted
        assert stats["promoted_python"] >= 1
        for info in stats["regions"].values():
            assert info["executions"] >= 1
        assert set(stats) == {"regions", "promoted_python",
                              "promoted_native", "demoted", "bails"}

    @needs_toolchain
    def test_hot_regions_reach_native_superblocks(self):
        program = translate(build("gcd"), level=2).program
        platform, _result = _tiered(program)
        stats = platform._compiler.tier_stats()
        assert stats["promoted_native"] >= 1
        assert any(info["tier"] == "native"
                   for info in stats["regions"].values())

    @needs_toolchain
    def test_bailing_region_demotes_back_to_python(self):
        """The pre-existing native bail switch is a ladder rung: a
        region that keeps bailing after its native promotion drops back
        to the Python tier, observables unchanged across both swaps."""
        tier = TierConfig(promote_python=1, promote_native=2,
                          demote_bails=2)
        program = translate(build("uart_hello"), level=1).program
        interp = _run(program, "interp").observables()
        platform, tiered = _tiered(program, tier=tier)
        assert tiered.observables() == interp
        stats = platform._compiler.tier_stats()
        assert stats["demoted"] >= 1
        assert sum(stats["bails"].values()) >= 2

    def test_without_native_ladder_tops_out_at_python(self, monkeypatch):
        """REPRO_NATIVE=0: promotion past the Python tier is declined
        and entries keep running there — same observables, and the
        native attach is attempted only once."""
        monkeypatch.setenv("REPRO_NATIVE", "0")
        program = translate(build("gcd"), level=1).program
        interp = _run(program, "interp").observables()
        platform, tiered = _tiered(program)
        compiler = platform._compiler
        assert tiered.observables() == interp
        assert compiler.native_context is None
        assert compiler.tier_stats()["promoted_native"] == 0

    def test_pickled_program_promotes_from_shipped_regions(self):
        """A precompiled program ships its region sources (and the
        superblock module plan), so a tiered worker promotes without
        re-generating anything."""
        program = translate(build("gcd"), level=2).program
        precompile_program(program, backend="tiered", tier=FAST)
        parent = _run(program, "tiered", tier=FAST).observables()
        clone = pickle.loads(pickle.dumps(program))
        platform, tiered = _tiered(clone)
        assert tiered.observables() == parent
        assert platform._compiler.regions_generated == 0
        assert platform._compiler.regions_from_cache > 0

    def test_sharded_tiered_shard_matches_serial(self):
        from repro.eval.sharded import ShardedRunner, ShardSpec

        program = translate(build("gcd"), level=1).program
        serial = _run(program, "tiered", tier=FAST).observables()
        runner = ShardedRunner(jobs=1)
        spec = ShardSpec(program="gcd", level=1, backend="tiered",
                         tier=FAST)
        outcome = runner.run([spec])[0]
        assert outcome.result.observables() == serial

    def test_fuzz_oracle_covers_tiered(self):
        from repro.fuzz import FuzzConfig, generate
        from repro.fuzz.oracle import check_generated

        config = FuzzConfig(levels=(1, 2), backends=("interp", "tiered"),
                            cores=2)
        verdict = check_generated(generate(42, 0), config)
        assert verdict.ok, verdict.summary()


class TestTierKnobs:
    def test_invalid_thresholds_name_the_knobs(self):
        cases = (dict(promote_python=0),
                 dict(promote_python=8, promote_native=4),
                 dict(demote_bails=0))
        for kwargs in cases:
            with pytest.raises(SimulationError) as excinfo:
                TierConfig(**kwargs)
            message = str(excinfo.value)
            for knob in ENV_KNOBS:
                assert knob in message, kwargs

    def test_env_knobs_are_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_PROMOTE_PYTHON", "1")
        monkeypatch.setenv("REPRO_TIER_PROMOTE_NATIVE", "3")
        monkeypatch.setenv("REPRO_TIER_DEMOTE_BAILS", "7")
        assert TierConfig.from_env() == TierConfig(
            promote_python=1, promote_native=3, demote_bails=7)
        # the compiler resolves the environment when no explicit
        # TierConfig rides in through the platform
        program = translate(build("gcd"), level=0).program
        platform = PrototypingPlatform(program, backend="tiered")
        compiler = PacketCompiler(platform.core, backend="tiered")
        assert compiler.tier == TierConfig(
            promote_python=1, promote_native=3, demote_bails=7)

    def test_unknown_env_knob_is_a_hard_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_PROMOTE_PYTHN", "2")  # typo
        with pytest.raises(SimulationError) as excinfo:
            TierConfig.from_env()
        message = str(excinfo.value)
        assert "REPRO_TIER_PROMOTE_PYTHN" in message
        for knob in ENV_KNOBS:
            assert knob in message

    def test_malformed_env_value_is_a_hard_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_PROMOTE_NATIVE", "lots")
        with pytest.raises(SimulationError, match="expected an integer"):
            TierConfig.from_env()

    def test_explicit_config_shadows_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_PROMOTE_PYTHN", "2")  # would raise
        program = translate(build("gcd"), level=0).program
        platform = PrototypingPlatform(program, backend="tiered", tier=FAST)
        compiler = PacketCompiler(platform.core, backend="tiered", tier=FAST)
        assert compiler.tier is FAST
