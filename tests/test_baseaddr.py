"""Base-address analysis tests (Fig. 1's "finding base addresses")."""

from repro.arch.model import MemoryMap
from repro.isa.tricore.assembler import assemble
from repro.objfile.elf import SymbolKind
from repro.translator.baseaddr import Region, analyze
from repro.translator.blocks import build_cfg
from repro.translator.decoder import decode_object


def _analyze(source: str):
    obj = assemble(source)
    cfg = build_cfg(decode_object(obj), obj)
    funcs = {s.addr for s in obj.symbols.values()
             if s.kind == SymbolKind.FUNC}
    return analyze(cfg, MemoryMap(), funcs), obj


def _regions(accesses):
    return sorted((addr, idx, cls.region.value, cls.const_addr)
                  for (addr, idx), cls in accesses.items())


class TestConstantClassification:
    def test_la_data_access_is_const_data(self):
        accesses, _ = _analyze("""
        _start:
            la a2, buf
            ld.w d1, [a2]4
            halt
            .data
        buf:
            .word 1, 2
        """)
        (cls,) = accesses.values()
        assert cls.region is Region.DATA
        assert cls.const_addr == 0xD000_0004

    def test_io_access_detected(self):
        accesses, _ = _analyze("""
        _start:
            la a2, 0xF0000020
            li d1, 3
            st.w [a2], d1
            halt
        """)
        (cls,) = accesses.values()
        assert cls.region is Region.IO
        assert cls.const_addr == 0xF000_0020

    def test_offset_folded_into_const(self):
        accesses, _ = _analyze("""
        _start:
            la a2, 0xF0000000
            ld.w d1, [a2]0x10
            halt
        """)
        (cls,) = accesses.values()
        assert cls.const_addr == 0xF000_0010


class TestRegionLattice:
    def test_array_index_stays_in_region(self):
        # base + unknown index: region known, constant not
        accesses, _ = _analyze("""
        _start:
            la a2, buf
            mov.d d1, a2
            add d1, d1, d7      ; d7 unknown
            mov.a a3, d1
            ld.w d2, [a3]
            halt
            .data
        buf:
            .space 64
        """)
        (cls,) = accesses.values()
        assert cls.region is Region.DATA
        assert cls.const_addr is None

    def test_loaded_pointer_is_unknown(self):
        accesses, _ = _analyze("""
        _start:
            la a2, ptr
            ld.a a3, [a2]
            ld.w d1, [a3]
            halt
            .data
        ptr:
            .word 0xD0000010
        """)
        values = {cls.region for cls in accesses.values()}
        assert Region.UNKNOWN in values

    def test_small_constant_not_a_region(self):
        accesses, _ = _analyze("""
        _start:
            mov d1, 64
            mov.a a2, d1
            ld.w d2, [a2]
            halt
        """)
        (cls,) = accesses.values()
        assert cls.region is Region.UNKNOWN


class TestDataflow:
    def test_constant_survives_straight_line_blocks(self):
        accesses, obj = _analyze("""
        _start:
            la a2, buf
            jeq d1, d2, other
            nop
        other:
            ld.w d3, [a2]
            halt
            .data
        buf:
            .word 5
        """)
        (cls,) = [c for c in accesses.values()]
        assert cls.region is Region.DATA
        assert cls.const_addr == 0xD000_0000

    def test_call_clobbers_state(self):
        accesses, _ = _analyze("""
        _start:
            la a2, buf
            call fn
            ld.w d1, [a2]
            halt
        fn:
            ret
            .data
        buf:
            .word 5
        """)
        (cls,) = accesses.values()
        assert cls.region is Region.UNKNOWN

    def test_merge_of_two_constants_degrades(self):
        accesses, _ = _analyze("""
        _start:
            jeq d1, d2, second
            la a2, buf
            j use
        second:
            la a2, buf + 8
        use:
            ld.w d3, [a2]
            halt
            .data
        buf:
            .space 16
        """)
        use_access = [cls for cls in accesses.values()][0]
        assert use_access.region is Region.DATA
        assert use_access.const_addr is None

    def test_merge_of_same_constant_survives(self):
        accesses, _ = _analyze("""
        _start:
            la a2, buf
            jeq d1, d2, second
            nop
        second:
            ld.w d3, [a2]
            halt
            .data
        buf:
            .space 16
        """)
        (cls,) = accesses.values()
        assert cls.const_addr == 0xD000_0000
