"""Differential lockdown of the shared-device SoC and contention model.

Two contracts coexist on the shared-capable :class:`MultiCoreSoC`:

* **Non-sharing programs** never touch the shared segment, so the PR-2
  contract is preserved bit for bit: every core's observables equal the
  same program run alone on a single-core platform, and no contention
  is ever recorded.
* **Sharing programs** (mailbox, barrier) contend, so single-core
  equality no longer applies; their contract is *backend independence*:
  because every shared access executes interpreter-stepped while its
  core sits at the global minimum cycle, the shared-device interleaving
  — mailbox contents, arbitration winners, contention stalls, the
  cycle-stamped shared trace — is identical across interp/compiled and
  mixed (in either order) backend assignments, and across repeated
  runs.

The file also carries the robustness-fix regressions that ride along
with the shared-device work: the sync-device flush residue, the
lockstep scheduler's livelock/max-cycles guards, the zero-cycle
reference deviation, and ``measure_program``'s cross-core equality
check.
"""

import pytest

from repro.errors import SimulationError
from repro.programs.registry import (
    build,
    expected_shared_exits,
    shared_program_names,
)
from repro.refsim.iss import RunResult
from repro.translator.driver import translate
from repro.vliw.multicore import MultiCoreSoC
from repro.vliw.platform import PrototypingPlatform

LEVEL = 2


def _mixes(n: int) -> list[tuple[str, ...]]:
    """Homogeneous and mixed assignments, the mix in both rotations."""
    return [
        ("interp",) * n,
        ("compiled",) * n,
        tuple("interp" if i % 2 == 0 else "compiled" for i in range(n)),
        tuple("compiled" if i % 2 == 0 else "interp" for i in range(n)),
    ]


def _trace_tuples(accesses) -> list[tuple]:
    return [(a.cycle, a.kind, a.addr, a.value, a.size) for a in accesses]


@pytest.fixture(scope="module")
def translated():
    cache = {}

    def get(name, level=LEVEL):
        key = (name, level)
        if key not in cache:
            cache[key] = translate(build(name), level=level).program
        return cache[key]

    return get


class TestNonSharingStaysBitIdentical:
    """The shared-capable SoC must not perturb partition-only traffic.

    (Full program x level x mix coverage lives in
    ``test_multicore_differential.py``; these tests add the
    contention-specific assertions on top.)
    """

    @pytest.mark.parametrize("name", ("gcd", "uart_hello", "timer_probe"))
    def test_no_contention_and_single_core_equality(self, name, translated):
        program = translated(name)
        single = {backend: PrototypingPlatform(
                      program, backend=backend).run().observables()
                  for backend in ("interp", "compiled")}
        for mix in _mixes(2):
            multi = MultiCoreSoC(program, cores=2, backends=mix).run()
            for index, backend in enumerate(mix):
                result = multi.per_core[index]
                assert result.observables() == single[backend], (name, mix)
                assert result.core_stats.contention_stall_cycles == 0
            assert multi.contention_conflicts == 0
            assert not any(a.kind == "c" for a in multi.bus_trace)
            assert multi.shared_trace() == []


class TestSharedWorkloads:
    @pytest.mark.parametrize("cores", (2, 3))
    @pytest.mark.parametrize("name", shared_program_names())
    def test_exit_codes_match_protocol_prediction(self, name, cores,
                                                  translated):
        program = translated(name)
        multi = MultiCoreSoC(program, cores=cores,
                             backends="interp").run()
        exits = [r.exit_code for r in multi.per_core]
        assert exits == expected_shared_exits(name, cores)
        assert all(r.halted or r.exit_code is not None
                   for r in multi.per_core)

    @pytest.mark.parametrize("name", shared_program_names())
    def test_backend_mixes_agree_bit_for_bit(self, name, translated):
        """Observables, shared-segment trace and contention stalls are
        identical under interp, compiled and mixed cores — in either
        mix order."""
        program = translated(name)
        reference = None
        for mix in _mixes(2):
            multi = MultiCoreSoC(program, cores=2, backends=mix).run()
            snapshot = (multi.observables(),
                        _trace_tuples(multi.shared_trace()),
                        multi.contention_stall_cycles,
                        multi.contention_conflicts)
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, (name, mix)

    @pytest.mark.parametrize("level", (0, 3))
    def test_backend_independence_across_levels(self, level, translated):
        program = translated("mbox_pingpong", level)
        runs = [MultiCoreSoC(program, cores=2, backends=mix).run()
                for mix in (("interp", "interp"), ("compiled", "interp"))]
        assert runs[0].observables() == runs[1].observables()
        assert (_trace_tuples(runs[0].shared_trace())
                == _trace_tuples(runs[1].shared_trace()))

    def test_repeated_runs_are_deterministic(self, translated):
        program = translated("mbox_prodcons")
        first = MultiCoreSoC(program, cores=2,
                             backends=("compiled", "interp")).run()
        second = MultiCoreSoC(program, cores=2,
                              backends=("compiled", "interp")).run()
        assert _trace_tuples(first.bus_trace) == _trace_tuples(
            second.bus_trace)
        assert first.grants == second.grants
        assert first.contention_conflicts == second.contention_conflicts

    def test_contention_is_recorded_consistently(self, translated):
        """Nonzero stalls, with markers, stats and arbiter agreeing."""
        program = translated("mbox_prodcons")
        soc = MultiCoreSoC(program, cores=2, backends="interp")
        multi = soc.run()
        markers = [a for a in multi.bus_trace if a.kind == "c"]
        assert markers, "producer/consumer run recorded no contention"
        assert multi.contention_conflicts == len(markers)
        per_core = multi.contention_stall_cycles
        assert sum(per_core) > 0
        assert sum(per_core) == sum(a.size for a in markers)
        for marker in markers:
            assert marker.size == soc.arbiter.contention_stall
            assert per_core[marker.value] > 0
        # markers also appear in the losing core's own trace
        for index, result in enumerate(multi.per_core):
            own = [a for a in result.bus_trace if a.kind == "c"]
            assert sum(a.size for a in own) == per_core[index]

    def test_mailbox_device_accounting(self, translated):
        program = translated("mbox_prodcons")
        soc = MultiCoreSoC(program, cores=2, backends="interp")
        soc.run()
        assert soc.mailbox.pushes == 16
        assert soc.mailbox.pops == 16
        assert soc.mailbox.overruns == 0
        assert not soc.mailbox.full(0, 1)

    def test_shared_programs_degrade_to_single_core(self, translated):
        """On the single-core platform the core-id device reports
        (0, 1), so shared workloads exit 0 instead of deadlocking."""
        for name in shared_program_names():
            result = PrototypingPlatform(translated(name)).run()
            assert result.exit_code == 0


class TestSchedulerGuards:
    def test_granted_core_without_progress_raises(self, translated):
        """A granted core that neither advances nor finishes must not
        spin the scheduler forever."""
        soc = MultiCoreSoC(translated("gcd"), cores=2, backends="interp")
        soc.slots[0].advance = lambda until, max_cycles: None
        with pytest.raises(SimulationError, match="livelock"):
            soc.run()

    def test_scheduler_level_max_cycles(self, translated):
        """The round loop itself enforces the cycle budget even when a
        core advances without ever finishing."""
        soc = MultiCoreSoC(translated("gcd"), cores=2, backends="interp")

        def stall_forever(slot):
            def advance(until, max_cycles):
                slot.core._stall_cycles += 1000
            return advance

        for slot in soc.slots:
            slot.advance = stall_forever(slot)
        with pytest.raises(SimulationError, match="cycle limit"):
            soc.run(max_cycles=10_000)

    def test_cycle_budget_cuts_off_polling_loops(self, translated):
        """Mailbox polling spins instead of blocking, so the cycle
        budget is the only thing standing between a protocol bug and
        an infinite run — it must fire even mid-poll."""
        program = translated("mbox_pingpong")
        soc = MultiCoreSoC(program, cores=2, backends="interp")
        with pytest.raises(SimulationError, match="cycle limit"):
            soc.run(max_cycles=50)


class TestSyncDeviceFlushResidue:
    """``flush()`` must not leave fractional-accumulator residue."""

    def test_accumulator_cleared_on_flush(self):
        from repro.vliw.syncdev import REG_CMD, SyncDevice

        dev = SyncDevice(rate=0.75)
        dev.write(REG_CMD, 5)
        dev.tick()  # accumulator now holds 0.75
        assert dev._accumulator != 0.0
        dev.flush()
        assert dev._accumulator == 0.0
        assert dev.emulated_cycles == 5

    def test_reused_device_matches_fresh_device(self):
        from repro.vliw.syncdev import REG_CMD, SyncDevice

        reused = SyncDevice(rate=0.75)
        reused.write(REG_CMD, 7)
        for _ in range(3):
            reused.tick()
        reused.flush()
        base = reused.emulated_cycles

        fresh = SyncDevice(rate=0.75)
        for dev in (reused, fresh):
            dev.write(REG_CMD, 9)
            dev.tick_n(20)
        assert reused.emulated_cycles - base == fresh.emulated_cycles

    def test_integer_rate_fast_path_after_flush(self):
        from repro.vliw.syncdev import REG_CMD, SyncDevice

        dev = SyncDevice(rate=2.0)
        dev.write(REG_CMD, 3)
        dev.tick()
        dev.flush()
        assert dev._accumulator == 0.0
        dev.write(REG_CMD, 8)
        dev.tick_n(4)  # integer fast path: 4 ticks x rate 2 covers 8
        assert dev.emulated_cycles == 11


class TestDeviationDegenerateReference:
    def test_zero_cycle_reference_reports_zero_deviation(self):
        from repro.eval.runner import LevelMeasurement, ProgramMeasurement
        from repro.vliw.platform import PlatformResult

        reference = RunResult(instructions=0, cycles=0, regs=(),
                              data_image=b"", uart_output=b"",
                              bus_trace=[], exit_code=0, halted=True)
        result = PlatformResult(target_cycles=0, packets_issued=0,
                                emulated_cycles=4, source_instructions=0,
                                data_image=b"", uart_output=b"",
                                bus_trace=[], exit_code=0, halted=True)
        measurement = ProgramMeasurement(name="degenerate",
                                         reference=reference)
        measurement.levels[1] = LevelMeasurement(level=1, result=result,
                                                 translation=None)
        assert measurement.deviation(1) == 0.0


class TestMeasureProgramCrossCoreCheck:
    def test_non_sharing_program_passes_the_check(self):
        from repro.eval.runner import measure_program

        measurement = measure_program("gcd", levels=(1,), cores=2)
        assert measurement.levels[1].result.exit_code is not None

    def test_diverging_cores_raise_without_shared_flag(self):
        from repro.eval.runner import measure_program

        with pytest.raises(SimulationError, match="differential contract"):
            measure_program("mbox_pingpong", levels=(1,), cores=2)

    def test_shared_flag_skips_the_check_and_records_core0(self):
        from repro.eval.runner import measure_program

        measurement = measure_program("mbox_pingpong", levels=(1,),
                                      cores=2, shared=True)
        assert measurement.levels[1].result.exit_code == 17


class TestConstructionLimits:
    def test_core_count_bounded_by_shared_map(self, translated):
        from repro.vliw.multicore import MAX_CORES

        with pytest.raises(SimulationError, match="limit"):
            MultiCoreSoC(translated("gcd"), cores=MAX_CORES + 1)
