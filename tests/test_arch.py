"""Tests for the architecture description model and its XML form."""

import pytest

from repro.arch.model import (
    BranchModel,
    ICacheModel,
    MemoryMap,
    PipelineModel,
    SourceArch,
    TargetArch,
    default_source_arch,
    default_target_arch,
)
from repro.arch.xmlio import (
    source_arch_from_xml,
    source_arch_to_xml,
    target_arch_from_xml,
    target_arch_to_xml,
)
from repro.errors import ArchitectureError


class TestMemoryMap:
    def test_defaults_valid(self):
        MemoryMap().validate()

    def test_region_predicates(self):
        mem = MemoryMap()
        assert mem.is_code(mem.code_base)
        assert mem.is_data(mem.data_base + 4)
        assert mem.is_io(mem.io_base)
        assert not mem.is_data(mem.io_base)

    def test_stack_top_inside_data(self):
        mem = MemoryMap()
        assert mem.is_data(mem.stack_top)
        assert mem.stack_top % 16 == 0

    def test_overlap_rejected(self):
        mem = MemoryMap(code_base=0x1000, code_size=0x2000,
                        data_base=0x2000, data_size=0x1000)
        with pytest.raises(ArchitectureError):
            mem.validate()

    def test_unaligned_base_rejected(self):
        with pytest.raises(ArchitectureError):
            MemoryMap(code_base=0x1002).validate()


class TestBranchModel:
    def test_min_conditional(self):
        model = BranchModel(taken_correct=2, not_taken_correct=1,
                            mispredict=4)
        assert model.min_conditional == 1

    def test_conditional_cost_matrix(self):
        model = BranchModel(taken_correct=2, not_taken_correct=1,
                            mispredict=4)
        assert model.conditional_cost(True, True) == 2
        assert model.conditional_cost(False, False) == 1
        assert model.conditional_cost(True, False) == 4
        assert model.conditional_cost(False, True) == 4

    def test_loop_cost(self):
        model = BranchModel(loop_taken=1, loop_exit=4)
        assert model.loop_cost(True) == 1
        assert model.loop_cost(False) == 4

    def test_zero_cost_rejected(self):
        with pytest.raises(ArchitectureError):
            BranchModel(taken_correct=0).validate()


class TestICacheModel:
    def test_size(self):
        model = ICacheModel(ways=2, sets=32, line_size=32)
        assert model.size == 2048

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ArchitectureError):
            ICacheModel(sets=33).validate()

    def test_small_line_rejected(self):
        with pytest.raises(ArchitectureError):
            ICacheModel(line_size=2).validate()


class TestSourceArch:
    def test_default_valid(self):
        default_source_arch()

    def test_with_icache(self):
        arch = default_source_arch().with_icache(line_size=16, sets=64)
        assert arch.icache.line_size == 16
        assert arch.icache.sets == 64

    def test_bad_clock_rejected(self):
        with pytest.raises(ArchitectureError):
            SourceArch(clock_hz=0).validate()


class TestTargetArch:
    def test_default_valid(self):
        default_target_arch()

    def test_register_bounds(self):
        with pytest.raises(ArchitectureError):
            TargetArch(registers_per_side=4).validate()

    def test_pipeline_validation(self):
        with pytest.raises(ArchitectureError):
            PipelineModel(load_use_stall=-1).validate()


class TestXmlRoundtrip:
    def test_source_roundtrip_defaults(self):
        arch = default_source_arch()
        text = source_arch_to_xml(arch)
        assert source_arch_from_xml(text) == arch

    def test_source_roundtrip_custom(self):
        arch = SourceArch(
            name="custom",
            clock_hz=100_000_000,
            pipeline=PipelineModel(dual_issue=False, load_use_stall=2,
                                   mul_result_latency=3, io_access_cycles=5),
            branch=BranchModel(taken_correct=3, mispredict=6),
            icache=ICacheModel(ways=1, sets=64, line_size=16,
                               miss_penalty=20),
        ).validate()
        assert source_arch_from_xml(source_arch_to_xml(arch)) == arch

    def test_target_roundtrip(self):
        arch = default_target_arch()
        assert target_arch_from_xml(target_arch_to_xml(arch)) == arch

    def test_partial_document_uses_defaults(self):
        arch = source_arch_from_xml('<architecture name="mini"/>')
        assert arch.name == "mini"
        assert arch.icache == default_source_arch().icache

    def test_bad_root_rejected(self):
        with pytest.raises(ArchitectureError):
            source_arch_from_xml("<nonsense/>")

    def test_bad_int_rejected(self):
        with pytest.raises(ArchitectureError):
            source_arch_from_xml(
                '<architecture><clocks source_hz="fast"/></architecture>')

    def test_bad_bool_rejected(self):
        with pytest.raises(ArchitectureError):
            source_arch_from_xml(
                '<architecture><pipeline dual_issue="maybe"/></architecture>')

    def test_malformed_xml_rejected(self):
        with pytest.raises(ArchitectureError):
            source_arch_from_xml("<architecture")

    def test_hex_attributes_accepted(self):
        arch = source_arch_from_xml(
            '<architecture><memory code_base="0x80000000"/></architecture>')
        assert arch.memory.code_base == 0x8000_0000
