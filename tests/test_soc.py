"""SoC bus and peripheral tests."""

import pytest

from repro.errors import BusError
from repro.soc.bus import BusAccess, IoMap, SocBus, standard_bus
from repro.soc.devices import CycleTimer, ExitDevice, Ram, Rom, Uart


class TestBusDecode:
    def test_attach_and_read(self):
        bus = SocBus()
        ram = Ram(64)
        bus.attach(0x100, ram, "ram")
        bus.write(0x104, 0xDEAD, 4, cycle=1)
        assert bus.read(0x104, 4, cycle=2) == 0xDEAD

    def test_overlap_rejected(self):
        bus = SocBus()
        bus.attach(0x0, Ram(64))
        with pytest.raises(BusError):
            bus.attach(0x20, Ram(64))

    def test_unmapped_access(self):
        bus = SocBus()
        with pytest.raises(BusError):
            bus.read(0x1234, 4, 0)

    def test_device_lookup(self):
        bus = standard_bus()
        assert isinstance(bus.device("uart"), Uart)
        with pytest.raises(BusError):
            bus.device("dma")


class TestMonitor:
    def test_trace_records_everything(self):
        bus = standard_bus()
        bus.write(IoMap().uart, 65, 4, cycle=10)
        bus.read(IoMap().timer, 4, cycle=12)
        trace = bus.monitor.transfers()
        assert trace[0] == BusAccess(10, "w", 0, 65, 4)
        assert trace[1].kind == "r"
        assert trace[1].cycle == 12

    def test_same_transfer_ignores_cycle(self):
        a = BusAccess(1, "w", 0, 65, 4)
        b = BusAccess(99, "w", 0, 65, 4)
        assert a.same_transfer(b)
        assert not a.same_transfer(BusAccess(1, "w", 0, 66, 4))

    def test_clear(self):
        bus = standard_bus()
        bus.write(0, 1, 4, 0)
        bus.monitor.clear()
        assert bus.monitor.transfers() == []


class TestRam:
    def test_sizes(self):
        ram = Ram(16)
        ram.write(0, 0x11223344, 4, 0)
        assert ram.read(0, 1, 0) == 0x44
        assert ram.read(1, 2, 0) == 0x2233

    def test_bounds(self):
        ram = Ram(8)
        with pytest.raises(BusError):
            ram.read(6, 4, 0)

    def test_bad_size(self):
        ram = Ram(8)
        with pytest.raises(BusError):
            ram.read(0, 3, 0)

    def test_load_and_image(self):
        ram = Ram(8)
        ram.load(2, b"ab")
        assert ram.image()[2:4] == b"ab"

    def test_rom_rejects_writes(self):
        rom = Rom(8)
        with pytest.raises(BusError):
            rom.write(0, 1, 4, 0)


class TestUart:
    def test_transmit_records_cycles(self):
        uart = Uart()
        uart.write(0, ord("A"), 4, cycle=5)
        uart.write(0, ord("B"), 4, cycle=9)
        assert uart.output == b"AB"
        assert uart.transmitted == [(5, 65), (9, 66)]

    def test_receive_queue(self):
        uart = Uart()
        uart.feed(b"xy")
        assert uart.read(4, 4, 0) & 0x2  # rx available
        assert uart.read(0, 4, 0) == ord("x")
        assert uart.read(0, 4, 0) == ord("y")
        assert uart.read(0, 4, 0) == 0
        assert uart.read(4, 4, 0) == 0x1  # only tx ready

    def test_bad_register(self):
        with pytest.raises(BusError):
            Uart().read(2, 4, 0)


class TestTimer:
    def test_returns_current_cycle(self):
        timer = CycleTimer()
        assert timer.read(0, 4, cycle=1234) == 1234

    def test_capture(self):
        timer = CycleTimer()
        timer.write(4, 0, 4, cycle=77)
        assert timer.read(4, 4, cycle=999) == 77

    def test_bad_register(self):
        with pytest.raises(BusError):
            CycleTimer().write(0, 1, 4, 0)


class TestExitDevice:
    def test_exit_latches(self):
        dev = ExitDevice()
        assert not dev.exited
        dev.write(0, 42, 4, cycle=100)
        assert dev.exited
        assert dev.code == 42
        assert dev.exit_cycle == 100
        assert dev.read(0, 4, 0) == 42

    def test_bad_offset(self):
        with pytest.raises(BusError):
            ExitDevice().write(4, 0, 4, 0)


class TestStandardBus:
    def test_layout(self):
        bus = standard_bus()
        io = IoMap()
        bus.write(io.exit, 7, 4, 0)
        assert bus.device("exit").code == 7
        bus.write(io.scratch + 4, 0xAB, 4, 0)
        assert bus.read(io.scratch + 4, 4, 0) == 0xAB
