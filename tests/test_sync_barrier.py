"""Unit lockdown of the pluggable lockstep synchronization barriers.

The barrier layer extracted from ``MultiCoreSoC.run()`` must preserve
the PR-3 round-level safety contracts in *both* implementations — the
serial in-process :class:`LockstepBarrier` and the parallel
:class:`ProcessBarrier` — and reproduce the historical scheduling
decisions exactly: frontier rounds, rotating grant priority, the
round-level ``max_cycles`` check and the no-progress raise.  These
tests drive the round engine with scripted fake members so every
contract is checked on both implementations without real cores or
worker processes (the cross-process end-to-end equivalents live in
``test_cluster_differential.py``).
"""

import pytest

from repro.errors import SimulationError
from repro.vliw.sync import LockstepBarrier, ProcessBarrier, SyncBarrier


class FakeMember:
    """Scripted member: runs to the horizon, finishes at *work* cycles."""

    def __init__(self, work, name="m", order=None, step=None):
        self.work = work
        self.name = name
        self.cycles = 0
        self.finished = False
        self.grants = 0
        self.order = order if order is not None else []
        self.step = step  # cap on per-grant progress (None = to horizon)

    def advance(self, until, max_cycles):
        self.order.append((self.name, self.cycles, until))
        target = until if self.step is None else min(until,
                                                     self.cycles + self.step)
        # deliberately no max_cycles check here: the fakes leave limit
        # enforcement entirely to the round engine under test
        self.cycles = target
        if self.cycles >= self.work:
            self.finished = True

    # the async protocol, so the same fakes drive ProcessBarrier
    def post_advance(self, until, max_cycles):
        self._pending = (until, max_cycles)

    def wait_advance(self):
        until, max_cycles = self._pending
        self.advance(until, max_cycles)


class StuckMember(FakeMember):
    """Granted but never makes progress (a livelocked core)."""

    def advance(self, until, max_cycles):
        self.order.append((self.name, self.cycles, until))


BARRIERS = (LockstepBarrier, ProcessBarrier)


class TestRoundEngine:
    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_members_run_to_completion(self, barrier_cls):
        members = [FakeMember(10, "a"), FakeMember(7, "b")]
        barrier = barrier_cls(members)
        barrier.run_until(None, 1000)
        assert all(m.finished for m in members)
        assert members[0].cycles == 10
        assert members[1].cycles == 7
        assert barrier.finished
        assert barrier.frontier == 10  # max over members once all halted

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_rotating_grant_priority(self, barrier_cls):
        """Round with base cycle b grants member (b % n) first."""
        order = []
        members = [FakeMember(3, name, order) for name in ("a", "b", "c")]
        barrier_cls(members).run_until(None, 1000)
        firsts = [entry[0] for entry in order if entry[1] == entry[2] - 1]
        # base 0 -> a first; base 1 -> b first; base 2 -> c first
        assert [order[0][0], order[3][0], order[6][0]] == ["a", "b", "c"]
        assert firsts  # every grant advanced exactly one cycle

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_frontier_rounds_skip_members_ahead(self, barrier_cls):
        """A member past the horizon is not granted (lockstep skew)."""
        order = []
        fast = FakeMember(8, "fast", order)
        slow = FakeMember(8, "slow", order, step=1)
        fast.step = 4  # overshoots each grant by advancing 4 cycles
        barrier = barrier_cls([fast, slow])

        def jump(until, max_cycles, _orig=FakeMember.advance):
            _orig(fast, min(until + 3, 8), max_cycles)

        fast.advance = jump
        barrier.run_until(None, 1000)
        grants_while_ahead = [
            entry for entry in order
            if entry[0] == "fast" and entry[1] >= entry[2]]
        assert not grants_while_ahead
        assert fast.grants < slow.grants

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_quantum_widens_the_window(self, barrier_cls):
        order = []
        members = [FakeMember(32, "a", order)]
        barrier = barrier_cls(members, quantum=8)
        barrier.run_until(None, 1000)
        assert barrier.rounds == 4
        assert [entry[2] for entry in order] == [8, 16, 24, 32]

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_run_until_cuts_at_window_boundary(self, barrier_cls):
        members = [FakeMember(100, "a"), FakeMember(100, "b")]
        barrier = barrier_cls(members)
        barrier.run_until(10, 1000)
        assert {m.cycles for m in members} == {10}
        assert not barrier.finished
        barrier.run_until(20, 1000)
        assert {m.cycles for m in members} == {20}

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_round_hooks_fire_in_order(self, barrier_cls):
        events = []
        members = [FakeMember(2, "a", events)]
        barrier = barrier_cls(
            members,
            on_round=lambda base: events.append(("round", base)),
            on_round_end=lambda base, horizon: events.append(
                ("end", base, horizon)))
        barrier.run_until(None, 1000)
        assert events == [
            ("round", 0), ("a", 0, 1), ("end", 0, 1),
            ("round", 1), ("a", 1, 2), ("end", 1, 2),
        ]


class TestRoundSafetyContracts:
    """PR-3 contracts, explicitly on BOTH barrier implementations."""

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_no_progress_round_raises(self, barrier_cls):
        members = [StuckMember(10, "stuck"), FakeMember(0, "done")]
        members[1].finished = True
        with pytest.raises(SimulationError, match="livelock"):
            barrier_cls(members).run_until(None, 1000)

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_partial_progress_is_progress(self, barrier_cls):
        """One stuck member does not trip the guard while another
        advances (the round as a whole made progress)."""
        stuck = StuckMember(10, "stuck")
        mover = FakeMember(5, "mover")
        barrier = barrier_cls([stuck, mover])
        with pytest.raises(SimulationError, match="livelock") as err:
            barrier.run_until(None, 1000)
        # round 1 (stuck + mover) passed thanks to the mover's progress;
        # the raise came from a later round where stuck was granted alone
        assert mover.cycles == 1
        assert barrier.rounds == 2
        assert "cycle 0" in str(err.value)

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_round_level_max_cycles(self, barrier_cls):
        """The round loop enforces the budget even when members advance
        without finishing (their own in-advance check never firing)."""
        members = [FakeMember(10**9, "a"), FakeMember(10**9, "b")]
        with pytest.raises(SimulationError, match="cycle limit"):
            barrier_cls(members).run_until(None, 50)
        assert all(m.cycles <= 50 for m in members)

    @pytest.mark.parametrize("barrier_cls", BARRIERS)
    def test_max_cycles_checked_before_granting(self, barrier_cls):
        members = [FakeMember(10, "a")]
        members[0].cycles = 50
        with pytest.raises(SimulationError, match="cycle limit"):
            barrier_cls(members).run_until(None, 50)
        assert members[0].grants == 0

    def test_validation(self):
        with pytest.raises(SimulationError, match="at least one member"):
            LockstepBarrier([])
        with pytest.raises(SimulationError, match="quantum"):
            LockstepBarrier([FakeMember(1)], quantum=0)
        with pytest.raises(NotImplementedError):
            SyncBarrier([FakeMember(1)])._advance_round([], 1, 1)


class TestMultiCoreSoCUsesTheBarrier:
    """The SoC's scheduling must actually live in the extracted layer."""

    def test_soc_owns_a_lockstep_barrier(self):
        from repro.programs.registry import build
        from repro.translator.driver import translate
        from repro.vliw.multicore import MultiCoreSoC

        program = translate(build("gcd"), level=0).program
        soc = MultiCoreSoC(program, cores=2, backends="interp")
        assert isinstance(soc.barrier, LockstepBarrier)
        assert soc.barrier.members == soc.slots
        result = soc.run()
        assert soc.barrier.rounds > 0
        assert result.grants == [slot.grants for slot in soc.slots]
        # the frontier property reflects the finished SoC
        assert soc.finished
        assert soc.frontier == max(s.core.cycles for s in soc.slots)
