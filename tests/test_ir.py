"""IR data-structure tests."""

from repro.translator.ir import (
    RES_CORR,
    RES_SYNC,
    IRInstr,
    IROp,
    TempAllocator,
    is_reserved,
    is_source_reg,
    is_temp,
    source_reg_name,
)


class TestRegisterSpaces:
    def test_source_regs(self):
        assert is_source_reg(0)
        assert is_source_reg(31)
        assert not is_source_reg(32)
        assert not is_source_reg(-1)

    def test_temps(self):
        assert is_temp(32)
        assert not is_temp(31)
        assert not is_temp(RES_SYNC)

    def test_reserved(self):
        assert is_reserved(RES_SYNC)
        assert is_reserved(RES_CORR)
        assert not is_reserved(500)

    def test_names(self):
        assert source_reg_name(0) == "d0"
        assert source_reg_name(15) == "d15"
        assert source_reg_name(16) == "a0"
        assert source_reg_name(31) == "a15"
        assert source_reg_name(40) == "t40"
        assert source_reg_name(RES_SYNC) == "Rsync"


class TestTempAllocator:
    def test_fresh_sequence(self):
        temps = TempAllocator()
        assert temps.fresh() == 32
        assert temps.fresh() == 33


class TestReadsWrites:
    def test_alu(self):
        instr = IRInstr(IROp.ADD, dst=3, a=1, b=2)
        assert instr.reads() == (1, 2)
        assert instr.writes() == (3,)

    def test_alu_imm(self):
        instr = IRInstr(IROp.ADD, dst=3, a=1, imm=5)
        assert instr.reads() == (1,)

    def test_mvk_reads_nothing(self):
        instr = IRInstr(IROp.MVK, dst=3, imm=5)
        assert instr.reads() == ()

    def test_load(self):
        instr = IRInstr(IROp.LDW, dst=3, a=17, imm=8)
        assert instr.reads() == (17,)
        assert instr.is_load()
        assert instr.is_memory()

    def test_store(self):
        instr = IRInstr(IROp.STW, a=3, b=17, imm=8)
        assert instr.reads() == (3, 17)
        assert instr.writes() == ()
        assert instr.is_store()

    def test_branch_direct(self):
        instr = IRInstr(IROp.B, imm=0x8000_0000)
        assert instr.reads() == ()
        assert instr.is_branch()

    def test_branch_indirect(self):
        instr = IRInstr(IROp.B, a=27)
        assert instr.reads() == (27,)

    def test_predicate_is_read(self):
        instr = IRInstr(IROp.ADD, dst=1, a=2, b=3, pred=40)
        assert 40 in instr.reads()
        assert instr.is_conditional()


class TestRenaming:
    def test_renamed_substitutes_everywhere(self):
        instr = IRInstr(IROp.ADD, dst=32, a=33, b=34, pred=35)
        renamed = instr.renamed({32: 40, 33: 41, 34: 42, 35: 43})
        assert renamed.dst == 40
        assert renamed.reads() == (41, 42, 43)

    def test_renamed_leaves_others(self):
        instr = IRInstr(IROp.ADD, dst=1, a=2, b=3)
        renamed = instr.renamed({32: 40})
        assert (renamed.dst, renamed.a, renamed.b) == (1, 2, 3)

    def test_renamed_is_copy(self):
        instr = IRInstr(IROp.ADD, dst=32, a=1, b=2)
        renamed = instr.renamed({32: 50})
        assert instr.dst == 32
        assert renamed is not instr


class TestStr:
    def test_renders_without_crashing(self):
        samples = [
            IRInstr(IROp.ADD, dst=1, a=2, imm=5),
            IRInstr(IROp.LDW, dst=1, a=17, imm=4),
            IRInstr(IROp.STW, a=1, b=17, imm=0),
            IRInstr(IROp.B, imm=0x8000_0010, pred=33, pred_sense=False),
            IRInstr(IROp.MVK, dst=RES_CORR, imm=0, comment="reset"),
        ]
        for instr in samples:
            assert str(instr)
