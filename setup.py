"""Setup shim for environments without the `wheel` package (offline).

`pip install -e .` requires the wheel package for PEP 660 editable
builds with this setuptools version; `python setup.py develop` works
without it and installs the same editable package.
"""

from setuptools import setup

setup()
