"""Setup shim for environments without the `wheel` package (offline).

`pip install -e .` requires the wheel package for PEP 660 editable
builds with this setuptools version; `python setup.py develop` works
without it and installs the same editable package.
"""

from setuptools import find_namespace_packages, setup

setup(
    name="repro-cabt",
    version="0.1.0",
    description=("Reproduction of 'Cycle Accurate Binary Translation for "
                 "Simulation Acceleration in Rapid Prototyping of SoCs'"),
    package_dir={"": "src"},
    # subpackages are implicit namespace packages (only repro/ has an
    # __init__.py), so plain find_packages() would miss them
    packages=find_namespace_packages(where="src", include=["repro*"]),
    # the minic sources of the benchmark corpus ship with the package;
    # programs/registry.py loads them via importlib.resources
    package_data={"repro.programs": ["src/*.mc"]},
    include_package_data=True,
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-asm = repro.cli:asm_main",
            "repro-minic = repro.cli:minic_main",
            "repro-translate = repro.cli:translate_main",
            "repro-run = repro.cli:run_main",
            "repro-fuzz = repro.cli:fuzz_main",
            "repro-experiments = repro.cli:experiments_main",
            "repro-serve = repro.cli:serve_main",
            "repro-submit = repro.cli:submit_main",
        ],
    },
)
