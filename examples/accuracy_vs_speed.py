#!/usr/bin/env python3
"""Detail levels: the paper's accuracy-vs-speed trade-off, live.

Runs one of the paper's workloads (compiled from C with minic) at every
detail level and prints the trade-off table of Section 3.2: higher
levels generate more timing machinery — costlier emulation, tighter
cycle accuracy.
"""

from repro.eval.paper_data import C6X_HZ
from repro.programs.registry import build, source
from repro.refsim.iss import CycleAccurateISS
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

PROGRAM = "dpcm"

LEVELS = {
    0: "purely functional (no cycle information)",
    1: "static cycle prediction",
    2: "static + branch-prediction correction",
    3: "static + branch prediction + instruction cache",
}


def main() -> None:
    print(f"workload: {PROGRAM}")
    print(source(PROGRAM).splitlines()[0])
    obj = build(PROGRAM)
    reference = CycleAccurateISS(obj).run()
    print(f"reference cycles: {reference.cycles} "
          f"({reference.instructions} instructions)\n")

    header = (f"{'level':>5s}  {'description':45s} {'C6x CPI':>8s} "
              f"{'MIPS':>7s} {'deviation':>10s}")
    print(header)
    print("-" * len(header))
    for level, description in LEVELS.items():
        result = translate(obj, level=level)
        run = PrototypingPlatform(result.program).run()
        assert run.exit_code == reference.exit_code
        mips = run.source_instructions / (run.target_cycles / C6X_HZ) / 1e6
        if level == 0:
            deviation = "   n/a"
        else:
            dev = (run.emulated_cycles - reference.cycles) / reference.cycles
            deviation = f"{dev:+9.2%}"
        print(f"{level:>5d}  {description:45s} {run.target_cpi:8.2f} "
              f"{mips:7.1f} {deviation:>10s}")

    print("\nhigher detail level = slower emulation, better accuracy —")
    print("exactly the trade-off of the paper's Section 3.2.")


if __name__ == "__main__":
    main()
