#!/usr/bin/env python3
"""Retargeting via the XML architecture description.

The paper's translator is processor-independent: the source core is
"usually defined in an XML file".  This example loads a modified
description — slower mispredictions, a tiny direct-mapped instruction
cache — and shows how both the reference simulator and the generated
correction code follow it, keeping the cycle accuracy intact.
"""

from repro.arch.xmlio import source_arch_from_xml, source_arch_to_xml
from repro.arch.model import default_source_arch
from repro.programs.registry import build
from repro.refsim.iss import CycleAccurateISS
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

CUSTOM_XML = """
<architecture name="tricore-harsh">
  <clocks source_hz="40000000" emulation_hz="8000000"/>
  <pipeline dual_issue="true" load_use_stall="2" mul_result_latency="3"
            io_access_cycles="4"/>
  <branch taken_correct="2" not_taken_correct="1" mispredict="6"
          unconditional="2" call="3" ret="4" loop_taken="1" loop_exit="6"/>
  <icache enabled="true" ways="1" sets="16" line_size="16"
          miss_penalty="14"/>
</architecture>
"""


def run(name: str, arch) -> None:
    obj = build(name)
    reference = CycleAccurateISS(obj, arch).run()
    result = translate(obj, level=3, source=arch)
    platform = PrototypingPlatform(result.program, source_arch=arch)
    res = platform.run()
    assert res.exit_code == reference.exit_code
    deviation = (res.emulated_cycles - reference.cycles) / reference.cycles
    print(f"  {name:8s} reference={reference.cycles:7d} cycles  "
          f"emulated={res.emulated_cycles:7d}  deviation={deviation:+.2%}  "
          f"(cache misses: {reference.cache_stats.misses})")


def main() -> None:
    default = default_source_arch()
    print("default description:")
    print(source_arch_to_xml(default))
    print()

    harsh = source_arch_from_xml(CUSTOM_XML)
    print(f"custom '{harsh.name}': mispredict={harsh.branch.mispredict} "
          f"cycles, {harsh.icache.ways}-way {harsh.icache.size}-byte "
          f"i-cache, miss={harsh.icache.miss_penalty} cycles\n")

    print("level-3 translation tracks the reference for BOTH descriptions:")
    print("default architecture:")
    for name in ("gcd", "fir"):
        run(name, default)
    print("harsh architecture:")
    for name in ("gcd", "fir"):
        run(name, harsh)


if __name__ == "__main__":
    main()
