#!/usr/bin/env python3
"""Quickstart: translate a small program and run it cycle-accurately.

Covers the whole pipeline in one page: assemble a TriCore-like source
program, run it on the reference cycle-accurate ISS (the "evaluation
board"), translate it to the C6x-like VLIW platform with cycle
annotation, execute it there, and compare functional results and cycle
counts.
"""

from repro.isa.tricore.assembler import assemble
from repro.refsim.iss import CycleAccurateISS
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

SOURCE = """
; sum of the first 100 integers, then report via the exit device
_start:
    mov d1, 0           ; accumulator
    mov d2, 100         ; counter
top:
    add d1, d1, d2
    add d2, d2, -1
    jnz d2, top
    la a2, 0xF0000020   ; exit device
    st.w [a2], d1
    halt
"""


def main() -> None:
    obj = assemble(SOURCE)
    print(f"assembled {len(obj.text().data)} bytes, "
          f"entry {obj.entry:#010x}")

    # Reference: the cycle-accurate instruction-set simulator.
    reference = CycleAccurateISS(obj).run()
    print(f"reference: exit={reference.exit_code} "
          f"instructions={reference.instructions} "
          f"cycles={reference.cycles}")

    # Cycle-accurate binary translation (detail level 2: static cycles
    # plus dynamic branch-prediction correction).
    result = translate(obj, level=2)
    print(f"translated into {result.stats.packets} execute packets "
          f"({result.stats.code_expansion:.1f}x code expansion)")

    platform = PrototypingPlatform(result.program)
    run = platform.run()
    print(f"platform:  exit={run.exit_code} "
          f"target_cycles={run.target_cycles} "
          f"emulated_cycles={run.emulated_cycles}")

    deviation = (run.emulated_cycles - reference.cycles) / reference.cycles
    print(f"cycle-count deviation vs reference: {deviation:+.2%}")
    assert run.exit_code == reference.exit_code
    print("functional results match.")


if __name__ == "__main__":
    main()
