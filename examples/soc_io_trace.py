#!/usr/bin/env python3
"""Cycle-accurate I/O: the property the whole system exists for.

Compiles a C program that writes to the UART and reads the cycle
timer, runs it on the reference core and on the translated platform,
and prints both bus traces side by side.  The transfers match in order
and data; the timestamps (in *emulated* cycles) track each other — the
attached SoC hardware cannot tell the difference.
"""

from repro.minic.compiler import compile_source
from repro.refsim.iss import CycleAccurateISS
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

SOURCE = """
int main() {
    int uart = 0xF0000000;
    int timer = 0xF0000010;
    int i;
    int t0 = __io_read(timer);
    for (i = 0; i < 5; i += 1) {
        __io_write(uart, 'A' + i);
    }
    int t1 = __io_read(timer);
    return t1 - t0;   // self-measured emulated cycles
}
"""


def main() -> None:
    obj = compile_source(SOURCE)
    reference = CycleAccurateISS(obj).run()
    translated = translate(obj, level=2)
    run = PrototypingPlatform(translated.program).run()

    print("bus traces (cycle stamps are in emulated source-clock cycles)\n")
    print(f"{'reference (board)':>32s} | {'translated (platform)':>32s}")
    print("-" * 70)
    for ref, plat in zip(reference.bus_trace, run.bus_trace):
        ref_text = f"c{ref.cycle:6d} {ref.kind} @{ref.addr:#06x} = {ref.value}"
        plat_text = f"c{plat.cycle:6d} {plat.kind} @{plat.addr:#06x} = {plat.value}"
        print(f"{ref_text:>32s} | {plat_text:>32s}")

    print(f"\nUART output:   reference={reference.uart_output!r} "
          f"platform={run.uart_output!r}")
    print(f"self-measured: reference={reference.exit_code} cycles, "
          f"platform={run.exit_code} cycles")
    assert run.uart_output == reference.uart_output
    # Timer reads and the exit write carry *measured emulated time*,
    # which tracks but need not equal the reference; the UART transfers
    # must match exactly.
    seq_ref = [(a.kind, a.addr, a.value) for a in reference.bus_trace
               if a.addr < 0x10]
    seq_plat = [(a.kind, a.addr, a.value) for a in run.bus_trace
                if a.addr < 0x10]
    assert seq_ref == seq_plat
    assert 0.85 < run.exit_code / reference.exit_code < 1.15
    print("UART transfer sequences identical; self-measured time within "
          f"{abs(run.exit_code / reference.exit_code - 1):.1%}.")


if __name__ == "__main__":
    main()
