#!/usr/bin/env python3
"""Debugging translated code (Section 3.5): dual translation at work.

Compiles a C program, then drives the debugger — which keeps a
block-oriented translation for speed and an instruction-oriented one
for single stepping — through a gdb-RSP-style protocol session:
breakpoint in the middle of a basic block, register inspection at each
stop, memory watch, single steps, run to exit.
"""

from repro.debug.debugger import Debugger
from repro.debug.rsp import RspClient, RspServer
from repro.minic.compiler import compile_source
from repro.objfile.elf import SymbolKind

SOURCE = """
int squares[8];

int square(int x) {
    return x * x;
}

int main() {
    int i;
    for (i = 0; i < 8; i += 1) {
        squares[i] = square(i);
    }
    return squares[7];
}
"""


def main() -> None:
    obj = compile_source(SOURCE)
    debugger = Debugger(obj, level=1)
    client = RspClient(RspServer(debugger))

    square_addr = obj.symbol_addr("square")
    print(f"function 'square' at {square_addr:#010x}")

    # Break at square's body (past the prologue — a mid-block address,
    # which forces the instruction-oriented translation).
    bp = square_addr + 4
    print(f"Z0 (set breakpoint) -> {client.command(f'Z0,{bp:x}')}")

    for hit in range(3):
        reply = client.command("c")
        d4 = debugger.read_register("d4")
        print(f"continue -> {reply}; stopped at {debugger.src_pc:#010x}, "
              f"argument d4 = {d4}")

    print("\nsingle stepping through the function:")
    for _ in range(4):
        client.command("s")
        regs = debugger.read_all_registers()
        print(f"  pc={debugger.src_pc:#010x} d2={regs['d2']} "
              f"d4={regs['d4']} d8={regs['d8']}")

    # Watch the squares array through the memory interface.
    squares = obj.symbol_at(obj.symbol_addr("g_squares"),
                            SymbolKind.OBJECT)
    base = obj.symbol_addr("g_squares")
    del squares
    print(f"\nclear breakpoint -> {client.command(f'z0,{bp:x}')}")
    reply = client.command("c")
    print(f"run to completion -> {reply} (W = exited, code in hex)")
    data = debugger.read_memory(base, 32)
    values = [int.from_bytes(data[i:i + 4], "little") for i in range(0, 32, 4)]
    print(f"squares[] in target memory: {values}")
    print(f"emulated cycles at exit: {debugger.emulated_cycles}")


if __name__ == "__main__":
    main()
