"""Figure 6 — comparison of cycle accuracy.

Regenerates the simulated-vs-measured cycle counts and checks the
paper's claims: deviation shrinks with every detail level, the
branch-prediction level lands within the paper's quoted band, and
control-flow-dominated programs (gcd) gain the most from dynamic
branch-prediction correction.
"""

from repro.eval.experiments import figure6
from repro.programs.registry import build
from repro.translator.driver import translate

from conftest import write_report


def test_figure6_shape(figure5_measurements):
    report = figure6(figure5_measurements)
    write_report("figure6_accuracy.txt", report.text)
    rows = {row["program"]: row for row in report.rows}

    for name, row in rows.items():
        dev1 = abs(row["deviation1"])
        dev2 = abs(row["deviation2"])
        dev3 = abs(row["deviation3"])
        # Accuracy improves with the detail level.
        assert dev3 <= dev2 + 1e-9, name
        assert dev2 <= dev1 + 1e-9, name
        # The cache level is nearly exact (only cross-block pipeline
        # effects remain).
        assert dev3 < 0.02, name
        # The branch-prediction level stays within a Figure-6-like band.
        assert dev2 < 0.15, name

    # Purely static prediction *underestimates* (it cannot see
    # mispredictions or cache misses).
    for name, row in rows.items():
        assert row["deviation1"] <= 0.0, name

    # Branch prediction matters most for control-flow dominated code
    # ("especially for control flow oriented programs like gcd").
    gain = {name: abs(row["deviation1"]) - abs(row["deviation2"])
            for name, row in rows.items()}
    assert gain["gcd"] > gain["ellip"]
    assert gain["gcd"] > gain["subband"]


def test_bench_translation_level2(benchmark):
    """Wall-clock of a full level-2 translation (gcd)."""
    obj = build("gcd")

    def run():
        return translate(obj, level=2)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["packets"] = result.stats.packets
    assert result.stats.packets > 0
