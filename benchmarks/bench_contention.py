"""Shared-device contention: the communication cost ledger.

Runs every shared workload (mailbox ping-pong, producer/consumer,
scratch barrier) on a 2-core shared-capable SoC under the interp,
compiled and mixed backend assignments, asserting the shared-device
contract along the way — identical per-core observables and identical
cycle-stamped shared-segment traces (contention markers included)
across all mixes — and records the contention economics
(arbitration conflicts, stall cycles per core, shared transfers,
wall clock per mix) in ``BENCH_contention.json``.

A non-sharing control workload rides along to pin the other half of
the contract: zero recorded contention and bit-identity with the
single-core platform on the very same SoC model.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep for CI smoke jobs.
"""

from __future__ import annotations

import json
import os
import time

from repro.programs.registry import (
    build,
    expected_shared_exits,
    shared_program_names,
)
from repro.translator.driver import translate
from repro.vliw.multicore import MultiCoreSoC
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_contention.json")

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
WORKLOADS = (("mbox_prodcons",) if SMOKE
             else tuple(shared_program_names()))
CONTROL = "gcd"
LEVEL = 2
CORES = 2
MIXES = {
    "interp": ("interp",) * CORES,
    "compiled": ("compiled",) * CORES,
    "mixed": tuple("compiled" if i % 2 == 0 else "interp"
                   for i in range(CORES)),
}


def _trace_tuples(accesses):
    return [(a.cycle, a.kind, a.addr, a.value, a.size) for a in accesses]


def test_contention_record():
    """Shared-workload sweep across backend mixes; writes the record."""
    record = {"cores": CORES, "level": LEVEL, "workloads": {}}
    lines = [f"shared-device contention ({CORES} cores, level {LEVEL}):"]

    for name in WORKLOADS:
        program = translate(build(name), level=LEVEL).program
        snapshots = {}
        timings = {}
        # the backend mixes run under the default adaptive quantum; a
        # compiled quantum=1 row rides along so the sweep also pins the
        # lockstep scheduling contract (identical shared-device ledger
        # across quantum modes, not just across backend mixes)
        runs = [(mix_name, mix, "adaptive")
                for mix_name, mix in MIXES.items()]
        runs.append(("compiled_q1", MIXES["compiled"], 1))
        for mix_name, mix, quantum in runs:
            soc = MultiCoreSoC(program, cores=CORES, backends=mix,
                               quantum=quantum)
            start = time.perf_counter()
            multi = soc.run()
            timings[mix_name] = time.perf_counter() - start
            exits = [r.exit_code for r in multi.per_core]
            assert exits == expected_shared_exits(name, CORES), \
                (name, mix_name, exits)
            snapshots[mix_name] = (
                multi.observables(),
                _trace_tuples(multi.shared_trace()),
                multi.contention_stall_cycles,
                multi.contention_conflicts,
            )
        reference = snapshots["interp"]
        for mix_name, snapshot in snapshots.items():
            assert snapshot == reference, \
                f"{name}: backend mix {mix_name!r} diverges from interp"
        obs, shared_trace, stalls, conflicts = reference
        assert conflicts > 0, f"{name} recorded no contention"
        record["workloads"][name] = {
            "exits": [r["exit_code"] for r in obs],
            "conflicts": conflicts,
            "stall_cycles_per_core": stalls,
            "shared_transfers": sum(
                1 for a in shared_trace if a[1] in ("r", "w")),
            "target_cycles": max(r["target_cycles"] for r in obs),
            "wall_seconds": {mix: round(seconds, 4)
                             for mix, seconds in timings.items()},
        }
        lines.append(
            f"  {name:<16s} conflicts {conflicts:3d}  "
            f"stalls {stalls}  "
            f"shared transfers {record['workloads'][name]['shared_transfers']:4d}  "
            f"cycles {record['workloads'][name]['target_cycles']}")

    # control: a non-sharing workload on the same SoC model pays nothing
    program = translate(build(CONTROL), level=LEVEL).program
    single = PrototypingPlatform(program, backend="interp").run().observables()
    multi = MultiCoreSoC(program, cores=CORES, backends="interp").run()
    assert all(r.observables() == single for r in multi.per_core)
    assert multi.contention_conflicts == 0
    record["control"] = {
        "program": CONTROL,
        "conflicts": 0,
        "bit_identical_to_single_core": True,
    }
    lines.append(f"  {CONTROL:<16s} (control) conflicts   0  "
                 f"bit-identical to single core")

    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    write_report("contention.txt", "\n".join(lines))
