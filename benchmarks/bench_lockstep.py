"""Adaptive lockstep quantum: before/after on communicating workloads.

The quantum=1 lockstep baseline pays one arbitration round per target
cycle and (pre-inline) bailed every shared-segment access back to the
interpreter.  The adaptive barrier grants run-ahead windows while every
core is provably inside private code, and the inline shared-access
emitter keeps compiled/native regions resident across mailbox traffic.
This benchmark runs every communicating shared workload under both
modes, asserts the lockstep differential contract — exits, the
cycle-stamped shared-segment trace, contention conflicts and per-core
stall cycles all bit-identical — and records the wall-clock ratio and
the scheduling profile (rounds, run-ahead windows, inline shared calls
vs interpreter bails) in ``BENCH_lockstep.json``.

Wall clocks are measured with the two modes interleaved and the median
taken per mode, because A/B timing on a noisy host otherwise attributes
machine weather to whichever mode ran second.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep for CI smoke jobs.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.programs.registry import (
    build,
    expected_shared_exits,
    shared_program_names,
)
from repro.translator.driver import translate
from repro.vliw.codegen.native import native_available
from repro.vliw.multicore import MultiCoreSoC

from conftest import write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_lockstep.json")

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
#: every communicating workload: frequent neighbor traffic (pingpong,
#: producer/consumer, scratch barrier) plus one with long private
#: compute phases between exchanges (ring all-reduce) — the shape the
#: run-ahead window exists for
WORKLOADS = (("mbox_allreduce",) if SMOKE
             else tuple(shared_program_names()))
LEVEL = 2
CORES = (2,) if SMOKE else (2, 4)
REPS = 2 if SMOKE else 3


def _backends() -> tuple[str, ...]:
    if SMOKE:
        return ("compiled",)
    if native_available():
        return ("compiled", "native", "tiered")
    return ("compiled",)


def _trace_tuples(accesses):
    return [(a.cycle, a.kind, a.addr, a.value, a.size) for a in accesses]


def _snapshot(multi):
    """Everything the lockstep differential contract compares."""
    return (
        [r.exit_code for r in multi.per_core],
        _trace_tuples(multi.shared_trace()),
        multi.contention_stall_cycles,
        multi.contention_conflicts,
        [r.target_cycles for r in multi.per_core],
    )


def _timed_run(program, cores, backend, quantum):
    soc = MultiCoreSoC(program, cores=cores, backends=backend,
                       quantum=quantum)
    start = time.perf_counter()
    multi = soc.run()
    return time.perf_counter() - start, multi


def test_lockstep_record():
    """quantum=1 vs adaptive sweep; writes BENCH_lockstep.json."""
    backends = _backends()
    record = {
        "level": LEVEL,
        "reps": REPS,
        "smoke": SMOKE,
        "native_toolchain": native_available(),
        "workloads": {},
    }
    lines = [f"adaptive lockstep quantum vs quantum=1 (level {LEVEL}, "
             f"median of {REPS} interleaved reps):"]
    best = 0.0

    for name in WORKLOADS:
        program = translate(build(name), level=LEVEL).program
        for cores in CORES:
            expected_exits = expected_shared_exits(name, cores)
            for backend in backends:
                walls = {1: [], "adaptive": []}
                snapshots = {}
                profile = None
                for _ in range(REPS):
                    for quantum in (1, "adaptive"):
                        wall, multi = _timed_run(program, cores, backend,
                                                 quantum)
                        walls[quantum].append(wall)
                        snapshots.setdefault(quantum, _snapshot(multi))
                        assert _snapshot(multi) == snapshots[quantum]
                        if quantum == "adaptive":
                            profile = multi.lockstep
                # the lockstep differential contract: bit-identical
                # observables across scheduling modes
                assert snapshots[1] == snapshots["adaptive"], \
                    (name, cores, backend)
                assert snapshots[1][0] == expected_exits, \
                    (name, cores, backend, snapshots[1][0])
                base = statistics.median(walls[1])
                adaptive = statistics.median(walls["adaptive"])
                speedup = base / adaptive if adaptive else 0.0
                best = max(best, speedup)
                key = f"{name}@{cores}c/{backend}"
                record["workloads"][key] = {
                    "quantum1_seconds": round(base, 4),
                    "adaptive_seconds": round(adaptive, 4),
                    "speedup": round(speedup, 3),
                    "rounds": profile["rounds"],
                    "runahead_rounds": profile["runahead_rounds"],
                    "runahead_window_cycles":
                        profile["runahead_window_cycles"],
                    "inline_shared_calls": sum(
                        c["inline_shared_calls"]
                        for c in profile["per_core"]),
                    "interp_bails": sum(
                        c["interp_bails"] for c in profile["per_core"]),
                    "exits": snapshots[1][0],
                    "conflicts": snapshots[1][3],
                    "stall_cycles_per_core": snapshots[1][2],
                    "shared_transfers": sum(
                        1 for a in snapshots[1][1] if a[1] in ("r", "w")),
                }
                row = record["workloads"][key]
                lines.append(
                    f"  {key:<32s} {base * 1e3:9.1f}ms -> "
                    f"{adaptive * 1e3:9.1f}ms  {speedup:6.2f}x  "
                    f"windows {row['runahead_rounds']:4d}  "
                    f"inline {row['inline_shared_calls']:5d}  "
                    f"bails {row['interp_bails']:4d}")

    record["best_speedup"] = round(best, 3)
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    lines.append(f"  best speedup: {best:.2f}x")
    write_report("lockstep.txt", "\n".join(lines))

    # the acceptance bar needs translated-code run-ahead to show up;
    # a smoke host without the native toolchain records its compiled
    # numbers honestly instead of failing on machine capacity
    if not SMOKE and native_available():
        assert best >= 3.0, record
