"""Table 1 — clock cycles per TriCore instruction.

Checks the ordering and rough factors of the paper's CPI table:
board < no-info < cycle-info < branch-pred << caches, with the cache
level costing a multiple of the branch-prediction level.
"""

from repro.eval import paper_data
from repro.eval.experiments import table1
from repro.programs.registry import build
from repro.refsim.iss import CycleAccurateISS

from conftest import write_report


def test_table1_shape(figure5_measurements):
    report = table1(figure5_measurements)
    write_report("table1_cpi.txt", report.text)
    (row,) = report.rows

    assert row["board"] < row["level0"] < row["level1"] \
        < row["level2"] < row["level3"]

    # Board CPI near 1 (paper: 1.08).
    assert 1.0 <= row["board"] <= 1.5

    # Translation without cycle information costs a few target cycles
    # per source instruction (paper: 2.94).
    assert 1.5 <= row["level0"] <= 4.5

    # The cache level costs a clear multiple of the branch-pred level
    # (paper: 6x; our leaner generated probe reaches ~2x).
    assert row["level3"] / row["level2"] >= 1.8

    # Cycle annotation adds on the order of one cycle per instruction
    # (paper: +1.34).
    assert 0.3 <= row["level1"] - row["level0"] <= 2.5


def test_bench_reference_iss(benchmark):
    """Wall-clock of the reference cycle-accurate ISS (gcd)."""
    obj = build("gcd")

    def run():
        return CycleAccurateISS(obj).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["cpi"] = result.cpi
    assert result.cpi > 1.0
