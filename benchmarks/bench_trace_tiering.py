"""Whole-trace native execution + profile-guided tiering — the PR-6 bars.

Times every Figure-5 workload and big kernel at detail level 3 under
three backends and writes ``BENCH_trace.json`` to the repo root:

* ``native`` — superblock chaining: regions connected by chain edges
  compile into one C function and chain via direct ``goto``, so hot
  loops spend whole traces inside the shared object instead of paying
  a Python wrapper round-trip per region.  The bar: warm native at
  least **5x** warm packet-compiled on two of the three big kernels
  (dct8x8, viterbi, crc32), where PR-5's per-region native backend
  managed 1.3-2.6x.
* ``tiered`` — the profile-guided ladder at default thresholds.  The
  bar: **no** program slower than warm packet-compiled (the PR-5
  record showed native gcd at 0.993x compiled — the regression that
  motivated superblock chaining; it must be gone).

The record also carries each program's superblock shape (entries vs
members of the native module) and the tier ladder profile of the
tiered run, so a regression in trace formation shows up in the
artifact even when the timing bars still pass.  Without a C toolchain
the record is written with ``"native_available": false`` and the bars
are skipped — honest numbers either way.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.programs.registry import BIG_KERNELS, FIGURE5_PROGRAMS, build
from repro.translator.driver import translate
from repro.vliw.codegen.native import native_available
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_trace.json")
LEVEL = 3
#: the superblock bar: >= 5x warm packet-compiled on this many of the
#: big kernels
SUPERBLOCK_BAR = 5.0
SUPERBLOCK_KERNELS_REQUIRED = 2


def _timed_run(program, backend, **kwargs):
    platform = PrototypingPlatform(program, backend=backend, **kwargs)
    start = time.perf_counter()
    result = platform.run()
    return time.perf_counter() - start, result, platform


def _best_of(program, backend, runs=3, **kwargs):
    best, result, platform = _timed_run(program, backend, **kwargs)
    for _ in range(runs - 1):
        seconds, result, platform = _timed_run(program, backend, **kwargs)
        best = min(best, seconds)
    return best, result, platform


def _superblock_shape(platform):
    context = (platform._compiler.native_context
               if platform._compiler else None)
    if context is None:
        return None
    plan = context.plan
    return {"entries": len(plan), "members": plan.n_members}


def test_trace_tiering_record():
    available = native_available()
    record = {
        "level": LEVEL,
        "native_available": available,
        "superblock_bar": SUPERBLOCK_BAR,
        "programs": {},
    }
    for name in (*FIGURE5_PROGRAMS, *BIG_KERNELS):
        # independent translations per backend: every cold run starts
        # from empty region caches (translation is deterministic, so
        # observables still compare across them)
        obj = build(name)
        compiled_program = translate(obj, level=LEVEL).program
        native_program = translate(obj, level=LEVEL).program
        tiered_program = translate(obj, level=LEVEL).program
        compiled_warm, compiled_result, _ = _best_of(
            compiled_program, "compiled")
        native_warm, native_result, native_platform = _best_of(
            native_program, "native")
        tiered_warm, tiered_result, tiered_platform = _best_of(
            tiered_program, "tiered")
        assert (compiled_result.observables()
                == native_result.observables()
                == tiered_result.observables()), name
        stats = tiered_platform._compiler.tier_stats()
        tiers = [info["tier"] for info in stats["regions"].values()]
        record["programs"][name] = {
            "compiled_warm_seconds": round(compiled_warm, 6),
            "native_warm_seconds": round(native_warm, 6),
            "tiered_warm_seconds": round(tiered_warm, 6),
            "native_vs_compiled_warm": round(
                compiled_warm / native_warm, 3),
            "tiered_vs_compiled_warm": round(
                compiled_warm / tiered_warm, 3),
            "superblocks": _superblock_shape(native_platform),
            "tier_profile": {
                "interp": tiers.count("interp"),
                "python": tiers.count("python"),
                "native": tiers.count("native"),
                "promoted_python": stats["promoted_python"],
                "promoted_native": stats["promoted_native"],
                "demoted": stats["demoted"],
            },
        }
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    lines = [f"superblock chaining + tiering at detail level {LEVEL} "
             f"(native_available={available}):"]
    for name, row in record["programs"].items():
        shape = row["superblocks"] or {"entries": 0, "members": 0}
        lines.append(
            f"  {name:10s} compiled {row['compiled_warm_seconds']*1000:8.1f}ms"
            f"  native {row['native_warm_seconds']*1000:8.1f}ms"
            f" ({row['native_vs_compiled_warm']:5.2f}x)"
            f"  tiered {row['tiered_warm_seconds']*1000:8.1f}ms"
            f" ({row['tiered_vs_compiled_warm']:5.2f}x)"
            f"  superblocks {shape['entries']}/{shape['members']}")
    write_report("trace_tiering.txt", "\n".join(lines))
    if not available:
        pytest.skip("no C toolchain: BENCH_trace.json records the "
                    "Python-emitter fallback; speedup bars not applicable")
    # bar 1: whole-trace native execution >= 5x warm packet-compiled
    # on at least two of the big kernels
    over_bar = [name for name in BIG_KERNELS
                if (record["programs"][name]["native_vs_compiled_warm"]
                    >= SUPERBLOCK_BAR)]
    assert len(over_bar) >= SUPERBLOCK_KERNELS_REQUIRED, {
        name: record["programs"][name]["native_vs_compiled_warm"]
        for name in BIG_KERNELS}
    # bar 2: the tier ladder never loses to warm packet-compiled —
    # including gcd, the PR-5 native regression (0.993x)
    for name, row in record["programs"].items():
        assert row["tiered_vs_compiled_warm"] >= 1.0, (name, row)


def test_trace_smoke_gcd():
    """Quick CI smoke: superblock native and the tier ladder agree
    with interp on gcd, and the chained module forms a multi-member
    superblock around the gcd loop."""
    program = translate(build("gcd"), level=LEVEL).program
    _, interp_result, _ = _timed_run(program, "interp")
    _, native_result, native_platform = _timed_run(program, "native")
    _, tiered_result, _ = _timed_run(program, "tiered")
    assert interp_result.observables() == native_result.observables()
    assert interp_result.observables() == tiered_result.observables()
    shape = _superblock_shape(native_platform)
    if shape is not None:  # toolchain present
        assert shape["members"] >= shape["entries"] > 0
