"""Ablation B — cache probe: subroutine call vs inlined code.

Section 3.4.2: "In large basic blocks, this code can be included into
the basic block making the subroutine call unnecessary and the parallel
execution of the cache calculation code and the executed program on the
VLIW processor possible."  This ablation measures that optimization on
the two large-block workloads.
"""

from repro.programs.registry import build
from repro.refsim.iss import CycleAccurateISS
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report


def _measure(name, inline_threshold):
    obj = build(name)
    tr = translate(obj, level=3, inline_cache_threshold=inline_threshold)
    res = PrototypingPlatform(tr.program).run()
    return tr, res


def test_inline_cache_ablation():
    lines = ["Ablation B — cache analysis: subroutine call vs inline",
             f"{'program':>9s} {'call cyc':>10s} {'inline cyc':>11s} "
             f"{'speedup':>8s} {'emu equal':>10s}"]
    for name in ("ellip", "subband", "fir"):
        ref = CycleAccurateISS(build(name)).run()
        _, call_res = _measure(name, None)
        _, inline_res = _measure(name, 1)
        speedup = call_res.target_cycles / inline_res.target_cycles
        equal = call_res.emulated_cycles == inline_res.emulated_cycles
        lines.append(f"{name:>9s} {call_res.target_cycles:10d} "
                     f"{inline_res.target_cycles:11d} {speedup:8.2f} "
                     f"{str(equal):>10s}")
        # Inlining must not change what is simulated, only how fast.
        assert equal
        assert inline_res.exit_code == ref.exit_code
        # For large-block programs inlining pays off.
        if name in ("ellip", "subband"):
            assert speedup > 1.1
    write_report("ablation_inline_cache.txt", "\n".join(lines))


def test_bench_level3_call_variant(benchmark):
    obj = build("ellip")
    program = translate(obj, level=3).program
    result = benchmark.pedantic(
        lambda: PrototypingPlatform(program).run(), rounds=2, iterations=1)
    assert result.exit_code is not None


def test_bench_level3_inline_variant(benchmark):
    obj = build("ellip")
    program = translate(obj, level=3, inline_cache_threshold=1).program
    result = benchmark.pedantic(
        lambda: PrototypingPlatform(program).run(), rounds=2, iterations=1)
    assert result.exit_code is not None
