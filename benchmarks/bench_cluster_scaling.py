"""Cluster scaling over the modeled fabric — SoC-count trajectories.

Runs the distributed workloads on growing clusters under both
synchronization barriers and records a ``BENCH_cluster.json`` in the
repo root:

* **token_ring** is communication-bound — its runtime grows with the
  node count (more hops per circulation), making fabric timing visible
  in the record (words routed, hop cycles, contention);
* **crc32** replicated per node is embarrassingly parallel — the
  shape the cross-process barrier exists for: N workers execute their
  lockstep windows concurrently, so on a multi-CPU host wall time
  approaches the single-SoC cost.

Observables are asserted bit-identical between the in-process and
cross-process barriers along the way (a parallel cluster that is fast
but wrong would be worse than useless).  No speedup bar is asserted —
this host may be CPU-limited — but the record always carries the
measured wall times, the usable CPU count and a ``cpu_limited`` flag,
so a capacity-limited run is visible rather than silently green.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep for CI smoke jobs.
"""

from __future__ import annotations

import json
import os
import time

from repro.eval.sharded import default_jobs
from repro.programs.registry import build, expected_cluster_exits
from repro.translator.driver import translate
from repro.vliw.cluster import Cluster

from conftest import write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_cluster.json")

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NODE_COUNTS = (2,) if SMOKE else (2, 4)
LEVEL = 2
BACKEND = "compiled"


def _run(program, nodes: int, barrier: str, cores: int = 1):
    cluster = Cluster(program, socs=nodes, cores=cores, backends=BACKEND,
                      barrier=barrier)
    start = time.perf_counter()
    result = cluster.run()
    return result, time.perf_counter() - start


def test_cluster_scaling_record():
    """Both barriers, growing node counts; writes BENCH_cluster.json."""
    cpus = default_jobs()
    record = {
        "backend": BACKEND,
        "level": LEVEL,
        "usable_cpus": cpus,
        "cpu_limited": cpus < max(NODE_COUNTS),
        "token_ring": {},
        "parallel_crc32": {},
    }

    ring = translate(build("token_ring"), level=LEVEL).program
    for nodes in NODE_COUNTS:
        serial, serial_seconds = _run(ring, nodes, "lockstep")
        parallel, process_seconds = _run(ring, nodes, "process")
        assert parallel.observables() == serial.observables(), \
            f"cross-process barrier diverges at {nodes} nodes"
        assert serial.exit_codes() == expected_cluster_exits("token_ring",
                                                             nodes)
        record["token_ring"][str(nodes)] = {
            "lockstep_seconds": round(serial_seconds, 4),
            "process_seconds": round(process_seconds, 4),
            "target_cycles": serial.target_cycles,
            "rounds": serial.rounds,
            "fabric": serial.fabric,
        }

    crc = translate(build("crc32"), level=LEVEL).program
    _, single_seconds = _run(crc, 1, "lockstep")
    record["parallel_crc32"]["1"] = {
        "lockstep_seconds": round(single_seconds, 4)}
    for nodes in NODE_COUNTS:
        serial, serial_seconds = _run(crc, nodes, "lockstep")
        parallel, process_seconds = _run(crc, nodes, "process")
        assert parallel.observables() == serial.observables()
        record["parallel_crc32"][str(nodes)] = {
            "lockstep_seconds": round(serial_seconds, 4),
            "process_seconds": round(process_seconds, 4),
            "process_speedup_vs_lockstep": round(
                serial_seconds / process_seconds, 3)
            if process_seconds else None,
        }

    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [f"cluster scaling (backend {BACKEND}, level {LEVEL}, "
             f"{cpus} usable CPUs):",
             "  token_ring (communication-bound):"]
    for nodes, row in record["token_ring"].items():
        lines.append(
            f"    nodes={nodes}  lockstep {row['lockstep_seconds'] * 1e3:8.1f}ms"
            f"  process {row['process_seconds'] * 1e3:8.1f}ms"
            f"  cycles {row['target_cycles']}"
            f"  words {row['fabric']['words_routed']}")
    lines.append("  crc32 replicated (embarrassingly parallel):")
    for nodes, row in record["parallel_crc32"].items():
        process = row.get("process_seconds")
        lines.append(
            f"    nodes={nodes}  lockstep {row['lockstep_seconds'] * 1e3:8.1f}ms"
            + (f"  process {process * 1e3:8.1f}ms" if process else ""))
    write_report("cluster_scaling.txt", "\n".join(lines))

    # more nodes => more hops per circulation => more target cycles
    cycles = [row["target_cycles"]
              for row in record["token_ring"].values()]
    assert cycles == sorted(cycles)
