"""Table 2 — software runtime comparison.

Regenerates the comparison with reference [12]'s FPGA prototyping
platform: RT-level simulation on a workstation (wall clock of our
stage-level simulator), FPGA emulation at 8 MHz (reference cycles /
8 MHz), and the translation at three detail levels (target cycles /
200 MHz).  Checks the crossovers the paper reports.
"""

from repro.eval import paper_data
from repro.eval.experiments import table2
from repro.programs.registry import build
from repro.refsim.rtlsim import RtlSimulator

from conftest import write_report


def test_table2_shape(table2_measurements):
    report = table2(table2_measurements)
    write_report("table2_runtime.txt", report.text)
    rows = {row["program"]: row for row in report.rows}

    for name, row in rows.items():
        # Levels 1 and 2 are significantly faster than the 8 MHz FPGA
        # emulation (paper: 3x .. 42x).
        assert row["level1"] < row["fpga_emulation"] / 2, name
        assert row["level2"] < row["fpga_emulation"] / 2, name
        # The cache level is in the same order of magnitude as the FPGA
        # (paper: "about in the same range").
        assert row["level3"] < row["fpga_emulation"] * 2, name
        # The workstation simulation is orders of magnitude slower than
        # every emulated time.
        assert row["workstation_sim"] > 100 * row["level3"], name

    # Instruction counts are in the calibrated range of the paper's.
    for name, row in rows.items():
        paper_count = paper_data.TABLE2_INSTRUCTIONS[name]
        assert 0.4 * paper_count <= row["instructions"] <= 2.5 * paper_count


def test_bench_rtl_simulator(benchmark):
    """Wall-clock of the stage-level RTL-style simulation (gcd)."""
    obj = build("gcd")

    def run():
        return RtlSimulator(obj).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["cycles"] = result.cycles
    assert result.cycles > 0
