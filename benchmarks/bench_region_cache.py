"""Region-cache economics of the packet-compiled backend on the
big-footprint kernels.

The compiled backend caches generated region *source* on the program
object and host code objects per process (see
``src/repro/vliw/compiled.py``); the nine small kernels barely touch
either cache because their whole program is a handful of regions.  The
big kernels (``dct8x8``'s two >1 KiB unrolled butterflies, ``viterbi``'s
double-step ACS body, ``crc32``'s unrolled table generator) are the
first workloads whose region population is large enough to measure the
cache's behaviour: this benchmark records, per kernel, the region
count, packet count, cold-run compile work and warm-run hit rate into
``BENCH_regions.json`` and checks the invariants that make the cache
correct and worthwhile:

* a warm platform re-executing the same translation generates **zero**
  new region source (100 % cache hit rate);
* :func:`repro.vliw.compiled.precompile_program` statically reaches at
  least every region a real execution compiles;
* the warm run is not slower than the cold run (beyond noise).

``test_matches_committed_baseline`` compares the deterministic shape
fields (regions, packets, compile counts) against the committed
baseline — absent baselines skip cleanly via ``conftest.load_baseline``.
"""

from __future__ import annotations

import json
import os
import time

from repro.programs.registry import BIG_KERNELS, build
from repro.translator.driver import translate
from repro.vliw.compiled import precompile_program
from repro.vliw.platform import PrototypingPlatform

from conftest import REPO_ROOT, load_baseline, write_report

RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_regions.json")
LEVEL = 3

_RECORD_CACHE: dict = {}


def _measure() -> dict:
    if _RECORD_CACHE:
        return _RECORD_CACHE
    record = {"level": LEVEL, "kernels": {}}
    for name in BIG_KERNELS:
        translation = translate(build(name), level=LEVEL)
        program = translation.program

        cold_platform = PrototypingPlatform(program, backend="compiled")
        start = time.perf_counter()
        cold_result = cold_platform.run()
        cold_seconds = time.perf_counter() - start
        cold = cold_platform._compiler

        warm_platform = PrototypingPlatform(program, backend="compiled")
        start = time.perf_counter()
        warm_result = warm_platform.run()
        warm_seconds = time.perf_counter() - start
        warm = warm_platform._compiler

        assert warm_result.observables() == cold_result.observables(), name

        warm_total = warm.regions_generated + warm.regions_from_cache
        record["kernels"][name] = {
            "packets": len(program.packets),
            "regions_executed": cold.regions_compiled,
            "cold_generated": cold.regions_generated,
            "cold_from_cache": cold.regions_from_cache,
            "warm_generated": warm.regions_generated,
            "warm_from_cache": warm.regions_from_cache,
            "warm_hit_rate": (warm.regions_from_cache / warm_total
                              if warm_total else 1.0),
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
        }

        # a fresh translation, populated statically: precompile must
        # reach at least everything the execution needed
        fresh = translate(build(name), level=LEVEL).program
        precompiled = precompile_program(fresh)
        record["kernels"][name]["precompiled_regions"] = precompiled
    _RECORD_CACHE.update(record)
    return _RECORD_CACHE


def test_region_cache_record():
    """Cold vs warm region-cache behaviour; writes BENCH_regions.json."""
    record = _measure()
    lines = [f"region cache on the big kernels (level {LEVEL}, "
             f"packet-compiled backend):"]
    for name, row in record["kernels"].items():
        # the whole point of the program-level source cache: a warm
        # platform never regenerates region source
        assert row["warm_generated"] == 0, (name, row)
        assert row["warm_hit_rate"] == 1.0, (name, row)
        assert row["cold_generated"] > 0, (name, row)
        assert row["precompiled_regions"] >= row["cold_generated"], \
            (name, row)
        lines.append(
            f"  {name:8s} packets {row['packets']:5d}  regions "
            f"{row['cold_generated']:3d} generated cold / "
            f"{row['warm_from_cache']:3d} cached warm  "
            f"cold {row['cold_seconds'] * 1e3:7.1f}ms  "
            f"warm {row['warm_seconds'] * 1e3:7.1f}ms")
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    write_report("region_cache.txt", "\n".join(lines))

    # big kernels must actually exercise the cache: tens of regions,
    # not the handful the small kernels produce
    assert min(row["cold_generated"]
               for row in record["kernels"].values()) >= 10


def test_warm_run_not_slower():
    record = _measure()
    for name, row in record["kernels"].items():
        # generous noise margin; the warm run skips all codegen
        assert row["warm_seconds"] <= row["cold_seconds"] * 1.5, (name, row)


def test_matches_committed_baseline():
    """Deterministic shape fields must match the committed record."""
    baseline = load_baseline("BENCH_regions.json")
    record = _measure()
    assert set(baseline["kernels"]) == set(record["kernels"])
    for name, row in record["kernels"].items():
        committed = baseline["kernels"][name]
        for field in ("packets", "regions_executed", "cold_generated",
                      "precompiled_regions"):
            assert committed[field] == row[field], (name, field)
