"""One-stop benchmark trajectory table.

Aggregates every ``BENCH_*.json`` record in the repo root into a
single ``benchmarks/output/summary.txt``: one section per record, one
row per headline metric, so the performance trajectory of the repo is
readable in one file instead of six JSON blobs.  Text-only reports
with no JSON record (the sync-rate ablation) are appended verbatim as
their own sections.  Runs last in any benchmark session (plain scalars
only — nested structure is flattened with dotted keys) and never fails
on a missing record: it summarizes whatever the checkout has.
"""

from __future__ import annotations

import glob
import json
import os

from conftest import write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: flatten depth: BENCH records are shallow by convention (scalars,
#: one level of grouping, one level of per-configuration rows)
MAX_DEPTH = 3


def _flatten(value, prefix="", depth=0):
    """Dotted-key scalar rows of one record, insertion-ordered."""
    rows = []
    if isinstance(value, dict):
        if depth >= MAX_DEPTH:
            rows.append((prefix, f"<{len(value)} entries>"))
        else:
            for key, inner in value.items():
                dotted = f"{prefix}.{key}" if prefix else str(key)
                rows.extend(_flatten(inner, dotted, depth + 1))
    elif isinstance(value, list):
        if all(not isinstance(v, (dict, list)) for v in value):
            rows.append((prefix, ", ".join(str(v) for v in value)))
        else:
            rows.append((prefix, f"<{len(value)} entries>"))
    else:
        rows.append((prefix, str(value)))
    return rows


#: text-only reports with no ``BENCH_*.json`` counterpart — the
#: sync-rate ablation writes a table but records no JSON, so without
#: this list its result never reached the summary
ORPHAN_REPORTS = ("ablation_sync_rate.txt",)


def summarize(records: dict[str, dict],
              reports: dict[str, str] | None = None) -> str:
    lines = ["benchmark record summary", "========================"]
    if not records:
        lines.append("(no BENCH_*.json records in the repo root)")
    for filename in sorted(records):
        lines.append("")
        lines.append(filename)
        lines.append("-" * len(filename))
        rows = _flatten(records[filename])
        width = max(len(key) for key, _ in rows)
        for key, value in rows:
            lines.append(f"  {key:<{width}}  {value}")
    for filename in sorted(reports or {}):
        lines.append("")
        lines.append(filename)
        lines.append("-" * len(filename))
        for row in (reports or {})[filename].rstrip().splitlines():
            lines.append(f"  {row}")
    return "\n".join(lines)


def test_write_benchmark_summary():
    """Reads the records as they are *now* — after any recording
    benchmark of the same session rewrote them — so the summary always
    reflects the session's final state."""
    records = {}
    for path in sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))):
        with open(path) as handle:
            records[os.path.basename(path)] = json.load(handle)
    reports = {}
    output_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "output")
    for filename in ORPHAN_REPORTS:
        path = os.path.join(output_dir, filename)
        if os.path.exists(path):
            with open(path) as handle:
                reports[filename] = handle.read()
    text = summarize(records, reports)
    write_report("summary.txt", text)
    for filename in records:
        assert filename in text
    for filename in reports:
        assert filename in text
