"""Figure 5 — comparison of speed.

Regenerates the MIPS bars (board vs translation at four detail levels)
and checks the paper's qualitative claims: programs with large basic
blocks (ellip, subband) emulate fastest with cycle information; sieve's
small blocks pay the largest annotation penalty; dropping the detail
level buys speed.
"""

from repro.eval import paper_data
from repro.eval.experiments import figure5
from repro.eval.runner import measure_program
from repro.programs.registry import BIG_KERNELS, build, expected_exit
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report


def test_figure5_shape(figure5_measurements):
    report = figure5(figure5_measurements)
    write_report("figure5_speed.txt", report.text)
    rows = {row["program"]: row for row in report.rows}

    # Annotated code is slower than unannotated, at every level.
    for row in rows.values():
        assert row["level0"] >= row["level1"] >= row["level2"] \
            >= row["level3"]

    # Large-block programs translate best with cycle information.
    for big in ("ellip", "subband"):
        for small in ("gcd", "sieve"):
            assert rows[big]["level1"] > rows[small]["level1"]

    # The relative annotation cost (L1 vs L0) hits sieve harder than the
    # large-block programs — the paper's Figure 5 observation.
    def annotation_cost(name):
        return 1.0 - rows[name]["level1"] / rows[name]["level0"]

    assert annotation_cost("sieve") > annotation_cost("ellip")
    assert annotation_cost("sieve") > annotation_cost("subband")

    # Levels 1-2 beat the 48 MHz board (the speed-up that motivates
    # translation-based emulation).
    for name in ("ellip", "subband", "fir", "dpcm"):
        assert rows[name]["level1"] > rows[name]["board"]


def test_big_kernel_speed_extension(platform_backend):
    """Figure-5-style MIPS rows for the big kernels.

    The paper's figure stops at the six small Section-4 workloads;
    this extension measures the corpus additions whose code overflows
    the instruction cache.  The qualitative claims must carry over:
    annotation costs speed at every level, and the level-3 cache
    simulation — which now does real work, since these kernels
    actually miss — is the most expensive detail level.
    """
    lines = [f"big-kernel emulation speed (MIPS at "
             f"{paper_data.C6X_HZ / 1e6:.0f} MHz target clock):"]
    for name in BIG_KERNELS:
        m = measure_program(name, levels=(0, 1, 3),
                            backend=platform_backend)
        mips = {level: m.levels[level].mips(paper_data.C6X_HZ)
                for level in (0, 1, 3)}
        for level in (0, 1, 3):
            assert m.levels[level].result.exit_code == expected_exit(name), \
                (name, level)
        assert mips[0] >= mips[1] >= mips[3], (name, mips)
        # the big kernels genuinely pay for the cache model
        assert mips[3] < mips[1], (name, mips)
        lines.append(f"  {name:8s} L0 {mips[0]:7.2f}  L1 {mips[1]:7.2f}  "
                     f"L3 {mips[3]:7.2f}")
    write_report("figure5_big_kernels.txt", "\n".join(lines))


def test_bench_platform_run_level1(benchmark, figure5_measurements):
    """Wall-clock of one platform execution (gcd, level 1)."""
    obj = build("gcd")
    program = translate(obj, level=1).program

    def run():
        return PrototypingPlatform(program).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.exit_code is not None
    benchmark.extra_info["target_cycles"] = result.target_cycles
    benchmark.extra_info["mips_at_200mhz"] = (
        result.source_instructions /
        (result.target_cycles / paper_data.C6X_HZ) / 1e6)
