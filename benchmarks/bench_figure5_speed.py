"""Figure 5 — comparison of speed.

Regenerates the MIPS bars (board vs translation at four detail levels)
and checks the paper's qualitative claims: programs with large basic
blocks (ellip, subband) emulate fastest with cycle information; sieve's
small blocks pay the largest annotation penalty; dropping the detail
level buys speed.
"""

from repro.eval import paper_data
from repro.eval.experiments import figure5
from repro.programs.registry import build
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report


def test_figure5_shape(figure5_measurements):
    report = figure5(figure5_measurements)
    write_report("figure5_speed.txt", report.text)
    rows = {row["program"]: row for row in report.rows}

    # Annotated code is slower than unannotated, at every level.
    for row in rows.values():
        assert row["level0"] >= row["level1"] >= row["level2"] \
            >= row["level3"]

    # Large-block programs translate best with cycle information.
    for big in ("ellip", "subband"):
        for small in ("gcd", "sieve"):
            assert rows[big]["level1"] > rows[small]["level1"]

    # The relative annotation cost (L1 vs L0) hits sieve harder than the
    # large-block programs — the paper's Figure 5 observation.
    def annotation_cost(name):
        return 1.0 - rows[name]["level1"] / rows[name]["level0"]

    assert annotation_cost("sieve") > annotation_cost("ellip")
    assert annotation_cost("sieve") > annotation_cost("subband")

    # Levels 1-2 beat the 48 MHz board (the speed-up that motivates
    # translation-based emulation).
    for name in ("ellip", "subband", "fir", "dpcm"):
        assert rows[name]["level1"] > rows[name]["board"]


def test_bench_platform_run_level1(benchmark, figure5_measurements):
    """Wall-clock of one platform execution (gcd, level 1)."""
    obj = build("gcd")
    program = translate(obj, level=1).program

    def run():
        return PrototypingPlatform(program).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.exit_code is not None
    benchmark.extra_info["target_cycles"] = result.target_cycles
    benchmark.extra_info["mips_at_200mhz"] = (
        result.source_instructions /
        (result.target_cycles / paper_data.C6X_HZ) / 1e6)
