"""Static-compilation throughput: how fast the translator itself runs.

Not a paper table, but the static-vs-dynamic argument of Section 2
rests on translation being a compile-time cost; this tracks it per
detail level.
"""

import pytest

from repro.programs.registry import build
from repro.translator.driver import translate


@pytest.mark.parametrize("level", [0, 1, 2, 3])
def test_bench_translate(benchmark, level):
    obj = build("sieve")
    result = benchmark.pedantic(lambda: translate(obj, level=level),
                                rounds=3, iterations=1)
    benchmark.extra_info["packets"] = result.stats.packets
    benchmark.extra_info["code_expansion"] = round(
        result.stats.code_expansion, 2)
    assert result.stats.packets > 0
