"""Shard-count scaling of the registry sweep — the parallel payoff.

Times the full registry sweep (reference ISS run plus platform
execution at every detail level, per program) three ways: through the
serial :mod:`repro.eval.runner` path, and through
:class:`repro.eval.sharded.ShardedRunner` at increasing worker counts.
Observables are asserted identical along the way — a sharded sweep
that is fast but wrong would be worse than useless — and a
``BENCH_multicore.json`` record lands in the repo root, including a
lockstep-overhead measurement of the multi-core SoC model itself.

The speedup bar (>= 2x with 4 workers) is asserted only when the host
actually has >= 4 usable CPUs; the record always carries the measured
numbers and the CPU count, so a capacity-limited run is visible rather
than silently green.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep for CI smoke jobs.
"""

from __future__ import annotations

import json
import os
import time

from repro.eval.runner import measure_program
from repro.eval.sharded import ShardedRunner, default_jobs
from repro.programs.registry import program_names
from repro.translator.driver import translate
from repro.programs.registry import build
from repro.vliw.multicore import MultiCoreSoC
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_multicore.json")

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
PROGRAMS = ("gcd", "fir") if SMOKE else tuple(program_names())
LEVELS = (0, 1) if SMOKE else (0, 1, 2, 3)
JOB_COUNTS = (2,) if SMOKE else (2, 4)
BACKEND = "compiled"


def _mp_context() -> str:
    """Cheapest start method the host offers (fork skips re-imports);
    the determinism tests cover the portable spawn path separately."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _sweep_observables(measurements) -> dict:
    return {(name, level): m.levels[level].result.observables()
            for name, m in measurements.items() for level in LEVELS}


def test_sharded_sweep_scaling_record():
    """Serial vs sharded registry sweep; writes BENCH_multicore.json."""
    start = time.perf_counter()
    serial = {name: measure_program(name, levels=LEVELS, backend=BACKEND)
              for name in PROGRAMS}
    serial_seconds = time.perf_counter() - start
    expected = _sweep_observables(serial)

    cpus = default_jobs()
    mp_context = _mp_context()
    record = {
        "backend": BACKEND,
        "programs": list(PROGRAMS),
        "levels": list(LEVELS),
        "usable_cpus": cpus,
        "mp_context": mp_context,
        "serial_seconds": round(serial_seconds, 4),
        "jobs": {},
    }
    for jobs in JOB_COUNTS:
        runner = ShardedRunner(jobs=jobs, mp_context=mp_context)
        start = time.perf_counter()
        sharded = runner.measure_registry(PROGRAMS, LEVELS, backend=BACKEND)
        seconds = time.perf_counter() - start
        assert _sweep_observables(sharded) == expected, \
            f"sharded sweep (jobs={jobs}) diverges from the serial runner"
        record["jobs"][str(jobs)] = {
            "seconds": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 3),
        }

    record["cpu_limited"] = cpus < max(JOB_COUNTS)
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [f"registry sweep ({len(PROGRAMS)} programs, levels "
             f"{LEVELS}, backend {BACKEND}, {cpus} usable CPUs):",
             f"  serial        {serial_seconds * 1e3:8.1f}ms"]
    for jobs, row in record["jobs"].items():
        lines.append(f"  jobs={jobs:<8s} {row['seconds'] * 1e3:8.1f}ms"
                     f"  speedup {row['speedup']:.2f}x")
    write_report("multicore_scaling.txt", "\n".join(lines))

    # the acceptance bar applies where 4 workers can actually run in
    # parallel; a 1-CPU host records its numbers honestly instead
    if cpus >= 4 and 4 in JOB_COUNTS:
        assert record["jobs"]["4"]["speedup"] >= 2.0, record


def test_multicore_lockstep_overhead_smoke():
    """The N-core lockstep scheduler should cost little over N
    independent runs, and its per-core results must stay identical.

    A non-communicating program is the adaptive quantum's best case
    (the whole run is one run-ahead window per core), so the record
    carries both scheduling modes: the quantum=1 baseline's overhead
    and the adaptive barrier's, plus the round collapse between them.
    """
    program = translate(build("gcd"), level=2).program
    single = PrototypingPlatform(program, backend=BACKEND)
    start = time.perf_counter()
    expected = single.run().observables()
    single_seconds = time.perf_counter() - start

    timings = {}
    rounds = {}
    for quantum in (1, "adaptive"):
        soc = MultiCoreSoC(program, cores=2, backends=BACKEND,
                           quantum=quantum)
        start = time.perf_counter()
        multi = soc.run()
        timings[quantum] = time.perf_counter() - start
        rounds[quantum] = multi.lockstep["rounds"]
        for result in multi.per_core:
            assert result.observables() == expected

    multi_seconds = timings["adaptive"]
    if os.path.exists(RECORD_PATH):
        with open(RECORD_PATH) as handle:
            record = json.load(handle)
    else:  # file-independent when run via -k
        record = {}
    record["lockstep_2core_gcd"] = {
        "single_seconds": round(single_seconds, 4),
        "two_core_seconds": round(multi_seconds, 4),
        "two_core_quantum1_seconds": round(timings[1], 4),
        "rounds_quantum1": rounds[1],
        "rounds_adaptive": rounds["adaptive"],
        "overhead_vs_2x": round(multi_seconds / (2 * single_seconds), 3)
        if single_seconds else None,
    }
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
