"""Shared fixtures for the benchmark suite.

Measurements are computed once per session and shared; each benchmark
file checks the *shape* of one table/figure of the paper and times a
representative kernel.  Full reports (paper vs measured) are written to
``benchmarks/output/``.

``--platform-backend`` selects the platform execution engine used for
the shared measurements (``interp`` or ``compiled``); observables are
identical between the two, so every benchmark assertion holds under
either — the compiled backend just gets there faster.
"""

from __future__ import annotations

import os
import sys

# Collection must work from a bare checkout (no PYTHONPATH): put the
# package directory on the path before the first repro import.
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import glob
import json

import pytest

from repro.eval.experiments import _measure_all
from repro.eval.runner import measure_program
from repro.programs.registry import FIGURE5_PROGRAMS

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: all committed ``BENCH_*.json`` records, snapshotted when pytest
#: imports this conftest — i.e. *before* any recording benchmark
#: overwrites one in the same session, so baseline comparisons always
#: see the committed state.
_BASELINES: dict[str, dict] = {}
for _path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")):
    with open(_path) as _handle:
        _BASELINES[os.path.basename(_path)] = json.load(_handle)


def load_baseline(filename: str) -> dict:
    """The committed ``BENCH_*.json`` baseline (collection-time
    snapshot), or a clean skip — not an error — when it is absent on
    this checkout (fresh clone, record not regenerated yet)."""
    record = _BASELINES.get(filename)
    if record is None:
        pytest.skip(f"baseline {filename} absent on this checkout; run "
                    f"the recording benchmark first and commit it")
    return record


def pytest_addoption(parser):
    from repro.vliw.codegen import backend_names

    parser.addoption(
        "--platform-backend", default="compiled",
        choices=backend_names(),
        help="execution backend for platform measurements")


def write_report(name: str, text: str) -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, name), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def platform_backend(request):
    """The execution backend benchmarks should run the platform with."""
    return request.config.getoption("--platform-backend")


@pytest.fixture(scope="session")
def figure5_measurements(platform_backend):
    """All six Section-4 workloads at every detail level."""
    return _measure_all(FIGURE5_PROGRAMS, (0, 1, 2, 3),
                        backend=platform_backend)


@pytest.fixture(scope="session")
def table2_measurements(platform_backend):
    """The three Table-2 workloads, with RTL wall-clock timing."""
    return {name: measure_program(name, levels=(1, 2, 3), measure_rtl=True,
                                  backend=platform_backend)
            for name in ("gcd", "fibonacci", "sieve")}
