"""Shared fixtures for the benchmark suite.

Measurements are computed once per session and shared; each benchmark
file checks the *shape* of one table/figure of the paper and times a
representative kernel.  Full reports (paper vs measured) are written to
``benchmarks/output/``.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.experiments import _measure_all
from repro.eval.runner import measure_program
from repro.programs.registry import FIGURE5_PROGRAMS

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def write_report(name: str, text: str) -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, name), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def figure5_measurements():
    """All six Section-4 workloads at every detail level."""
    return _measure_all(FIGURE5_PROGRAMS, (0, 1, 2, 3))


@pytest.fixture(scope="session")
def table2_measurements():
    """The three Table-2 workloads, with RTL wall-clock timing."""
    return {name: measure_program(name, levels=(1, 2, 3), measure_rtl=True)
            for name in ("gcd", "fibonacci", "sieve")}
