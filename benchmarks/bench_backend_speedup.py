"""Backend speedup — interpreter vs packet-compiled vs native C.

Times one platform execution of every Figure-5 workload (and, for the
native record, the big kernels) at detail level 3 under every
execution backend, checks they produce identical observables, and
writes speedup records to the repo root:

* ``BENCH_backend.json`` — interp vs packet-compiled (the PR-1 bar:
  compiled >= 3x interp on ``sieve`` at level 3);
* ``BENCH_native.json`` — interp vs packet-compiled vs native
  (three-stage pipeline, C emitter).  The bar: *warm* native at least
  matches *warm* packet-compiled on the big kernels (dct8x8, viterbi,
  crc32), where regions are long and the C body dominates the
  per-region dispatch overhead.  On hosts without a C toolchain the
  record is still written with ``"native_available": false`` and the
  bar is skipped — honest numbers either way.

``cold`` timings include region code generation (and for native the
shared-object compile unless disk-cached); ``warm`` timings reuse the
program-level caches, the steady state for repeated measurement runs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.programs.registry import BIG_KERNELS, FIGURE5_PROGRAMS, build
from repro.translator.driver import translate
from repro.vliw.codegen.native import native_available
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_backend.json")
NATIVE_RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_native.json")
LEVEL = 3


def _timed_run(program, backend):
    platform = PrototypingPlatform(program, backend=backend)
    start = time.perf_counter()
    result = platform.run()
    return time.perf_counter() - start, result


def _measure(program):
    """(interp_best, compiled_cold, compiled_warm, observables_equal)."""
    interp_times = []
    for _ in range(2):
        seconds, interp_result = _timed_run(program, "interp")
        interp_times.append(seconds)
    cold, compiled_result = _timed_run(program, "compiled")
    warm_times = []
    for _ in range(2):
        seconds, compiled_result = _timed_run(program, "compiled")
        warm_times.append(seconds)
    equal = interp_result.observables() == compiled_result.observables()
    return min(interp_times), cold, min(warm_times), equal


def test_backend_speedup_record():
    """Figure-5 sweep at level 3; writes BENCH_backend.json."""
    record = {"level": LEVEL, "programs": {}}
    for name in FIGURE5_PROGRAMS:
        program = translate(build(name), level=LEVEL).program
        interp, cold, warm, equal = _measure(program)
        assert equal, f"{name}: backends disagree on observables"
        record["programs"][name] = {
            "interp_seconds": round(interp, 6),
            "compiled_cold_seconds": round(cold, 6),
            "compiled_warm_seconds": round(warm, 6),
            "speedup_cold": round(interp / cold, 3),
            "speedup_warm": round(interp / warm, 3),
        }
    sieve = record["programs"]["sieve"]
    record["sieve_level3_speedup"] = sieve["speedup_cold"]
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    lines = [f"backend speedup at detail level {LEVEL} "
             f"(interp vs packet-compiled):"]
    for name, row in record["programs"].items():
        lines.append(f"  {name:10s} interp {row['interp_seconds']*1000:8.1f}ms"
                     f"  compiled {row['compiled_cold_seconds']*1000:8.1f}ms"
                     f" (warm {row['compiled_warm_seconds']*1000:8.1f}ms)"
                     f"  speedup {row['speedup_cold']:.2f}x"
                     f" / {row['speedup_warm']:.2f}x")
    write_report("backend_speedup.txt", "\n".join(lines))
    # the acceptance bar: >= 3x on sieve at detail level 3, even paying
    # the one-time compilation cost
    assert sieve["speedup_cold"] >= 3.0, sieve
    assert sieve["speedup_warm"] >= sieve["speedup_cold"]


def test_backend_smoke_gcd():
    """Quick CI smoke: both backends agree on gcd at level 1."""
    program = translate(build("gcd"), level=1).program
    _, interp_result = _timed_run(program, "interp")
    _, compiled_result = _timed_run(program, "compiled")
    assert interp_result.observables() == compiled_result.observables()


def _best_of(program, backend, runs=2):
    times = []
    result = None
    for _ in range(runs):
        seconds, result = _timed_run(program, backend)
        times.append(seconds)
    return min(times), result


def test_native_speedup_record():
    """Figure-5 + big-kernel sweep at level 3 across all three
    backends; writes BENCH_native.json."""
    available = native_available()
    record = {
        "level": LEVEL,
        "native_available": available,
        "programs": {},
    }
    for name in (*FIGURE5_PROGRAMS, *BIG_KERNELS):
        # two independent translations of the same object, so each
        # backend's cold run starts from genuinely empty region caches
        # (a shared program would let whichever backend runs second
        # reuse the first's lowering/source work); translation is
        # deterministic, so observables still compare across the two
        obj = build(name)
        program = translate(obj, level=LEVEL).program
        native_program = translate(obj, level=LEVEL).program
        compiled_cold, compiled_result = _timed_run(program, "compiled")
        compiled_warm, compiled_result = _best_of(program, "compiled")
        # native cold includes codegen + the C compile (or a disk-cache
        # dlopen on repeated benchmark runs)
        native_cold, native_result = _timed_run(native_program, "native")
        native_warm, native_result = _best_of(native_program, "native")
        interp_time, interp_result = _best_of(program, "interp")
        assert (interp_result.observables()
                == compiled_result.observables()
                == native_result.observables()), name
        record["programs"][name] = {
            "interp_seconds": round(interp_time, 6),
            "compiled_cold_seconds": round(compiled_cold, 6),
            "compiled_warm_seconds": round(compiled_warm, 6),
            "native_cold_seconds": round(native_cold, 6),
            "native_warm_seconds": round(native_warm, 6),
            "native_vs_interp_warm": round(interp_time / native_warm, 3),
            "native_vs_compiled_warm": round(
                compiled_warm / native_warm, 3),
        }
    with open(NATIVE_RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    lines = [f"three-stage backend speedup at detail level {LEVEL} "
             f"(interp vs packet-compiled vs native C, "
             f"native_available={available}):"]
    for name, row in record["programs"].items():
        lines.append(
            f"  {name:10s} interp {row['interp_seconds']*1000:8.1f}ms"
            f"  compiled {row['compiled_warm_seconds']*1000:8.1f}ms"
            f"  native {row['native_warm_seconds']*1000:8.1f}ms"
            f"  (native {row['native_vs_interp_warm']:.1f}x interp,"
            f" {row['native_vs_compiled_warm']:.2f}x compiled)")
    write_report("native_speedup.txt", "\n".join(lines))
    if not available:
        pytest.skip("no C toolchain: BENCH_native.json records the "
                    "Python-emitter fallback; speedup bar not applicable")
    # the acceptance bar: warm native at least matches warm
    # packet-compiled on every big kernel
    for name in BIG_KERNELS:
        row = record["programs"][name]
        assert row["native_vs_compiled_warm"] >= 1.0, (name, row)


def test_native_smoke_gcd():
    """Quick CI smoke: native agrees with interp on gcd at level 1."""
    program = translate(build("gcd"), level=1).program
    _, interp_result = _timed_run(program, "interp")
    _, native_result = _timed_run(program, "native")
    assert interp_result.observables() == native_result.observables()
