"""Backend speedup — interpretive core vs packet-compiled host code.

Times one platform execution of every Figure-5 workload at detail
level 3 under both execution backends, checks they produce identical
observables, and writes a ``BENCH_backend.json`` speedup record to the
repo root.  The acceptance bar: the compiled backend is at least 3x
faster than the interpretive core on ``sieve`` at detail level 3.

``cold`` timings include region compilation; ``warm`` timings reuse the
program-level region-code cache, which is the steady state for repeated
measurement runs (the benchmark suite's own usage pattern).
"""

from __future__ import annotations

import json
import os
import time

from repro.programs.registry import FIGURE5_PROGRAMS, build
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_backend.json")
LEVEL = 3


def _timed_run(program, backend):
    platform = PrototypingPlatform(program, backend=backend)
    start = time.perf_counter()
    result = platform.run()
    return time.perf_counter() - start, result


def _measure(program):
    """(interp_best, compiled_cold, compiled_warm, observables_equal)."""
    interp_times = []
    for _ in range(2):
        seconds, interp_result = _timed_run(program, "interp")
        interp_times.append(seconds)
    cold, compiled_result = _timed_run(program, "compiled")
    warm_times = []
    for _ in range(2):
        seconds, compiled_result = _timed_run(program, "compiled")
        warm_times.append(seconds)
    equal = interp_result.observables() == compiled_result.observables()
    return min(interp_times), cold, min(warm_times), equal


def test_backend_speedup_record():
    """Figure-5 sweep at level 3; writes BENCH_backend.json."""
    record = {"level": LEVEL, "programs": {}}
    for name in FIGURE5_PROGRAMS:
        program = translate(build(name), level=LEVEL).program
        interp, cold, warm, equal = _measure(program)
        assert equal, f"{name}: backends disagree on observables"
        record["programs"][name] = {
            "interp_seconds": round(interp, 6),
            "compiled_cold_seconds": round(cold, 6),
            "compiled_warm_seconds": round(warm, 6),
            "speedup_cold": round(interp / cold, 3),
            "speedup_warm": round(interp / warm, 3),
        }
    sieve = record["programs"]["sieve"]
    record["sieve_level3_speedup"] = sieve["speedup_cold"]
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    lines = [f"backend speedup at detail level {LEVEL} "
             f"(interp vs packet-compiled):"]
    for name, row in record["programs"].items():
        lines.append(f"  {name:10s} interp {row['interp_seconds']*1000:8.1f}ms"
                     f"  compiled {row['compiled_cold_seconds']*1000:8.1f}ms"
                     f" (warm {row['compiled_warm_seconds']*1000:8.1f}ms)"
                     f"  speedup {row['speedup_cold']:.2f}x"
                     f" / {row['speedup_warm']:.2f}x")
    write_report("backend_speedup.txt", "\n".join(lines))
    # the acceptance bar: >= 3x on sieve at detail level 3, even paying
    # the one-time compilation cost
    assert sieve["speedup_cold"] >= 3.0, sieve
    assert sieve["speedup_warm"] >= sieve["speedup_cold"]


def test_backend_smoke_gcd():
    """Quick CI smoke: both backends agree on gcd at level 1."""
    program = translate(build("gcd"), level=1).program
    _, interp_result = _timed_run(program, "interp")
    _, compiled_result = _timed_run(program, "compiled")
    assert interp_result.observables() == compiled_result.observables()
