"""Ablation C — synchronization-device generation rate.

The paper's design lets the cycle generation run in parallel with
block execution, removing "the bottleneck of permanent hardware
accesses".  This ablation sweeps the generation rate (emulated cycles
per target cycle): a slow generator turns block-end waits into stalls;
a fast one makes them free — while the *emulated* cycle count (the
accuracy) is unaffected.
"""

from repro.programs.registry import build
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report

RATES = (0.25, 0.5, 1.0, 2.0, 4.0)


def test_sync_rate_sweep():
    obj = build("gcd")
    program = translate(obj, level=1).program
    lines = ["Ablation C — sync-device generation rate sweep (gcd, L1)",
             f"{'rate':>6s} {'target cycles':>14s} {'wait stalls':>12s} "
             f"{'emulated':>9s}"]
    results = {}
    for rate in RATES:
        res = PrototypingPlatform(program, sync_rate=rate).run()
        results[rate] = res
        lines.append(f"{rate:6.2f} {res.target_cycles:14d} "
                     f"{res.core_stats.sync_stall_cycles:12d} "
                     f"{res.emulated_cycles:9d}")
    write_report("ablation_sync_rate.txt", "\n".join(lines))

    # Accuracy is rate-independent; speed is not.
    emulated = {res.emulated_cycles for res in results.values()}
    assert len(emulated) == 1
    assert results[0.25].core_stats.sync_stall_cycles \
        >= results[1.0].core_stats.sync_stall_cycles \
        >= results[4.0].core_stats.sync_stall_cycles
    assert results[0.25].target_cycles >= results[4.0].target_cycles


def test_bench_slow_generator(benchmark):
    obj = build("gcd")
    program = translate(obj, level=1).program
    result = benchmark.pedantic(
        lambda: PrototypingPlatform(program, sync_rate=0.25).run(),
        rounds=3, iterations=1)
    assert result.exit_code is not None
