"""Ablation A — the Section-2 taxonomy of ISS implementations.

Interpretive simulation decodes on every execution; "JIT compiled"
simulation caches decoded instructions; compiled simulation (binary
translation) does all decoding statically.  This ablation measures the
wall-clock throughput of the three styles on the same workload.
"""

import time

from repro.programs.registry import build
from repro.refsim.iss import FunctionalISS, InterpretedISS
from repro.translator.driver import translate
from repro.vliw.platform import PrototypingPlatform

from conftest import write_report


def _throughput(run, instructions):
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    return instructions / elapsed


def test_iss_style_ordering():
    obj = build("sieve")
    count = FunctionalISS(obj).run().instructions

    interp = _throughput(lambda: InterpretedISS(obj).run(), count)
    cached = _throughput(lambda: FunctionalISS(obj).run(), count)

    tr = translate(obj, level=0)
    translated = _throughput(lambda: PrototypingPlatform(tr.program).run(),
                             count)

    report = [
        "Ablation A — ISS implementation styles (host instr/s, sieve)",
        f"interpretive (decode every step):   {interp:12.0f}",
        f"cached decode ('JIT compiled'):     {cached:12.0f}",
        f"compiled (binary translation, sim): {translated:12.0f}",
        "",
        "The paper's Section 2: interpretation is slowest; caching the",
        "decoded form recovers most of the cost; compiled simulation",
        "moves all decode/translation work to compile time (its host",
        "throughput here also pays for simulating the VLIW target).",
    ]
    write_report("ablation_iss_styles.txt", "\n".join(report))

    # The robust claim: caching decode beats re-decoding every step.
    assert cached > 1.5 * interp


def test_bench_interpreted_iss(benchmark):
    obj = build("gcd")
    result = benchmark.pedantic(lambda: InterpretedISS(obj).run(),
                                rounds=3, iterations=1)
    assert result.exit_code is not None


def test_bench_cached_iss(benchmark):
    obj = build("gcd")
    result = benchmark.pedantic(lambda: FunctionalISS(obj).run(),
                                rounds=3, iterations=1)
    assert result.exit_code is not None
