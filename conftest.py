"""Repo-root pytest bootstrap: make ``repro`` importable everywhere.

Tier-1 verify is ``PYTHONPATH=src python -m pytest -x -q``, but the
suite must also collect and run from a bare checkout with
``PYTHONPATH`` unset (``python -m pytest --co`` used to die in
``benchmarks/conftest.py`` with ``ModuleNotFoundError: repro``).
Worker processes spawned by the sharded runner get the same path via
:func:`repro.eval.sharded.child_import_path`, which exports the
package directory through the environment.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
