"""Standard peripherals attached to the SoC bus.

These model the "attached hardware" the paper validates against: simple
devices whose visible behaviour depends on the emulated clock, so the
cycle accuracy of translated code is observable.
"""

from __future__ import annotations

from repro.errors import BusError
from repro.soc.bus import Device
from repro.utils.bits import u32


class Ram(Device):
    """Plain little-endian RAM device."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("RAM size must be positive")
        self.size = size
        self._data = bytearray(size)

    def _check(self, offset: int, size: int) -> None:
        if size not in (1, 2, 4):
            raise BusError(f"unsupported access size {size}")
        if offset < 0 or offset + size > self.size:
            raise BusError("RAM access out of range", offset)

    def read(self, offset: int, size: int, cycle: int) -> int:
        self._check(offset, size)
        return int.from_bytes(self._data[offset:offset + size], "little")

    def write(self, offset: int, value: int, size: int, cycle: int) -> None:
        self._check(offset, size)
        self._data[offset:offset + size] = u32(value).to_bytes(4, "little")[:size]

    def load(self, offset: int, blob: bytes) -> None:
        """Initialize contents (outside of bus traffic)."""
        self._data[offset:offset + len(blob)] = blob

    def image(self) -> bytes:
        return bytes(self._data)


class Rom(Ram):
    """RAM that rejects bus writes (still loadable from the host)."""

    def write(self, offset: int, value: int, size: int, cycle: int) -> None:
        raise BusError("write to ROM", offset)


class ScratchRam(Ram):
    """Small scratch memory used by handshake tests."""


class Uart(Device):
    """Transmit-only UART with a data and a status register.

    * ``+0`` DATA: write transmits the low byte; read returns the next
      byte of the host-provided input queue (0 if empty).
    * ``+4`` STATUS: bit0 = tx ready (always), bit1 = rx available.

    Every transmitted byte is recorded with its cycle stamp so tests can
    assert when (in emulated time) output happened.
    """

    size = 8

    def __init__(self) -> None:
        self.transmitted: list[tuple[int, int]] = []  # (cycle, byte)
        self.rx_queue: list[int] = []

    @property
    def output(self) -> bytes:
        return bytes(byte for _cycle, byte in self.transmitted)

    def feed(self, data: bytes) -> None:
        """Queue host input for the program to read."""
        self.rx_queue.extend(data)

    def read(self, offset: int, size: int, cycle: int) -> int:
        if offset == 0:
            return self.rx_queue.pop(0) if self.rx_queue else 0
        if offset == 4:
            return 0x1 | (0x2 if self.rx_queue else 0x0)
        raise BusError("invalid UART register", offset)

    def write(self, offset: int, value: int, size: int, cycle: int) -> None:
        if offset == 0:
            self.transmitted.append((cycle, value & 0xFF))
            return
        raise BusError("invalid UART register write", offset)


class CycleTimer(Device):
    """Free-running counter of emulated clock cycles.

    Programs read ``+0`` to observe the emulated time.  This is the
    most direct cycle-accuracy probe: a translated program must read
    (approximately) the same timer values as the reference processor.
    Writing ``+4`` latches the current cycle into a capture register
    readable at ``+4``.
    """

    size = 8

    def __init__(self) -> None:
        self._capture = 0

    def read(self, offset: int, size: int, cycle: int) -> int:
        if offset == 0:
            return u32(cycle)
        if offset == 4:
            return u32(self._capture)
        raise BusError("invalid timer register", offset)

    def write(self, offset: int, value: int, size: int, cycle: int) -> None:
        if offset == 4:
            self._capture = cycle
            return
        raise BusError("invalid timer register write", offset)


class CoreIdDevice(Device):
    """Identification register pair: which core am I, of how many.

    * ``+0`` reads the core index this partition belongs to;
    * ``+4`` reads the total core count of the SoC.

    Shared-device workloads read these to pick their role (producer,
    consumer, barrier coordinator) from one unmodified binary.  The
    single-core platform maps ``CoreIdDevice(0, 1)``.
    """

    size = 8

    def __init__(self, index: int, total: int) -> None:
        self.index = index
        self.total = total

    def read(self, offset: int, size: int, cycle: int) -> int:
        if offset == 0:
            return u32(self.index)
        if offset == 4:
            return u32(self.total)
        raise BusError("invalid core-id register", offset)


class GlobalCycleTimer(Device):
    """Free-running counter of the *global* SoC timebase.

    The per-core :class:`CycleTimer` reports the accessing core's own
    emulated clock; this device instead reports the lockstep
    scheduler's global cycle (the minimum target-cycle count across
    running cores, advanced once per arbitration round by
    :class:`~repro.vliw.multicore.MultiCoreSoC`).  Reading ``+0``
    returns the global cycle; writing ``+4`` latches it into a capture
    register readable at ``+4``.
    """

    size = 8

    def __init__(self) -> None:
        self.now = 0  # updated by the lockstep scheduler each round
        self._capture = 0

    def read(self, offset: int, size: int, cycle: int) -> int:
        if offset == 0:
            return u32(self.now)
        if offset == 4:
            return u32(self._capture)
        raise BusError("invalid global timer register", offset)

    def write(self, offset: int, value: int, size: int, cycle: int) -> None:
        if offset == 4:
            self._capture = self.now
            return
        raise BusError("invalid global timer register write", offset)


class Mailbox(Device):
    """Inter-core doorbell: MAX_CORES x MAX_CORES word-deep FIFOs.

    Slot ``(sender, receiver)`` occupies ``SLOT_STRIDE`` bytes at
    ``(sender * MAX_CORES + receiver) * SLOT_STRIDE``:

    * ``+0`` DATA: write pushes a word (an already-full slot is
      overwritten and counted in :attr:`overruns`); read pops the word
      and clears the full flag (an empty slot reads 0 — mailbox reads
      never block);
    * ``+4`` STATUS: bit0 = full.  Readable without blocking, so
      producers poll for space and consumers poll for data.

    The slot stride is fixed at :attr:`MAX_CORES` regardless of the
    actual core count, so mailbox addresses in program source do not
    depend on the SoC configuration.
    """

    MAX_CORES = 16
    SLOT_STRIDE = 8

    size = MAX_CORES * MAX_CORES * SLOT_STRIDE

    def __init__(self) -> None:
        slots = self.MAX_CORES * self.MAX_CORES
        self._data = [0] * slots
        self._full = [False] * slots
        self.pushes = 0
        self.pops = 0
        self.empty_reads = 0
        self.overruns = 0

    def _slot(self, offset: int) -> tuple[int, int]:
        if offset < 0 or offset >= self.size:
            raise BusError("mailbox access out of range", offset)
        return divmod(offset, self.SLOT_STRIDE)

    def full(self, sender: int, receiver: int) -> bool:
        """Host-side view of one slot's full flag (tests, debugger)."""
        return self._full[sender * self.MAX_CORES + receiver]

    def read(self, offset: int, size: int, cycle: int) -> int:
        slot, reg = self._slot(offset)
        if reg == 0:
            if not self._full[slot]:
                self.empty_reads += 1
                return 0
            self._full[slot] = False
            self.pops += 1
            return self._data[slot]
        if reg == 4:
            return 1 if self._full[slot] else 0
        raise BusError("invalid mailbox register", offset)

    def write(self, offset: int, value: int, size: int, cycle: int) -> None:
        slot, reg = self._slot(offset)
        if reg == 0:
            if self._full[slot]:
                self.overruns += 1
            self._data[slot] = u32(value)
            self._full[slot] = True
            self.pushes += 1
            return
        raise BusError("invalid mailbox register write", offset)


class ExitDevice(Device):
    """Write-to-exit device: the program stores its exit code here.

    Simulators poll :attr:`exited`/:attr:`code` after each access.
    """

    size = 4

    def __init__(self) -> None:
        self.exited = False
        self.code: int | None = None
        self.exit_cycle: int | None = None

    def write(self, offset: int, value: int, size: int, cycle: int) -> None:
        if offset != 0:
            raise BusError("invalid exit register", offset)
        self.exited = True
        self.code = u32(value)
        self.exit_cycle = cycle

    def read(self, offset: int, size: int, cycle: int) -> int:
        if offset != 0:
            raise BusError("invalid exit register", offset)
        return u32(self.code or 0)
