"""Greedy structural shrinking of failing generated programs.

Given a :class:`~repro.fuzz.progen.GenProgram` and a predicate that
re-runs the oracle, the shrinker tries a fixed repertoire of
semantics-shrinking (not semantics-preserving — any still-failing
program is a valid reproducer) transformations until none applies or
the attempt budget runs out:

1. drop whole helper functions (and the calls into them) and global
   array initializers;
2. delete statements, one at a time, innermost blocks first;
3. hoist an ``if`` branch or a loop body in place of the construct;
4. reduce loop trip counts to 1;
5. replace expression operands with the constant 0.

Each candidate mutates a deep copy, so the original program object is
never changed; the smallest still-failing program found is returned.
The walk is deterministic, so one failing seed always shrinks to the
same reproducer.
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.fuzz.progen import (
    EBin,
    EIndex,
    ENum,
    EUn,
    GenProgram,
    SAssign,
    SCall,
    SFor,
    SIf,
    SIoWrite,
    SStore,
    SWhile,
    Stmt,
)


def _blocks(program: GenProgram) -> list[list[Stmt]]:
    """Every statement list of the program, innermost first."""
    found: list[list[Stmt]] = []

    def walk(block: list[Stmt]) -> None:
        for stmt in block:
            if isinstance(stmt, SIf):
                walk(stmt.then)
                walk(stmt.els)
            elif isinstance(stmt, (SFor, SWhile)):
                walk(stmt.body)
        found.append(block)

    for func in program.funcs:
        walk(func.body)
    walk(program.main_body)
    return found


def _exprs(stmt: Stmt) -> list[tuple[object, str]]:
    """(owner, attribute) pairs of the statement's direct expressions."""
    if isinstance(stmt, SAssign):
        return [(stmt, "value")]
    if isinstance(stmt, SStore):
        return [(stmt, "index"), (stmt, "value")]
    if isinstance(stmt, SIoWrite):
        return [(stmt, "value")]
    if isinstance(stmt, SIf):
        return [(stmt, "cond")]
    return []


def _expr_sites(expr, owner, attr, out) -> None:
    """Collect (owner, attr) slots holding non-constant subexpressions."""
    if isinstance(expr, ENum):
        return
    out.append((owner, attr))
    if isinstance(expr, EBin):
        _expr_sites(expr.left, expr, "left", out)
        _expr_sites(expr.right, expr, "right", out)
    elif isinstance(expr, EUn):
        _expr_sites(expr.operand, expr, "operand", out)
    elif isinstance(expr, EIndex):
        _expr_sites(expr.index, expr, "index", out)


def _valid(program: GenProgram) -> bool:
    """Reject mutants whose break/continue escaped every loop."""
    from repro.fuzz.progen import SBreak, SContinue

    def walk(block: list[Stmt], loop_depth: int) -> bool:
        for stmt in block:
            if isinstance(stmt, (SBreak, SContinue)) and loop_depth == 0:
                return False
            if isinstance(stmt, SIf):
                if not walk(stmt.then, loop_depth) \
                        or not walk(stmt.els, loop_depth):
                    return False
            elif isinstance(stmt, (SFor, SWhile)):
                if not walk(stmt.body, loop_depth + 1):
                    return False
        return True

    return all(walk(f.body, 0) for f in program.funcs) \
        and walk(program.main_body, 0)


class _Budget:
    def __init__(self, attempts: int) -> None:
        self.left = attempts

    def spend(self) -> bool:
        self.left -= 1
        return self.left >= 0


def _size(program: GenProgram) -> int:
    return len(program.render())


def shrink(program: GenProgram,
           still_fails: Callable[[GenProgram], bool],
           max_attempts: int = 400) -> GenProgram:
    """Smallest still-failing variant of *program* found within budget."""
    best = copy.deepcopy(program)
    budget = _Budget(max_attempts)

    def attempt(candidate: GenProgram) -> bool:
        nonlocal best
        if not budget.spend():
            return False
        if not _valid(candidate) or _size(candidate) >= _size(best):
            return False
        if still_fails(candidate):
            best = candidate
            return True
        return False

    progress = True
    while progress and budget.left > 0:
        progress = False

        # 1. drop helper functions entirely
        for index in range(len(best.funcs) - 1, -1, -1):
            candidate = copy.deepcopy(best)
            dropped = candidate.funcs.pop(index).name
            for block in _blocks(candidate):
                block[:] = [s for s in block
                            if not (isinstance(s, SCall)
                                    and s.func == dropped)]
            if attempt(candidate):
                progress = True

        # 1b. drop array initializers (zero-filled arrays are smaller)
        for index, array in enumerate(best.arrays):
            if array.init is not None:
                candidate = copy.deepcopy(best)
                candidate.arrays[index].init = None
                if attempt(candidate):
                    progress = True

        # 2. delete statements one at a time, innermost blocks first.
        # Every successful deletion changes the block structure, so the
        # walk restarts from fresh indices after each hit.
        changed = True
        while changed and budget.left > 0:
            changed = False
            for b_index, block in enumerate(_blocks(best)):
                for s_index in range(len(block) - 1, -1, -1):
                    candidate = copy.deepcopy(best)
                    del _blocks(candidate)[b_index][s_index]
                    if attempt(candidate):
                        progress = True
                        changed = True
                        break
                if changed:
                    break

        # 3. hoist branch/loop bodies over their construct (restart on
        # every hit for the same index-staleness reason)
        changed = True
        while changed and budget.left > 0:
            changed = False
            for b_index, block in enumerate(_blocks(best)):
                for s_index, stmt in enumerate(block):
                    replacements: list[list[Stmt]] = []
                    if isinstance(stmt, SIf):
                        replacements = [stmt.then, stmt.els]
                    elif isinstance(stmt, (SFor, SWhile)):
                        replacements = [stmt.body]
                    for replacement in replacements:
                        candidate = copy.deepcopy(best)
                        target = _blocks(candidate)[b_index]
                        target[s_index:s_index + 1] = \
                            copy.deepcopy(replacement)
                        if attempt(candidate):
                            progress = True
                            changed = True
                            break
                    if changed:
                        break
                if changed:
                    break

        # 4. reduce loop trip counts to 1
        for b_index, block in enumerate(_blocks(best)):
            for s_index, stmt in enumerate(block):
                if isinstance(stmt, (SFor, SWhile)) and stmt.count > 1:
                    candidate = copy.deepcopy(best)
                    _blocks(candidate)[b_index][s_index].count = 1
                    if attempt(candidate):
                        progress = True

        # 5. zero out expression operands
        for b_index, block in enumerate(_blocks(best)):
            for s_index, stmt in enumerate(block):
                sites: list[tuple[object, str]] = []
                for owner, attr in _exprs(stmt):
                    _expr_sites(getattr(owner, attr), owner, attr, sites)
                for site_index in range(len(sites)):
                    candidate = copy.deepcopy(best)
                    cand_stmt = _blocks(candidate)[b_index][s_index]
                    cand_sites: list[tuple[object, str]] = []
                    for owner, attr in _exprs(cand_stmt):
                        _expr_sites(getattr(owner, attr), owner, attr,
                                    cand_sites)
                    if site_index >= len(cand_sites):
                        continue  # an earlier hit shrank this statement
                    owner, attr = cand_sites[site_index]
                    setattr(owner, attr, ENum(0))
                    if attempt(candidate):
                        progress = True
    return best
