"""Differential oracle: one program, every execution configuration.

The oracle compiles a minic source once and then demands *bit-identical
observables* from every way the repository can execute it:

* the interpretive vs the packet-compiled platform backend, at every
  requested detail level (full :meth:`PlatformResult.observables`
  comparison — cycle counts, emulated clock, data image, UART bytes,
  cycle-stamped bus trace, exit code, statistics);
* one core vs every core of an N-core lockstep
  :class:`~repro.vliw.multicore.MultiCoreSoC` (mixed per-core
  backends, so one SoC run covers both backends);
* the platform vs the reference ISS on the functional observables
  (exit code, data image, UART bytes), and — when the caller supplies
  them — vs the generator's independently predicted exit checksum and
  UART stream.

Any exception raised by the frontend, translator or a simulator is
itself a verdict (kind ``crash``), so the fuzzer catches aborts as
well as silent divergence.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.vliw.codegen.tiering import TierConfig

#: thresholds the oracle uses for ``tiered`` sweeps unless the caller
#: overrides them: low enough that promotion (interp -> Python ->
#: native superblock) happens *mid-program* even on short fuzz
#: programs, which is the interesting surface — a threshold the
#: program never reaches would silently test only the cold stub.
AGGRESSIVE_TIER = TierConfig(promote_python=2, promote_native=4)

#: observable fields that must match the *reference ISS* (functional
#: equivalence); timing fields are compared only platform-vs-platform.
_FUNCTIONAL_FIELDS = ("exit_code", "data_image", "uart_output")


@dataclass(frozen=True)
class FuzzConfig:
    """What the oracle sweeps for each program."""

    levels: tuple[int, ...] = (0, 1, 2, 3)
    backends: tuple[str, ...] = ("interp", "compiled")
    cores: int = 2
    #: intra-SoC lockstep scheduling mode for the multi-core sweep
    #: member ("adaptive" or a fixed integer quantum)
    quantum: int | str = "adaptive"
    max_instructions: int = 2_000_000
    max_cycles: int = 20_000_000
    #: ladder thresholds for ``tiered`` sweep members; None picks
    #: :data:`AGGRESSIVE_TIER` so promotions fire mid-program
    tier: TierConfig | None = None

    def resolved_tier(self) -> TierConfig:
        return self.tier if self.tier is not None else AGGRESSIVE_TIER


@dataclass
class Mismatch:
    """One divergence between two execution configurations."""

    kind: str  # 'frontend' | 'crash' | 'reference' | 'predicted' |
    #            'backend' | 'multicore'
    config: str  # human-readable configuration, e.g. 'L2 interp vs compiled'
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.config}: {self.detail}"


@dataclass
class Verdict:
    """The oracle's result for one program."""

    ok: bool
    mismatches: list[Mismatch] = field(default_factory=list)
    exit_code: int | None = None
    levels_checked: tuple[int, ...] = ()

    def summary(self) -> str:
        if self.ok:
            return f"ok (exit {self.exit_code})"
        return "; ".join(str(m) for m in self.mismatches)


def _diff_observables(a: dict, b: dict) -> str:
    """Name the observable fields that differ (values elided if long)."""
    parts = []
    for key in a:
        if a[key] != b[key]:
            va, vb = a[key], b[key]
            rendered = f"{va!r} != {vb!r}"
            if len(rendered) > 120:
                rendered = "values differ"
            parts.append(f"{key}: {rendered}")
    return "; ".join(parts) or "dicts differ in keys"


def _core_mix(backends: tuple[str, ...], cores: int) -> tuple[str, ...]:
    """Per-core backend assignment cycling through every backend."""
    return tuple(backends[i % len(backends)] for i in range(cores))


def check_source(source: str,
                 expected_exit: int | None = None,
                 expected_uart: bytes | None = None,
                 config: FuzzConfig | None = None) -> Verdict:
    """Run the full differential sweep over one minic source."""
    config = config or FuzzConfig()
    verdict = Verdict(ok=True, levels_checked=config.levels)

    def fail(kind: str, where: str, detail: str) -> None:
        verdict.ok = False
        verdict.mismatches.append(Mismatch(kind, where, detail))

    from repro.minic.compiler import compile_source

    try:
        obj = compile_source(source)
    except ReproError as exc:
        fail("frontend", "compile", str(exc))
        return verdict
    except Exception as exc:  # a frontend abort is a finding, not a crash
        fail("crash", "compile", f"{type(exc).__name__}: {exc}")
        return verdict

    from repro.refsim.iss import FunctionalISS

    try:
        reference = FunctionalISS(obj).run(
            max_instructions=config.max_instructions)
    except Exception as exc:
        fail("crash", "reference ISS", f"{type(exc).__name__}: {exc}")
        return verdict
    verdict.exit_code = reference.exit_code

    if expected_exit is not None and reference.exit_code != expected_exit:
        fail("predicted", "reference ISS",
             f"exit {reference.exit_code} != predicted {expected_exit}")
    if expected_uart is not None and reference.uart_output != expected_uart:
        fail("predicted", "reference ISS",
             f"uart {reference.uart_output!r} != predicted "
             f"{expected_uart!r}")

    from repro.translator.driver import translate
    from repro.vliw.platform import PrototypingPlatform

    for level in config.levels:
        try:
            program = translate(obj, level=level).program
        except Exception as exc:
            fail("crash", f"translate L{level}",
                 f"{type(exc).__name__}: {exc}")
            continue

        by_backend: dict[str, dict] = {}
        for backend in config.backends:
            where = f"L{level} {backend}"
            try:
                result = PrototypingPlatform(
                    program, backend=backend,
                    tier=config.resolved_tier()).run(
                        max_cycles=config.max_cycles)
            except Exception as exc:
                fail("crash", where, f"{type(exc).__name__}: {exc}")
                continue
            obs = result.observables()
            by_backend[backend] = obs
            for fld in _FUNCTIONAL_FIELDS:
                if obs[fld] != getattr(reference, fld):
                    fail("reference", f"{where} vs ISS",
                         _diff_observables(
                             {fld: obs[fld]},
                             {fld: getattr(reference, fld)}))

        backends_seen = [b for b in config.backends if b in by_backend]
        for other in backends_seen[1:]:
            base = backends_seen[0]
            if by_backend[other] != by_backend[base]:
                fail("backend", f"L{level} {base} vs {other}",
                     _diff_observables(by_backend[base], by_backend[other]))

        if config.cores > 1 and backends_seen:
            from repro.vliw.multicore import MultiCoreSoC

            mix = _core_mix(tuple(backends_seen), config.cores)
            where = f"L{level} {config.cores}-core {'/'.join(mix)}"
            try:
                multi = MultiCoreSoC(program, cores=config.cores,
                                     backends=mix,
                                     quantum=config.quantum,
                                     tier=config.resolved_tier()).run(
                                         max_cycles=config.max_cycles)
            except Exception as exc:
                fail("crash", where, f"{type(exc).__name__}: {exc}")
                continue
            for index, backend in enumerate(mix):
                single = by_backend.get(backend)
                if single is None:
                    continue
                core_obs = multi.per_core[index].observables()
                if core_obs != single:
                    fail("multicore", f"{where} core{index} vs single",
                         _diff_observables(single, core_obs))
    return verdict


def check_generated(program, config: FuzzConfig | None = None) -> Verdict:
    """Oracle sweep of a :class:`~repro.fuzz.progen.GenProgram`."""
    try:
        expected_exit, expected_uart = program.evaluate()
        source = program.render()
    except Exception:  # a generator bug is a finding, not an abort
        verdict = Verdict(ok=False)
        verdict.mismatches.append(Mismatch(
            "crash", "mirror", traceback.format_exc(limit=3)))
        return verdict
    return check_source(source, expected_exit=expected_exit,
                        expected_uart=expected_uart, config=config)
