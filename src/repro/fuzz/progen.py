"""Seeded structured random minic program generator.

Every generated program is drawn from a grammar restricted to
constructs whose semantics this module can mirror *exactly* in Python
(32-bit two's-complement arithmetic, arithmetic right shifts,
C-truncating division, sign-extending char loads), so each program
carries an independently computed expected exit checksum and expected
UART byte stream — the registry's pure-Python-reference idiom, applied
to an unbounded program population.

Hard generation invariants:

* **termination** — every loop has a constant trip count (``for``
  counts up or down over a dedicated induction variable no other
  statement may write; ``while`` loops increment their counter as the
  first statement of the body, so ``continue`` can never skip it);
* **totality** — divisors are forced odd (``| 1``), shift amounts are
  masked to 0..15, array indices are masked to the power-of-two array
  size, so no generated expression can trap or leave the data image;
* **self-checking** — ``main`` folds every scalar local and every
  global array into a multiplicative checksum and returns it, so any
  state divergence between two executions surfaces in the exit code
  even when intermediate observables are not compared.

The generator is deterministic: ``generate(seed, index)`` always
returns byte-identical source for the same ``(seed, index)`` pair (the
RNG is seeded with a string key, which :class:`random.Random` hashes
stably across processes and Python versions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.utils.bits import s32, u32

#: UART transmit data register (matches ``IoMap.uart`` on the SoC bus).
UART_ADDR = 0xF000_0000

#: interesting constants the expression grammar draws leaves from.
_CONST_POOL = (
    0, 1, 2, 3, 5, 7, 8, 13, 15, 16, 31, 63, 100, 255, 256, 999,
    4096, 32767, 65535, 1103515245, 0x7FFFFFF1,
    -1, -2, -7, -128, -999, -65536,
)

_ARRAY_SIZES = (8, 16, 32, 64)

_BIN_ARITH = ("+", "-", "*", "&", "|", "^", "<<", ">>")
_BIN_CMP = ("==", "!=", "<", ">", "<=", ">=")
_BIN_LOGIC = ("&&", "||")
_ASSIGN_OPS = ("=", "=", "=", "+=", "-=", "*=", "&=", "|=", "^=")


class FuzzGenError(Exception):
    """Internal invariant violation in the generator or its mirror."""


def _c_div(a: int, b: int) -> int:
    """C-truncating 32-bit division (mirrors the ``__div`` routine)."""
    au = abs(a) & 0xFFFFFFFF
    bu = abs(b) & 0xFFFFFFFF
    q = au // bu
    if (a < 0) != (b < 0):
        q = -q
    return s32(u32(q))


def _c_mod(a: int, b: int) -> int:
    """C remainder: takes the dividend's sign (mirrors ``__mod``)."""
    au = abs(a) & 0xFFFFFFFF
    bu = abs(b) & 0xFFFFFFFF
    r = au % bu
    if a < 0:
        r = -r
    return s32(u32(r))


def _sext8(value: int) -> int:
    value &= 0xFF
    return value - 256 if value >= 128 else value


# ---------------------------------------------------------------------------
# expression nodes
# ---------------------------------------------------------------------------


class Expr:
    __slots__ = ()


@dataclass
class ENum(Expr):
    value: int

    def render(self) -> str:
        return str(self.value) if self.value >= 0 else f"({self.value})"


@dataclass
class EVar(Expr):
    name: str

    def render(self) -> str:
        return self.name


@dataclass
class EIndex(Expr):
    array: str
    mask: int  # size - 1 of the (power-of-two sized) array
    index: Expr

    def render(self) -> str:
        return f"{self.array}[({self.index.render()}) & {self.mask}]"


@dataclass
class EUn(Expr):
    op: str  # - ~ !
    operand: Expr

    def render(self) -> str:
        return f"({self.op}({self.operand.render()}))"


@dataclass
class EBin(Expr):
    op: str
    left: Expr
    right: Expr

    def render(self) -> str:
        lhs = self.left.render()
        rhs = self.right.render()
        if self.op in ("<<", ">>"):
            rhs = f"(({rhs}) & 15)"
        elif self.op in ("/", "%"):
            rhs = f"(({rhs}) | 1)"
        return f"({lhs} {self.op} {rhs})"


# ---------------------------------------------------------------------------
# statement nodes
# ---------------------------------------------------------------------------


class Stmt:
    __slots__ = ()


@dataclass
class SAssign(Stmt):
    var: str
    op: str
    value: Expr

    def render(self, ind: str) -> list[str]:
        return [f"{ind}{self.var} {self.op} {self.value.render()};"]


@dataclass
class SStore(Stmt):
    array: str
    mask: int
    index: Expr
    value: Expr

    def render(self, ind: str) -> list[str]:
        return [f"{ind}{self.array}[({self.index.render()}) & {self.mask}]"
                f" = {self.value.render()};"]


@dataclass
class SIoWrite(Stmt):
    value: Expr

    def render(self, ind: str) -> list[str]:
        return [f"{ind}__io_write({UART_ADDR:#x}, "
                f"({self.value.render()}) & 255);"]


@dataclass
class SCall(Stmt):
    var: str
    func: str
    args: list[Expr]

    def render(self, ind: str) -> list[str]:
        args = ", ".join(a.render() for a in self.args)
        return [f"{ind}{self.var} = {self.func}({args});"]


@dataclass
class SIf(Stmt):
    cond: Expr
    then: list[Stmt]
    els: list[Stmt]

    def render(self, ind: str) -> list[str]:
        lines = [f"{ind}if ({self.cond.render()}) {{"]
        lines += _render_block(self.then, ind + "    ")
        if self.els:
            lines.append(f"{ind}}} else {{")
            lines += _render_block(self.els, ind + "    ")
        lines.append(f"{ind}}}")
        return lines


@dataclass
class SFor(Stmt):
    var: str
    count: int
    down: bool
    body: list[Stmt]

    def render(self, ind: str) -> list[str]:
        if self.down:
            head = (f"{ind}for ({self.var} = {self.count}; {self.var} > 0; "
                    f"{self.var} -= 1) {{")
        else:
            head = (f"{ind}for ({self.var} = 0; {self.var} < {self.count}; "
                    f"{self.var} += 1) {{")
        return [head, *_render_block(self.body, ind + "    "), f"{ind}}}"]


@dataclass
class SWhile(Stmt):
    var: str
    count: int
    body: list[Stmt]

    def render(self, ind: str) -> list[str]:
        # The counter increments first, so `continue` cannot skip it.
        lines = [f"{ind}{self.var} = 0;",
                 f"{ind}while ({self.var} < {self.count}) {{",
                 f"{ind}    {self.var} += 1;"]
        lines += _render_block(self.body, ind + "    ")
        lines.append(f"{ind}}}")
        return lines


@dataclass
class SBreak(Stmt):
    def render(self, ind: str) -> list[str]:
        return [f"{ind}break;"]


@dataclass
class SContinue(Stmt):
    def render(self, ind: str) -> list[str]:
        return [f"{ind}continue;"]


def _render_block(stmts: list[Stmt], ind: str) -> list[str]:
    lines: list[str] = []
    for stmt in stmts:
        lines += stmt.render(ind)
    if not stmts:
        lines.append(f"{ind};")
    return lines


# ---------------------------------------------------------------------------
# program structure
# ---------------------------------------------------------------------------


@dataclass
class GArray:
    name: str
    ctype: str  # 'int' | 'char'
    size: int
    init: list[int] | None  # None = zero-filled

    def render(self) -> list[str]:
        if self.init is None:
            return [f"{self.ctype} {self.name}[{self.size}];"]
        body = ", ".join(str(v) for v in self.init)
        return [f"{self.ctype} {self.name}[{self.size}] = {{ {body} }};"]


@dataclass
class GFunc:
    name: str
    params: list[str]
    locals_: dict[str, int]
    body: list[Stmt]
    ret: Expr

    def render(self) -> list[str]:
        params = ", ".join(f"int {p}" for p in self.params)
        lines = [f"int {self.name}({params}) {{"]
        for name, init in self.locals_.items():
            lines.append(f"    int {name} = {init};")
        lines += _render_block(self.body, "    ")
        lines.append(f"    return {self.ret.render()};")
        lines.append("}")
        return lines


@dataclass
class GenProgram:
    """One generated program: AST plus derived source and expectations."""

    key: str
    arrays: list[GArray]
    funcs: list[GFunc]
    main_locals: dict[str, int] = field(default_factory=dict)
    main_body: list[Stmt] = field(default_factory=list)
    loop_vars: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"/* generated by repro.fuzz.progen ({self.key}) */", ""]
        for array in self.arrays:
            lines += array.render()
        lines.append("")
        for func in self.funcs:
            lines += func.render()
            lines.append("")
        lines.append("int main() {")
        for name, init in self.main_locals.items():
            lines.append(f"    int {name} = {init};")
        for var in self.loop_vars:
            lines.append(f"    int {var} = 0;")
        lines.append("    int chk = 0;")
        lines.append("    int zz = 0;")
        lines += _render_block(self.main_body, "    ")
        for name in self.main_locals:
            lines.append(f"    chk = chk * 31 + {name};")
        for array in self.arrays:
            lines.append(f"    for (zz = 0; zz < {array.size}; zz += 1) {{")
            lines.append(f"        chk = chk * 31 + {array.name}[zz];")
            lines.append("    }")
        lines.append("    return chk & 255;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def evaluate(self) -> tuple[int, bytes]:
        """Mirror execution: (expected exit code, expected UART bytes)."""
        return _Eval(self).run()


# ---------------------------------------------------------------------------
# the mirror interpreter
# ---------------------------------------------------------------------------


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Eval:
    """Executes the program AST with exact target semantics."""

    #: statement/expression evaluation budget; generated programs are
    #: bounded by construction, so running out means a generator bug.
    FUEL = 4_000_000

    def __init__(self, program: GenProgram) -> None:
        self.program = program
        self.funcs = {f.name: f for f in program.funcs}
        self.arrays = {}
        self.kinds = {}
        for array in program.arrays:
            values = list(array.init) if array.init is not None else []
            values += [0] * (array.size - len(values))
            if array.ctype == "char":
                values = [v & 0xFF for v in values]
            else:
                values = [s32(u32(v)) for v in values]
            self.arrays[array.name] = values
            self.kinds[array.name] = array.ctype
        self.uart = bytearray()
        self.fuel = self.FUEL

    def run(self) -> tuple[int, bytes]:
        env = {name: s32(u32(init))
               for name, init in self.program.main_locals.items()}
        for var in self.program.loop_vars:
            env[var] = 0
        self.exec_block(self.program.main_body, env)
        chk = 0
        for name in self.program.main_locals:
            chk = s32(chk * 31 + env[name])
        for array in self.program.arrays:
            for value in self.arrays[array.name]:
                if array.ctype == "char":
                    value = _sext8(value)
                chk = s32(chk * 31 + value)
        return chk & 255, bytes(self.uart)

    def _burn(self) -> None:
        self.fuel -= 1
        if self.fuel <= 0:
            raise FuzzGenError("evaluation budget exhausted — the "
                               "generator emitted an unbounded program")

    # -- statements -----------------------------------------------------

    def exec_block(self, stmts: list[Stmt], env: dict) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: Stmt, env: dict) -> None:
        self._burn()
        if isinstance(stmt, SAssign):
            value = self.eval(stmt.value, env)
            if stmt.op == "=":
                env[stmt.var] = value
            else:
                env[stmt.var] = self._apply(stmt.op[:-1], env[stmt.var],
                                            stmt.value, value)
            return
        if isinstance(stmt, SStore):
            index = self.eval(stmt.index, env) & stmt.mask
            value = self.eval(stmt.value, env)
            if self.kinds[stmt.array] == "char":
                self.arrays[stmt.array][index] = value & 0xFF
            else:
                self.arrays[stmt.array][index] = value
            return
        if isinstance(stmt, SIoWrite):
            self.uart.append(self.eval(stmt.value, env) & 255)
            return
        if isinstance(stmt, SCall):
            env[stmt.var] = self.call(stmt.func,
                                      [self.eval(a, env) for a in stmt.args])
            return
        if isinstance(stmt, SIf):
            branch = stmt.then if self.eval(stmt.cond, env) else stmt.els
            self.exec_block(branch, env)
            return
        if isinstance(stmt, SFor):
            iters = (range(stmt.count, 0, -1) if stmt.down
                     else range(stmt.count))
            for value in iters:
                env[stmt.var] = value
                try:
                    self.exec_block(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
            else:
                # the loop variable holds its final header value
                env[stmt.var] = 0 if stmt.down else stmt.count
            return
        if isinstance(stmt, SWhile):
            env[stmt.var] = 0
            while env[stmt.var] < stmt.count:
                env[stmt.var] = s32(env[stmt.var] + 1)
                try:
                    self.exec_block(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
            return
        if isinstance(stmt, SBreak):
            raise _Break()
        if isinstance(stmt, SContinue):
            raise _Continue()
        raise FuzzGenError(f"unknown statement {type(stmt).__name__}")

    def call(self, name: str, args: list[int]) -> int:
        func = self.funcs[name]
        env = dict(zip(func.params, args))
        for local, init in func.locals_.items():
            env[local] = s32(u32(init))
        self.exec_block(func.body, env)
        return self.eval(func.ret, env)

    # -- expressions ----------------------------------------------------

    def eval(self, expr: Expr, env: dict) -> int:
        self._burn()
        if isinstance(expr, ENum):
            return s32(u32(expr.value))
        if isinstance(expr, EVar):
            return env[expr.name]
        if isinstance(expr, EIndex):
            index = self.eval(expr.index, env) & expr.mask
            value = self.arrays[expr.array][index]
            if self.kinds[expr.array] == "char":
                value = _sext8(value)
            return value
        if isinstance(expr, EUn):
            value = self.eval(expr.operand, env)
            if expr.op == "-":
                return s32(u32(-value))
            if expr.op == "~":
                return s32(u32(~value))
            return 0 if value else 1
        if isinstance(expr, EBin):
            left = self.eval(expr.left, env)
            if expr.op in _BIN_LOGIC:
                if expr.op == "&&":
                    return int(bool(left) and bool(self.eval(expr.right,
                                                             env)))
                return int(bool(left) or bool(self.eval(expr.right, env)))
            right = self.eval(expr.right, env)
            return self._binop(expr.op, left, right)
        raise FuzzGenError(f"unknown expression {type(expr).__name__}")

    def _apply(self, op: str, left: int, rhs_expr: Expr, right: int) -> int:
        return self._binop(op, left, right)

    def _binop(self, op: str, a: int, b: int) -> int:
        if op == "+":
            return s32(u32(a + b))
        if op == "-":
            return s32(u32(a - b))
        if op == "*":
            return s32(u32(a * b))
        if op == "&":
            return s32(u32(a) & u32(b))
        if op == "|":
            return s32(u32(a) | u32(b))
        if op == "^":
            return s32(u32(a) ^ u32(b))
        if op == "<<":
            return s32(u32(a << (b & 15)))
        if op == ">>":
            return a >> (b & 15)
        if op == "/":
            return _c_div(a, b | 1)
        if op == "%":
            return _c_mod(a, b | 1)
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        if op == "<":
            return int(a < b)
        if op == ">":
            return int(a > b)
        if op == "<=":
            return int(a <= b)
        if op == ">=":
            return int(a >= b)
        raise FuzzGenError(f"unknown operator {op!r}")


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


class _Gen:
    """One generation run (one program) off a seeded RNG."""

    MAX_STMTS = 36
    MAX_EXPR_DEPTH = 3
    MAX_LOOP_DEPTH = 2
    MAX_BLOCK_DEPTH = 3

    def __init__(self, rng: random.Random, key: str) -> None:
        self.rng = rng
        self.key = key
        self.budget = self.MAX_STMTS
        self.loop_counter = 0

    def build(self) -> GenProgram:
        rng = self.rng
        arrays = []
        for n in range(rng.randint(1, 3)):
            size = rng.choice(_ARRAY_SIZES)
            ctype = rng.choice(("int", "int", "char"))
            init = None
            if rng.random() < 0.5:
                hi = 255 if ctype == "char" else 9999
                init = [rng.randint(0, hi) for _ in range(size)]
            arrays.append(GArray(f"g{n}", ctype, size, init))
        self.arrays = arrays

        funcs = []
        for n in range(rng.randint(0, 2)):
            params = [f"p{i}" for i in range(rng.randint(1, 3))]
            locals_ = {f"a{i}": rng.choice(_CONST_POOL) for i in range(2)}
            scope = [*params, *locals_]
            first_loop = self.loop_counter
            body = self.gen_block(rng.randint(2, 5), scope,
                                  assignable=list(locals_),
                                  funcs=(), loop_depth=0, block_depth=0,
                                  io_ok=False)
            ret = self.gen_expr(scope, 0)
            # loop induction variables allocated inside this body are
            # locals of this function
            for k in range(first_loop, self.loop_counter):
                locals_[f"i{k}"] = 0
            funcs.append(GFunc(f"f{n}", params, locals_, body, ret))
        self.funcs = funcs

        main_locals = {f"v{i}": rng.choice(_CONST_POOL)
                       for i in range(rng.randint(3, 5))}
        scope = list(main_locals)
        first_loop = self.loop_counter
        body = self.gen_block(rng.randint(5, 12), scope,
                              assignable=list(main_locals),
                              funcs=tuple(f.name for f in funcs),
                              loop_depth=0, block_depth=0, io_ok=True)
        program = GenProgram(
            key=self.key, arrays=arrays, funcs=funcs,
            main_locals=main_locals, main_body=body,
            loop_vars=[f"i{n}" for n in range(first_loop,
                                              self.loop_counter)])
        return program

    # -- helpers --------------------------------------------------------

    def gen_const(self) -> ENum:
        rng = self.rng
        if rng.random() < 0.6:
            return ENum(rng.choice(_CONST_POOL))
        return ENum(rng.randint(-(1 << 20), 1 << 20))

    def gen_expr(self, scope: list[str], depth: int) -> Expr:
        rng = self.rng
        if depth >= self.MAX_EXPR_DEPTH or rng.random() < 0.25 + 0.2 * depth:
            roll = rng.random()
            if roll < 0.4 or not scope:
                return self.gen_const()
            if roll < 0.85:
                return EVar(rng.choice(scope))
            array = rng.choice(self.arrays)
            return EIndex(array.name, array.size - 1,
                          self.gen_expr(scope, depth + 1))
        roll = rng.random()
        if roll < 0.12:
            return EUn(rng.choice(("-", "~", "!")),
                       self.gen_expr(scope, depth + 1))
        if roll < 0.80:
            op = rng.choice(_BIN_ARITH)
        elif roll < 0.88:
            op = rng.choice(("/", "%"))
        elif roll < 0.96:
            op = rng.choice(_BIN_CMP)
        else:
            op = rng.choice(_BIN_LOGIC)
        return EBin(op, self.gen_expr(scope, depth + 1),
                    self.gen_expr(scope, depth + 1))

    def gen_block(self, target: int, scope: list[str],
                  assignable: list[str], funcs: tuple,
                  loop_depth: int, block_depth: int,
                  io_ok: bool) -> list[Stmt]:
        stmts = []
        for _ in range(target):
            if self.budget <= 0:
                break
            stmts.append(self.gen_stmt(scope, assignable, funcs,
                                       loop_depth, block_depth, io_ok))
        return stmts

    def gen_stmt(self, scope: list[str], assignable: list[str],
                 funcs: tuple, loop_depth: int, block_depth: int,
                 io_ok: bool) -> Stmt:
        rng = self.rng
        self.budget -= 1
        roll = rng.random()
        deep = block_depth >= self.MAX_BLOCK_DEPTH
        if roll < 0.32 and assignable:
            return SAssign(rng.choice(assignable),
                           rng.choice(_ASSIGN_OPS),
                           self.gen_expr(scope, 0))
        if roll < 0.50:
            array = rng.choice(self.arrays)
            return SStore(array.name, array.size - 1,
                          self.gen_expr(scope, 1),
                          self.gen_expr(scope, 0))
        if roll < 0.62 and not deep:
            cond = self.gen_expr(scope, 1)
            then = self.gen_block(rng.randint(1, 3), scope, assignable,
                                  funcs, loop_depth, block_depth + 1, io_ok)
            els = []
            if rng.random() < 0.5:
                els = self.gen_block(rng.randint(1, 2), scope, assignable,
                                     funcs, loop_depth, block_depth + 1,
                                     io_ok)
            return SIf(cond, then, els)
        if roll < 0.76 and loop_depth < self.MAX_LOOP_DEPTH and not deep:
            var = f"i{self.loop_counter}"
            self.loop_counter += 1
            inner_scope = scope + [var]
            body = self.gen_block(rng.randint(1, 4), inner_scope,
                                  assignable, funcs, loop_depth + 1,
                                  block_depth + 1, io_ok)
            if rng.random() < 0.3:
                return SWhile(var, rng.randint(1, 6), body)
            return SFor(var, rng.randint(1, 6), rng.random() < 0.3, body)
        if roll < 0.82 and funcs and assignable:
            name = rng.choice(funcs)
            func = next(f for f in self.funcs if f.name == name)
            args = [self.gen_expr(scope, 1) for _ in func.params]
            return SCall(rng.choice(assignable), name, args)
        if roll < 0.88 and io_ok:
            return SIoWrite(self.gen_expr(scope, 1))
        if roll < 0.93 and loop_depth > 0:
            return SBreak() if rng.random() < 0.6 else SContinue()
        if assignable:
            return SAssign(rng.choice(assignable), "=",
                           self.gen_expr(scope, 0))
        return SStore(self.arrays[0].name, self.arrays[0].size - 1,
                      self.gen_expr(scope, 1), self.gen_expr(scope, 0))


def generate(seed: int, index: int = 0) -> GenProgram:
    """Generate program *index* of the population seeded with *seed*."""
    key = f"progen:{seed}:{index}"
    rng = random.Random(key)
    return _Gen(rng, key).build()
