"""Seeded property-based fuzzing of the whole translation pipeline.

The fuzz subsystem closes the loop the curated corpus cannot: instead
of nine hand-written kernels, it draws an unbounded population of
structured random minic programs (:mod:`repro.fuzz.progen`) and checks
every execution configuration of the platform against the reference
ISS and against itself (:mod:`repro.fuzz.oracle`) — interpretive vs
packet-compiled backends, one core vs N lockstep cores, detail levels
0 through 3.  Failing programs are shrunk to minimal reproducers
(:mod:`repro.fuzz.shrink`) and dumped under ``tests/fuzz_corpus/``.

Entry points: the ``repro-fuzz`` console script, ``python -m
repro.fuzz``, and :func:`repro.cli.fuzz_main`.
"""

from repro.fuzz.oracle import FuzzConfig, Mismatch, Verdict, check_source
from repro.fuzz.progen import GenProgram, generate
from repro.fuzz.shrink import shrink

__all__ = [
    "FuzzConfig",
    "GenProgram",
    "Mismatch",
    "Verdict",
    "check_source",
    "generate",
    "shrink",
]
