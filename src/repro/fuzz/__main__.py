"""``python -m repro.fuzz`` — the ``repro-fuzz`` CLI without install."""

import sys

from repro.cli import fuzz_main

if __name__ == "__main__":
    sys.exit(fuzz_main())
