"""Code generator: minic AST to TriCore-like assembly.

A deliberately simple, correct compiler in the spirit of the early-2000s
embedded toolchains the paper used:

* expression evaluation on a scratch-register stack (``d8``–``d14``),
  spilling to the frame when the stack overflows or across calls;
* all variables live in memory (globals in ``.data``, locals in the
  stack frame addressed via ``a10``);
* address arithmetic happens in data registers and moves to a transient
  address register only for the actual memory access;
* arguments in ``d4``–``d7`` (ints) and ``a4``–``a7`` (pointers),
  return value in ``d2``, return address in ``a11``;
* ``/`` and ``%`` call the runtime routines ``__div`` / ``__mod``;
* 16-bit compact encodings are used where they apply, so translated
  programs exercise the mixed-width decoder and cache-line analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MinicError
from repro.minic.astnodes import (
    Assign,
    Bin,
    Block,
    Break,
    Call,
    Continue,
    CType,
    Expr,
    ExprStmt,
    For,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    INT,
    LocalDecl,
    Num,
    Program,
    Return,
    Stmt,
    StrLit,
    Un,
    Var,
    While,
)
from repro.utils.bits import fits_signed, s32, u32

_SCRATCH = (8, 9, 10, 11, 12, 13, 14)  # d8..d14
_INT_ARG_REGS = (4, 5, 6, 7)  # d4..d7
_PTR_ARG_REGS = (4, 5, 6, 7)  # a4..a7
_ADDR_SCRATCH = "a2"

_INTRINSICS = {"__io_read", "__io_write", "__halt"}

_CMP_INSTR = {"==": "eq", "!=": "ne", "<": "lt", ">=": "ge"}
_CMP_BRANCH = {"==": "jeq", "!=": "jne", "<": "jlt", ">=": "jge"}
_NEGATED = {"==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}


@dataclass
class _Value:
    """One evaluation-stack entry."""

    kind: str  # 'imm', 'reg', 'spill'
    payload: int  # immediate value, d-register number, or spill index
    ctype: CType = INT


@dataclass
class _FuncCtx:
    """Per-function code-generation state."""

    name: str
    ret_type: CType
    lines: list[str] = field(default_factory=list)
    locals: dict[str, tuple[CType, int, int | None]] = field(
        default_factory=dict)  # name -> (type, offset, array_size)
    locals_size: int = 0
    spill_count: int = 0
    free_spills: list[int] = field(default_factory=list)
    makes_call: bool = False
    label_counter: int = 0
    stack: list[_Value] = field(default_factory=list)
    busy_regs: set[int] = field(default_factory=set)
    break_labels: list[str] = field(default_factory=list)
    continue_labels: list[str] = field(default_factory=list)
    scopes: list[list[str]] = field(default_factory=list)


class CodeGenerator:
    """Generates one assembly module from a parsed program."""

    def __init__(self) -> None:
        self._functions: dict[str, FuncDecl] = {}
        self._globals: dict[str, GlobalDecl] = {}
        self._ctx: _FuncCtx | None = None
        self._out: list[str] = []

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def generate(self, program: Program) -> str:
        """Return the assembly text of *program* (no runtime/crt0)."""
        for decl in program.functions:
            existing = self._functions.get(decl.name)
            if existing is not None and existing.body and decl.body:
                raise MinicError(f"redefinition of {decl.name!r}", decl.line)
            if existing is None or decl.body is not None:
                self._functions[decl.name] = decl
        for decl in program.globals:
            if decl.name in self._globals:
                raise MinicError(f"redefinition of {decl.name!r}", decl.line)
            self._globals[decl.name] = decl

        self._out = ["    .text"]
        for decl in program.functions:
            if decl.body is not None:
                self._gen_function(decl)
        self._out.append("")
        self._out.append("    .data")
        for decl in self._globals.values():
            self._gen_global(decl)
        return "\n".join(self._out) + "\n"

    # ------------------------------------------------------------------
    # globals
    # ------------------------------------------------------------------

    def _global_label(self, name: str) -> str:
        return f"g_{name}"

    def _gen_global(self, decl: GlobalDecl) -> None:
        label = self._global_label(decl.name)
        self._out.append("    .align 4")
        self._out.append(f"{label}:")
        elem_size = 4 if decl.ctype.is_pointer or decl.ctype.base == "int" else 1
        if decl.array_size is None:
            value = decl.init if isinstance(decl.init, int) else 0
            directive = ".word" if elem_size == 4 else ".byte"
            self._out.append(f"    {directive} {value}")
            if elem_size == 1:
                self._out.append("    .space 3")
            return
        count = decl.array_size
        if isinstance(decl.init, str):
            escaped = decl.init.replace("\\", "\\\\").replace('"', '\\"')
            self._out.append(f'    .asciz "{escaped}"')
            used = len(decl.init) + 1
            if count > used:
                self._out.append(f"    .space {count - used}")
            return
        if isinstance(decl.init, list):
            values = decl.init
            if len(values) > count:
                raise MinicError(
                    f"too many initializers for {decl.name!r}", decl.line)
            directive = ".word" if elem_size == 4 else ".byte"
            for start in range(0, len(values), 8):
                chunk = values[start:start + 8]
                self._out.append(
                    f"    {directive} " + ", ".join(str(v) for v in chunk))
            remaining = (count - len(values)) * elem_size
            if remaining:
                self._out.append(f"    .space {remaining}")
            return
        self._out.append(f"    .space {count * elem_size}")

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------

    def _gen_function(self, decl: FuncDecl) -> None:
        ctx = _FuncCtx(name=decl.name, ret_type=decl.ret_type)
        self._ctx = ctx
        ctx.scopes.append([])

        # Parameter slots (stored on entry so the body can address them).
        int_regs = iter(_INT_ARG_REGS)
        ptr_regs = iter(_PTR_ARG_REGS)
        param_stores: list[str] = []
        for param in decl.params:
            offset = self._alloc_local(param.name, param.ctype, None,
                                       decl.line)
            if param.ctype.is_pointer:
                try:
                    areg = next(ptr_regs)
                except StopIteration:
                    raise MinicError("too many pointer parameters",
                                     decl.line) from None
                param_stores.append(f"    st.a [a10]{offset}, a{areg}")
            else:
                try:
                    dreg = next(int_regs)
                except StopIteration:
                    raise MinicError("too many integer parameters",
                                     decl.line) from None
                param_stores.append(f"    st.w [a10]{offset}, d{dreg}")

        self._gen_block(decl.body)
        ctx.scopes.pop()

        # Fall off the end: return 0 for int functions.
        self._emit("mov16 d2, d2" if decl.ret_type.base == "void"
                   else "mov d2, 0")

        locals_size = (ctx.locals_size + 3) & ~3
        spill_base = locals_size
        frame = locals_size + 4 * ctx.spill_count
        ra_offset = frame
        if ctx.makes_call:
            frame += 4
        frame = (frame + 7) & ~7

        body = [self._patch_spill(line, spill_base) for line in ctx.lines]

        self._out.append("")
        self._out.append(f"    .global {decl.name}")
        self._out.append(f"{decl.name}:")
        if frame:
            self._out.append(f"    lea a10, [a10]{-frame}")
        if ctx.makes_call:
            self._out.append(f"    st.a [a10]{ra_offset}, a11")
        self._out.extend(param_stores)
        self._out.extend(body)
        self._out.append(f".Lret_{decl.name}:")
        if ctx.makes_call:
            self._out.append(f"    ld.a a11, [a10]{ra_offset}")
        if frame:
            self._out.append(f"    lea a10, [a10]{frame}")
        self._out.append("    ret16")
        self._ctx = None

    @staticmethod
    def _patch_spill(line: str, spill_base: int) -> str:
        """Replace ``!SPILLn!`` placeholders with frame offsets."""
        while "!SPILL" in line:
            start = line.index("!SPILL")
            end = line.index("!", start + 1)
            index = int(line[start + 6:end])
            line = line[:start] + str(spill_base + 4 * index) + line[end + 1:]
        return line

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------

    def _emit(self, text: str) -> None:
        assert self._ctx is not None
        self._ctx.lines.append("    " + text)

    def _emit_label(self, label: str) -> None:
        assert self._ctx is not None
        self._ctx.lines.append(f"{label}:")

    def _new_label(self, hint: str) -> str:
        ctx = self._ctx
        assert ctx is not None
        ctx.label_counter += 1
        return f".L{hint}{ctx.label_counter}_{ctx.name}"

    def _emit_mov(self, dest: int, src: int) -> None:
        if dest != src:
            self._emit(f"mov16 d{dest}, d{src}")

    def _emit_mov_imm(self, dest: int, value: int) -> None:
        value = s32(u32(value))
        if -8 <= value <= 7:
            self._emit(f"mov16 d{dest}, {value}")
        elif fits_signed(value, 16):
            self._emit(f"mov d{dest}, {value}")
        elif 0 <= value <= 0xFFFF:
            self._emit(f"mov.u d{dest}, {value}")
        else:
            self._emit(f"li d{dest}, {u32(value)}")

    # ------------------------------------------------------------------
    # evaluation stack
    # ------------------------------------------------------------------

    def _alloc_reg(self) -> int:
        ctx = self._ctx
        assert ctx is not None
        for reg in _SCRATCH:
            if reg not in ctx.busy_regs:
                ctx.busy_regs.add(reg)
                return reg
        # All scratch registers hold live values: spill the oldest.
        for value in ctx.stack:
            if value.kind == "reg":
                self._spill_value(value)
                reg = _SCRATCH[0]
                for candidate in _SCRATCH:
                    if candidate not in ctx.busy_regs:
                        reg = candidate
                        break
                ctx.busy_regs.add(reg)
                return reg
        raise MinicError("expression too complex (register stack overflow)")

    def _free_reg(self, reg: int) -> None:
        assert self._ctx is not None
        self._ctx.busy_regs.discard(reg)

    def _alloc_spill(self) -> int:
        ctx = self._ctx
        assert ctx is not None
        if ctx.free_spills:
            return ctx.free_spills.pop()
        index = ctx.spill_count
        ctx.spill_count += 1
        return index

    def _spill_value(self, value: _Value) -> None:
        """Move a reg-resident stack entry to a frame spill slot."""
        assert value.kind == "reg"
        index = self._alloc_spill()
        self._emit(f"st.w [a10]!SPILL{index}!, d{value.payload}")
        self._free_reg(value.payload)
        value.kind = "spill"
        value.payload = index

    def _spill_all(self) -> None:
        """Spill every live eval-stack entry (before a call)."""
        assert self._ctx is not None
        for value in self._ctx.stack:
            if value.kind == "reg":
                self._spill_value(value)

    def _push_reg(self, reg: int, ctype: CType = INT) -> None:
        assert self._ctx is not None
        self._ctx.stack.append(_Value("reg", reg, ctype))

    def _push_imm(self, value: int, ctype: CType = INT) -> None:
        assert self._ctx is not None
        self._ctx.stack.append(_Value("imm", value, ctype))

    def _pop(self) -> _Value:
        assert self._ctx is not None
        return self._ctx.stack.pop()

    def _pop_reg(self) -> tuple[int, CType]:
        """Pop the top value, materialized into a scratch register."""
        value = self._pop()
        if value.kind == "reg":
            return value.payload, value.ctype
        reg = self._alloc_reg()
        if value.kind == "imm":
            self._emit_mov_imm(reg, value.payload)
        else:  # spill
            self._emit(f"ld.w d{reg}, [a10]!SPILL{value.payload}!")
            self._ctx.free_spills.append(value.payload)
        return reg, value.ctype

    def _discard(self) -> None:
        value = self._pop()
        if value.kind == "reg":
            self._free_reg(value.payload)
        elif value.kind == "spill":
            self._ctx.free_spills.append(value.payload)

    # ------------------------------------------------------------------
    # locals
    # ------------------------------------------------------------------

    def _alloc_local(self, name: str, ctype: CType, array_size: int | None,
                     line: int) -> int:
        ctx = self._ctx
        assert ctx is not None
        if name in ctx.locals and name in ctx.scopes[-1]:
            raise MinicError(f"redefinition of {name!r}", line)
        if array_size is not None:
            elem = 4 if ctype.is_pointer or ctype.base == "int" else 1
            size = (array_size * elem + 3) & ~3
        else:
            size = 4
        offset = ctx.locals_size
        ctx.locals_size += size
        ctx.locals[name] = (ctype, offset, array_size)
        ctx.scopes[-1].append(name)
        return offset

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _gen_block(self, block: Block) -> None:
        ctx = self._ctx
        assert ctx is not None
        ctx.scopes.append([])
        saved = dict(ctx.locals)
        for stmt in block.stmts:
            self._gen_stmt(stmt)
        for name in ctx.scopes.pop():
            if name in saved:
                ctx.locals[name] = saved[name]
            else:
                del ctx.locals[name]

    def _gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self._gen_expr(stmt.expr)
                self._discard()
        elif isinstance(stmt, LocalDecl):
            self._gen_local_decl(stmt)
        elif isinstance(stmt, If):
            self._gen_if(stmt)
        elif isinstance(stmt, While):
            self._gen_while(stmt)
        elif isinstance(stmt, For):
            self._gen_for(stmt)
        elif isinstance(stmt, Return):
            self._gen_return(stmt)
        elif isinstance(stmt, Break):
            if not self._ctx.break_labels:
                raise MinicError("break outside a loop", stmt.line)
            self._emit(f"j {self._ctx.break_labels[-1]}")
        elif isinstance(stmt, Continue):
            if not self._ctx.continue_labels:
                raise MinicError("continue outside a loop", stmt.line)
            self._emit(f"j {self._ctx.continue_labels[-1]}")
        else:  # pragma: no cover - parser produces no other nodes
            raise MinicError(f"unhandled statement {type(stmt).__name__}")

    def _gen_local_decl(self, stmt: LocalDecl) -> None:
        offset = self._alloc_local(stmt.name, stmt.ctype, stmt.array_size,
                                   stmt.line)
        if stmt.init is not None:
            self._gen_expr(stmt.init)
            reg, _ = self._pop_reg()
            store = "st.w" if stmt.ctype.size == 4 else "st.b"
            self._emit(f"{store} [a10]{offset}, d{reg}")
            self._free_reg(reg)

    def _gen_if(self, stmt: If) -> None:
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        self._gen_branch(stmt.cond, else_label, negate=True)
        self._gen_stmt(stmt.then)
        if stmt.els is not None:
            self._emit(f"j {end_label}")
            self._emit_label(else_label)
            self._gen_stmt(stmt.els)
            self._emit_label(end_label)
        else:
            self._emit_label(else_label)

    def _gen_while(self, stmt: While) -> None:
        head = self._new_label("while")
        end = self._new_label("endwhile")
        self._ctx.break_labels.append(end)
        self._ctx.continue_labels.append(head)
        self._emit_label(head)
        self._gen_branch(stmt.cond, end, negate=True)
        self._gen_stmt(stmt.body)
        self._emit(f"j {head}")
        self._emit_label(end)
        self._ctx.break_labels.pop()
        self._ctx.continue_labels.pop()

    def _gen_for(self, stmt: For) -> None:
        head = self._new_label("for")
        step_label = self._new_label("forstep")
        end = self._new_label("endfor")
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        self._ctx.break_labels.append(end)
        self._ctx.continue_labels.append(step_label)
        self._emit_label(head)
        if stmt.cond is not None:
            self._gen_branch(stmt.cond, end, negate=True)
        self._gen_stmt(stmt.body)
        self._emit_label(step_label)
        if stmt.step is not None:
            self._gen_expr(stmt.step)
            self._discard()
        self._emit(f"j {head}")
        self._emit_label(end)
        self._ctx.break_labels.pop()
        self._ctx.continue_labels.pop()

    def _gen_return(self, stmt: Return) -> None:
        if stmt.value is not None:
            self._gen_expr(stmt.value)
            reg, _ = self._pop_reg()
            self._emit_mov(2, reg)
            self._free_reg(reg)
        self._emit(f"j .Lret_{self._ctx.name}")

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------

    def _gen_branch(self, cond: Expr, label: str, negate: bool) -> None:
        """Branch to *label* when *cond* is true (or false if *negate*)."""
        if isinstance(cond, Un) and cond.op == "!":
            self._gen_branch(cond.operand, label, not negate)
            return
        if isinstance(cond, Bin) and cond.op in ("&&", "||"):
            self._gen_branch_logical(cond, label, negate)
            return
        if isinstance(cond, Bin) and cond.op in ("==", "!=", "<", ">",
                                                 "<=", ">="):
            self._gen_cmp_branch(cond, label, negate)
            return
        self._gen_expr(cond)
        reg, _ = self._pop_reg()
        instr = "jz" if negate else "jnz"
        self._emit(f"{instr} d{reg}, {label}")
        self._free_reg(reg)

    def _gen_cmp_branch(self, cond: Bin, label: str, negate: bool) -> None:
        op = cond.op
        left, right = cond.left, cond.right
        if op in (">", "<="):
            left, right = right, left
            op = {">": "<", "<=": ">="}[op]
        if negate:
            op = _NEGATED[op]
        branch = _CMP_BRANCH[op]
        self._gen_expr(left)
        if isinstance(right, Num) and -8 <= right.value <= 7 \
                and branch in ("jeq", "jne", "jlt", "jge"):
            lreg, _ = self._pop_reg()
            self._emit(f"{branch} d{lreg}, {right.value}, {label}")
            self._free_reg(lreg)
            return
        self._gen_expr(right)
        rval = self._pop()
        lreg, _ = self._pop_reg()
        rreg, _ = self._materialize(rval)
        self._emit(f"{branch} d{lreg}, d{rreg}, {label}")
        self._free_reg(lreg)
        self._free_reg(rreg)

    def _materialize(self, value: _Value) -> tuple[int, CType]:
        """Bring a popped stack entry into a register."""
        self._ctx.stack.append(value)
        return self._pop_reg()

    def _gen_branch_logical(self, cond: Bin, label: str,
                            negate: bool) -> None:
        if cond.op == "&&" and not negate or cond.op == "||" and negate:
            # both must hold: short-circuit through a skip label
            skip = self._new_label("sc")
            self._gen_branch(cond.left, skip, not negate
                             if cond.op == "||" else True)
            # For '&&' non-negated: if left false -> skip (no branch)
            self._gen_branch(cond.right, label, negate)
            self._emit_label(skip)
            return
        # '||' non-negated or '&&' negated: either suffices
        self._gen_branch(cond.left, label, negate)
        self._gen_branch(cond.right, label, negate)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _gen_expr(self, expr: Expr) -> None:
        if isinstance(expr, Num):
            self._push_imm(expr.value)
        elif isinstance(expr, StrLit):
            raise MinicError("string literals are only allowed as "
                             "global initializers", expr.line)
        elif isinstance(expr, Var):
            self._gen_var(expr)
        elif isinstance(expr, Bin):
            self._gen_bin(expr)
        elif isinstance(expr, Un):
            self._gen_un(expr)
        elif isinstance(expr, Assign):
            self._gen_assign(expr)
        elif isinstance(expr, Call):
            self._gen_call(expr)
        elif isinstance(expr, Index):
            self._gen_load(expr)
        else:  # pragma: no cover
            raise MinicError(f"unhandled expression {type(expr).__name__}")

    def _lookup_var(self, name: str, line: int):
        ctx = self._ctx
        if name in ctx.locals:
            ctype, offset, array_size = ctx.locals[name]
            return ("local", ctype, offset, array_size)
        if name in self._globals:
            decl = self._globals[name]
            return ("global", decl.ctype, self._global_label(name),
                    decl.array_size)
        raise MinicError(f"undefined variable {name!r}", line)

    def _gen_var(self, expr: Var) -> None:
        where, ctype, location, array_size = self._lookup_var(
            expr.name, expr.line)
        if array_size is not None:
            # Array decays to a pointer value.
            reg = self._alloc_reg()
            if where == "local":
                self._emit(f"lea {_ADDR_SCRATCH}, [a10]{location}")
            else:
                self._emit(f"la {_ADDR_SCRATCH}, {location}")
            self._emit(f"mov.d d{reg}, {_ADDR_SCRATCH}")
            self._push_reg(reg, CType(ctype.base, ctype.ptr + 1))
            return
        reg = self._alloc_reg()
        load = "ld.w" if ctype.size == 4 else "ld.b"
        if where == "local":
            self._emit(f"{load} d{reg}, [a10]{location}")
        else:
            self._emit(f"la {_ADDR_SCRATCH}, {location}")
            self._emit(f"{load} d{reg}, [{_ADDR_SCRATCH}]")
        self._push_reg(reg, ctype)

    def _gen_load(self, expr: Expr) -> None:
        """Load through a computed address (Index or Deref)."""
        elem = self._gen_address(expr)
        addr_reg, _ = self._pop_reg()
        self._emit(f"mov.a {_ADDR_SCRATCH}, d{addr_reg}")
        self._free_reg(addr_reg)
        reg = self._alloc_reg()
        load = "ld.w" if elem.size == 4 else "ld.b"
        self._emit(f"{load} d{reg}, [{_ADDR_SCRATCH}]")
        self._push_reg(reg, elem)

    def _gen_address(self, expr: Expr) -> CType:
        """Push the address of an lvalue; returns the element type."""
        if isinstance(expr, Var):
            where, ctype, location, array_size = self._lookup_var(
                expr.name, expr.line)
            reg = self._alloc_reg()
            if where == "local":
                self._emit(f"lea {_ADDR_SCRATCH}, [a10]{location}")
            else:
                self._emit(f"la {_ADDR_SCRATCH}, {location}")
            self._emit(f"mov.d d{reg}, {_ADDR_SCRATCH}")
            self._push_reg(reg, CType(ctype.base, ctype.ptr + 1))
            return ctype
        if isinstance(expr, Un) and expr.op == "*":
            self._gen_expr(expr.operand)
            top = self._ctx.stack[-1]
            if not top.ctype.is_pointer:
                raise MinicError("dereference of a non-pointer", expr.line)
            return top.ctype.elem
        if isinstance(expr, Index):
            base_type = self._gen_index_address(expr)
            return base_type
        raise MinicError("expression is not addressable", expr.line)

    def _gen_index_address(self, expr: Index) -> CType:
        self._gen_expr(expr.array)
        array_type = self._ctx.stack[-1].ctype
        if not array_type.is_pointer:
            raise MinicError("indexing a non-array value", expr.line)
        elem = array_type.elem
        self._gen_expr(expr.index)
        index_val = self._pop()
        elem_size = array_type.elem_size
        if index_val.kind == "imm":
            base_reg, _ = self._pop_reg()
            offset = index_val.payload * elem_size
            if offset:
                result = self._alloc_reg()
                self._emit_add_imm(result, base_reg, offset)
                self._free_reg(base_reg)
                self._push_reg(result, array_type)
            else:
                self._push_reg(base_reg, array_type)
            return elem
        index_reg, _ = self._materialize(index_val)
        if elem_size == 4:
            scaled = self._alloc_reg()
            self._emit(f"shl d{scaled}, d{index_reg}, 2")
            self._free_reg(index_reg)
            index_reg = scaled
        base_reg, _ = self._pop_reg()
        result = self._alloc_reg()
        self._emit(f"add d{result}, d{base_reg}, d{index_reg}")
        self._free_reg(base_reg)
        self._free_reg(index_reg)
        self._push_reg(result, array_type)
        return elem

    def _emit_add_imm(self, dest: int, src: int, value: int) -> None:
        if dest == src and -8 <= value <= 7:
            self._emit(f"add16 d{dest}, {value}")
        elif fits_signed(value, 9):
            self._emit(f"add d{dest}, d{src}, {value}")
        elif fits_signed(value, 16):
            self._emit(f"addi d{dest}, d{src}, {value}")
        else:
            tmp = self._alloc_reg()
            self._emit_mov_imm(tmp, value)
            self._emit(f"add d{dest}, d{src}, d{tmp}")
            self._free_reg(tmp)

    # -- binary operators -------------------------------------------------

    def _gen_bin(self, expr: Bin) -> None:
        op = expr.op
        if op in ("&&", "||"):
            self._gen_logical_value(expr)
            return
        if op in ("==", "!=", "<", ">", "<=", ">="):
            self._gen_compare_value(expr)
            return
        if op in ("/", "%"):
            routine = "__div" if op == "/" else "__mod"
            self._gen_runtime_call(routine, expr.left, expr.right)
            return
        self._gen_expr(expr.left)
        left_type = self._ctx.stack[-1].ctype
        self._gen_expr(expr.right)
        right_type = self._ctx.stack[-1].ctype

        # Pointer arithmetic scaling.
        if op in ("+", "-") and left_type.is_pointer \
                and not right_type.is_pointer:
            self._scale_top(left_type.elem_size)
        elif op == "+" and right_type.is_pointer \
                and not left_type.is_pointer:
            # int + ptr: scale the int (below the top); swap first.
            self._swap_top2()
            self._scale_top(right_type.elem_size)
            self._swap_top2()
            left_type = right_type

        right_val = self._pop()
        result_type = left_type
        if op == "-" and left_type.is_pointer and right_type.is_pointer:
            result_type = INT

        instr = {"+": "add", "-": "sub", "*": "mul", "&": "and", "|": "or",
                 "^": "xor", "<<": "shl", ">>": "shra"}[op]
        if right_val.kind == "imm" and instr in (
                "add", "and", "or", "xor", "shl", "shra") \
                and fits_signed(right_val.payload if instr != "sub"
                                else -right_val.payload, 9):
            left_reg, _ = self._pop_reg()
            dest = self._alloc_reg()
            self._emit(f"{instr} d{dest}, d{left_reg}, {right_val.payload}")
            self._free_reg(left_reg)
            self._push_reg(dest, result_type)
            return
        if right_val.kind == "imm" and instr == "sub" \
                and fits_signed(-right_val.payload, 9):
            left_reg, _ = self._pop_reg()
            dest = self._alloc_reg()
            self._emit(f"add d{dest}, d{left_reg}, {-right_val.payload}")
            self._free_reg(left_reg)
            self._push_reg(dest, result_type)
            return
        right_reg, _ = self._materialize(right_val)
        left_reg, _ = self._pop_reg()
        dest = self._alloc_reg()
        self._emit(f"{instr} d{dest}, d{left_reg}, d{right_reg}")
        self._free_reg(left_reg)
        self._free_reg(right_reg)
        if op == "-" and left_type.is_pointer and right_type.is_pointer:
            scaled = self._alloc_reg()
            shift = 2 if left_type.elem_size == 4 else 0
            if shift:
                self._emit(f"shra d{scaled}, d{dest}, {shift}")
                self._free_reg(dest)
                dest = scaled
            else:
                self._free_reg(scaled)
        self._push_reg(dest, result_type)

    def _swap_top2(self) -> None:
        stack = self._ctx.stack
        stack[-1], stack[-2] = stack[-2], stack[-1]

    def _scale_top(self, elem_size: int) -> None:
        """Multiply the top stack value by *elem_size* (1 or 4)."""
        if elem_size == 1:
            return
        value = self._pop()
        if value.kind == "imm":
            self._push_imm(value.payload * elem_size)
            return
        reg, _ = self._materialize(value)
        dest = self._alloc_reg()
        self._emit(f"shl d{dest}, d{reg}, 2")
        self._free_reg(reg)
        self._push_reg(dest)

    def _gen_compare_value(self, expr: Bin) -> None:
        op = expr.op
        left, right = expr.left, expr.right
        if op in (">", "<="):
            left, right = right, left
            op = {">": "<", "<=": ">="}[op]
        self._gen_expr(left)
        self._gen_expr(right)
        right_val = self._pop()
        instr = _CMP_INSTR[op]
        if right_val.kind == "imm" and fits_signed(right_val.payload, 9) \
                and instr in ("eq", "ne", "lt", "ge"):
            left_reg, _ = self._pop_reg()
            dest = self._alloc_reg()
            self._emit(f"{instr} d{dest}, d{left_reg}, {right_val.payload}")
            self._free_reg(left_reg)
            self._push_reg(dest)
            return
        right_reg, _ = self._materialize(right_val)
        left_reg, _ = self._pop_reg()
        dest = self._alloc_reg()
        self._emit(f"{instr} d{dest}, d{left_reg}, d{right_reg}")
        self._free_reg(left_reg)
        self._free_reg(right_reg)
        self._push_reg(dest)

    def _gen_logical_value(self, expr: Bin) -> None:
        """Materialize `a && b` / `a || b` as 0/1."""
        true_label = self._new_label("ltrue")
        end_label = self._new_label("lend")
        dest = self._alloc_reg()
        self._gen_branch(expr, true_label, negate=False)
        self._emit(f"mov16 d{dest}, 0")
        self._emit(f"j {end_label}")
        self._emit_label(true_label)
        self._emit(f"mov16 d{dest}, 1")
        self._emit_label(end_label)
        self._push_reg(dest)

    # -- unary operators ----------------------------------------------------

    def _gen_un(self, expr: Un) -> None:
        if expr.op == "&":
            self._gen_address(expr.operand)
            return
        if expr.op == "*":
            self._gen_load(expr)
            return
        self._gen_expr(expr.operand)
        value = self._pop()
        if value.kind == "imm":
            folded = {"-": -value.payload, "~": ~value.payload,
                      "!": 0 if value.payload else 1}[expr.op]
            self._push_imm(folded)
            return
        reg, _ = self._materialize(value)
        dest = self._alloc_reg()
        if expr.op == "-":
            zero = self._alloc_reg()
            self._emit(f"mov16 d{zero}, 0")
            self._emit(f"sub d{dest}, d{zero}, d{reg}")
            self._free_reg(zero)
        elif expr.op == "~":
            self._emit(f"not d{dest}, d{reg}")
        else:  # '!'
            self._emit(f"eq d{dest}, d{reg}, 0")
        self._free_reg(reg)
        self._push_reg(dest)

    # -- assignment -----------------------------------------------------------

    def _gen_assign(self, expr: Assign) -> None:
        target = expr.target
        if expr.op != "=":
            # a op= b  ->  a = a op b (target evaluated twice; minic
            # forbids side effects in assignment targets, so this is safe)
            binop = expr.op[:-1]
            expr = Assign(line=expr.line, op="=", target=target,
                          value=Bin(line=expr.line, op=binop,
                                    left=_clone_lvalue(target),
                                    right=expr.value))
        self._gen_expr(expr.value)
        # Local scalar fast path.
        if isinstance(target, Var):
            where, ctype, location, array_size = self._lookup_var(
                target.name, target.line)
            if array_size is not None:
                raise MinicError("cannot assign to an array", target.line)
            reg, _ = self._pop_reg()
            store = "st.w" if ctype.size == 4 else "st.b"
            if where == "local":
                self._emit(f"{store} [a10]{location}, d{reg}")
            else:
                self._emit(f"la {_ADDR_SCRATCH}, {location}")
                self._emit(f"{store} [{_ADDR_SCRATCH}], d{reg}")
            self._push_reg(reg, ctype)
            return
        # General path: value, then address.
        elem = self._gen_address(target)
        addr_reg, _ = self._pop_reg()
        value_val = self._pop()
        value_reg, value_type = self._materialize(value_val)
        self._emit(f"mov.a {_ADDR_SCRATCH}, d{addr_reg}")
        self._free_reg(addr_reg)
        store = "st.w" if elem.size == 4 else "st.b"
        self._emit(f"{store} [{_ADDR_SCRATCH}], d{value_reg}")
        self._push_reg(value_reg, value_type)

    # -- calls -----------------------------------------------------------------

    def _gen_runtime_call(self, routine: str, left: Expr,
                          right: Expr) -> None:
        """Call a runtime helper with two integer arguments."""
        self._spill_all()
        self._gen_expr(left)
        self._gen_expr(right)
        right_reg, _ = self._pop_reg()
        left_reg, _ = self._pop_reg()
        self._emit_mov(4, left_reg)
        self._emit_mov(5, right_reg)
        self._free_reg(left_reg)
        self._free_reg(right_reg)
        self._emit(f"call {routine}")
        self._ctx.makes_call = True
        dest = self._alloc_reg()
        self._emit_mov(dest, 2)
        self._push_reg(dest)

    def _gen_call(self, expr: Call) -> None:
        if expr.name in _INTRINSICS:
            self._gen_intrinsic(expr)
            return
        decl = self._functions.get(expr.name)
        if decl is None:
            raise MinicError(f"call to undefined function {expr.name!r}",
                             expr.line)
        if len(expr.args) != len(decl.params):
            raise MinicError(
                f"{expr.name!r} expects {len(decl.params)} arguments, "
                f"got {len(expr.args)}", expr.line)
        self._spill_all()
        # Evaluate arguments; results are parked in spill slots so that
        # later argument evaluation cannot clobber them.
        for arg in expr.args:
            self._gen_expr(arg)
            value = self._ctx.stack[-1]
            if value.kind == "reg":
                self._spill_value(value)
        values = [self._pop() for _ in expr.args][::-1]
        int_regs = iter(_INT_ARG_REGS)
        ptr_regs = iter(_PTR_ARG_REGS)
        for param, value in zip(decl.params, values):
            if param.ctype.is_pointer:
                areg = next(ptr_regs)
                if value.kind == "imm":
                    tmp = self._alloc_reg()
                    self._emit_mov_imm(tmp, value.payload)
                    self._emit(f"mov.a a{areg}, d{tmp}")
                    self._free_reg(tmp)
                else:
                    reg, _ = self._materialize(value)
                    self._emit(f"mov.a a{areg}, d{reg}")
                    self._free_reg(reg)
            else:
                dreg = next(int_regs)
                if value.kind == "imm":
                    self._emit_mov_imm(dreg, value.payload)
                else:
                    reg, _ = self._materialize(value)
                    self._emit_mov(dreg, reg)
                    self._free_reg(reg)
        self._emit(f"call {expr.name}")
        self._ctx.makes_call = True
        dest = self._alloc_reg()
        if decl.ret_type.is_pointer:
            self._emit(f"mov.d d{dest}, a2")
            self._push_reg(dest, decl.ret_type)
        else:
            self._emit_mov(dest, 2)
            self._push_reg(dest, decl.ret_type if decl.ret_type.base != "void"
                           else INT)

    def _gen_intrinsic(self, expr: Call) -> None:
        if expr.name == "__halt":
            if expr.args:
                raise MinicError("__halt takes no arguments", expr.line)
            self._emit("halt")
            self._push_imm(0)
            return
        if expr.name == "__io_read":
            if len(expr.args) != 1:
                raise MinicError("__io_read takes one argument", expr.line)
            self._gen_expr(expr.args[0])
            reg, _ = self._pop_reg()
            self._emit(f"mov.a {_ADDR_SCRATCH}, d{reg}")
            self._free_reg(reg)
            dest = self._alloc_reg()
            self._emit(f"ld.w d{dest}, [{_ADDR_SCRATCH}]")
            self._push_reg(dest)
            return
        if expr.name == "__io_write":
            if len(expr.args) != 2:
                raise MinicError("__io_write takes two arguments", expr.line)
            self._gen_expr(expr.args[0])
            self._gen_expr(expr.args[1])
            value_val = self._pop()
            addr_reg, _ = self._pop_reg()
            value_reg, _ = self._materialize(value_val)
            self._emit(f"mov.a {_ADDR_SCRATCH}, d{addr_reg}")
            self._free_reg(addr_reg)
            self._emit(f"st.w [{_ADDR_SCRATCH}], d{value_reg}")
            self._push_reg(value_reg)
            return
        raise MinicError(f"unknown intrinsic {expr.name!r}", expr.line)


def _clone_lvalue(expr: Expr) -> Expr:
    """Shallow clone of an lvalue for compound-assignment expansion."""
    if isinstance(expr, Var):
        return Var(line=expr.line, name=expr.name)
    if isinstance(expr, Index):
        return Index(line=expr.line, array=_clone_lvalue(expr.array),
                     index=expr.index)
    if isinstance(expr, Un) and expr.op == "*":
        return Un(line=expr.line, op="*", operand=expr.operand)
    raise MinicError("unsupported compound-assignment target", expr.line)


def generate(program: Program) -> str:
    """Generate assembly for *program*."""
    return CodeGenerator().generate(program)
