"""Runtime library and startup code for minic programs.

``crt0``: sets up the stack pointer, calls ``main``, writes the return
value to the exit device and halts.  The library provides software
signed divide/modulo (the ISA subset has no divide instruction) using a
classic 32-step shift-subtract loop — deliberately control-flow heavy,
like the library routines of real embedded toolchains.

Register contract of the runtime routines: arguments in ``d4``/``d5``,
result in ``d2``, clobbers ``d0``–``d7``; no stack usage.
"""

from __future__ import annotations

from repro.arch.model import MemoryMap
from repro.soc.bus import IoMap


def crt0(memory: MemoryMap | None = None, io_map: IoMap | None = None) -> str:
    """Startup code parameterized by the memory map."""
    memory = memory or MemoryMap()
    io_map = io_map or IoMap()
    exit_addr = memory.io_base + io_map.exit
    return f"""
    .text
    .global _start
_start:
    la a10, {memory.stack_top:#x}
    call main
    la a2, {exit_addr:#x}
    st.w [a2], d2
    halt
"""


DIVIDE_ROUTINES = """
; -------------------------------------------------------------------
; signed divide/modulo (C semantics: truncate toward zero,
; remainder takes the sign of the dividend)
; d4 = dividend, d5 = divisor -> d2 = result; clobbers d0-d7
; -------------------------------------------------------------------
    .global __div
__div:
    xor d7, d4, d5          ; quotient sign
    abs d4, d4
    abs d5, d5
    mov16 d2, 0             ; quotient
    mov16 d1, 0             ; remainder
    mov d0, 32
.Ldiv_loop:
    shl d1, d1, 1
    shr d3, d4, 31
    or d1, d1, d3
    shl d4, d4, 1
    shl d2, d2, 1
    jlt.u d1, d5, .Ldiv_skip
    sub d1, d1, d5
    or d2, d2, 1
.Ldiv_skip:
    add16 d0, -1
    jnz d0, .Ldiv_loop
    jge d7, 0, .Ldiv_done
    mov16 d0, 0
    sub d2, d0, d2
.Ldiv_done:
    ret16

    .global __mod
__mod:
    mov16 d7, d4            ; remainder takes the dividend's sign
    abs d4, d4
    abs d5, d5
    mov16 d2, 0
    mov16 d1, 0
    mov d0, 32
.Lmod_loop:
    shl d1, d1, 1
    shr d3, d4, 31
    or d1, d1, d3
    shl d4, d4, 1
    shl d2, d2, 1
    jlt.u d1, d5, .Lmod_skip
    sub d1, d1, d5
    or d2, d2, 1
.Lmod_skip:
    add16 d0, -1
    jnz d0, .Lmod_loop
    mov16 d2, d1
    jge d7, 0, .Lmod_done
    mov16 d0, 0
    sub d2, d0, d2
.Lmod_done:
    ret16
"""


def runtime_asm(memory: MemoryMap | None = None,
                io_map: IoMap | None = None) -> str:
    """Full runtime: crt0 plus library routines."""
    return crt0(memory, io_map) + DIVIDE_ROUTINES
