"""Lexer for minic, the C subset used to build the benchmark programs.

The paper compiles its workloads "using a C compiler into TriCore object
code"; minic plays that role for the TriCore-like ISA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MinicError

KEYWORDS = {
    "int", "char", "void", "if", "else", "while", "for", "return",
    "break", "continue",
}

#: multi-character operators, longest first.
_OPERATORS = [
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
]

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'num', 'ident', 'keyword', 'op', 'string', 'char', 'eof'
    text: str
    value: int | None
    line: int


def tokenize(source: str) -> list[Token]:
    """Split *source* into tokens, ending with an ``eof`` token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        char = source[pos]
        if char == "\n":
            line += 1
            pos += 1
            continue
        if char.isspace():
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise MinicError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if char.isdigit():
            start = pos
            if source.startswith(("0x", "0X"), pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                value = int(source[start:pos], 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                value = int(source[start:pos])
            tokens.append(Token("num", source[start:pos], value, line))
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line))
            continue
        if char == "'":
            value, pos = _char_literal(source, pos, line)
            tokens.append(Token("char", source[pos - 1], value, line))
            continue
        if char == '"':
            text, pos = _string_literal(source, pos, line)
            tokens.append(Token("string", text, None, line))
            continue
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, None, line))
                pos += len(op)
                break
        else:
            raise MinicError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", None, line))
    return tokens


def _char_literal(source: str, pos: int, line: int) -> tuple[int, int]:
    pos += 1  # opening quote
    if pos >= len(source):
        raise MinicError("unterminated character literal", line)
    if source[pos] == "\\":
        pos += 1
        if pos >= len(source) or source[pos] not in _ESCAPES:
            raise MinicError("invalid escape in character literal", line)
        value = _ESCAPES[source[pos]]
        pos += 1
    else:
        value = ord(source[pos])
        pos += 1
    if pos >= len(source) or source[pos] != "'":
        raise MinicError("unterminated character literal", line)
    return value, pos + 1


def _string_literal(source: str, pos: int, line: int) -> tuple[str, int]:
    pos += 1  # opening quote
    chars: list[str] = []
    while pos < len(source) and source[pos] != '"':
        if source[pos] == "\\":
            pos += 1
            if pos >= len(source) or source[pos] not in _ESCAPES:
                raise MinicError("invalid escape in string literal", line)
            chars.append(chr(_ESCAPES[source[pos]]))
        elif source[pos] == "\n":
            raise MinicError("unterminated string literal", line)
        else:
            chars.append(source[pos])
        pos += 1
    if pos >= len(source):
        raise MinicError("unterminated string literal", line)
    return "".join(chars), pos + 1
