"""Abstract syntax tree of minic."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CType:
    """A minic type: ``int``/``char`` with a pointer depth."""

    base: str  # 'int', 'char', 'void'
    ptr: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.ptr > 0

    @property
    def elem(self) -> "CType":
        """Pointee type (of a pointer)."""
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer")
        return CType(self.base, self.ptr - 1)

    @property
    def elem_size(self) -> int:
        """Size of the pointee in bytes (for pointer arithmetic)."""
        pointee = self.elem
        if pointee.is_pointer or pointee.base == "int":
            return 4
        return 1

    @property
    def size(self) -> int:
        if self.is_pointer or self.base == "int":
            return 4
        if self.base == "char":
            return 1
        raise ValueError(f"type {self} has no size")

    def __str__(self) -> str:
        return self.base + "*" * self.ptr


INT = CType("int")
CHAR = CType("char")
VOID = CType("void")


# --- expressions ---------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class StrLit(Expr):
    text: str = ""


@dataclass
class Bin(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Un(Expr):
    op: str = ""  # '-', '!', '~', '*', '&'
    operand: Expr | None = None


@dataclass
class Assign(Expr):
    op: str = "="  # '=', '+=', '-=', ...
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    array: Expr | None = None
    index: Expr | None = None


# --- statements -----------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    els: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None  # ExprStmt or LocalDecl or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class LocalDecl(Stmt):
    ctype: CType = INT
    name: str = ""
    array_size: int | None = None
    init: Expr | None = None


# --- top level -------------------------------------------------------------


@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class FuncDecl:
    ret_type: CType
    name: str
    params: list[Param]
    body: Block | None  # None for prototypes
    line: int = 0


@dataclass
class GlobalDecl:
    ctype: CType
    name: str
    array_size: int | None = None  # None = scalar; -1 = from initializer
    init: list[int] | str | int | None = None
    line: int = 0


@dataclass
class Program:
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
