"""Recursive-descent parser for minic."""

from __future__ import annotations

from repro.errors import MinicError
from repro.minic.astnodes import (
    CHAR,
    INT,
    VOID,
    Assign,
    Bin,
    Block,
    Break,
    Call,
    Continue,
    CType,
    Expr,
    ExprStmt,
    For,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    LocalDecl,
    Num,
    Param,
    Program,
    Return,
    Stmt,
    StrLit,
    Un,
    Var,
    While,
)
from repro.minic.lexer import Token, tokenize

#: binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Parses one translation unit into a :class:`Program`."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            got = self._peek()
            expected = text or kind
            raise MinicError(
                f"expected {expected!r}, got {got.text!r}", got.line)
        return token

    # -- top level ---------------------------------------------------------

    def parse(self) -> Program:
        program = Program()
        while self._peek().kind != "eof":
            self._parse_top_level(program)
        return program

    def _parse_type(self) -> CType:
        token = self._peek()
        if token.kind == "keyword" and token.text in ("int", "char", "void"):
            self._next()
            base = {"int": INT, "char": CHAR, "void": VOID}[token.text]
            ptr = 0
            while self._accept("op", "*"):
                ptr += 1
            return CType(base.base, ptr)
        raise MinicError(f"expected a type, got {token.text!r}", token.line)

    def _parse_top_level(self, program: Program) -> None:
        line = self._peek().line
        ctype = self._parse_type()
        name = self._expect("ident").text
        if self._peek().kind == "op" and self._peek().text == "(":
            program.functions.append(self._parse_function(ctype, name, line))
            return
        program.globals.append(self._parse_global(ctype, name, line))

    def _parse_function(self, ret_type: CType, name: str,
                        line: int) -> FuncDecl:
        self._expect("op", "(")
        params: list[Param] = []
        if not self._accept("op", ")"):
            if (self._peek().kind == "keyword" and self._peek().text == "void"
                    and self._peek(1).text == ")"):
                self._next()
            else:
                while True:
                    ptype = self._parse_type()
                    if ptype == VOID:
                        raise MinicError("void parameter", self._peek().line)
                    pname = self._expect("ident").text
                    params.append(Param(ptype, pname))
                    if not self._accept("op", ","):
                        break
            self._expect("op", ")")
        if self._accept("op", ";"):
            return FuncDecl(ret_type, name, params, None, line)
        body = self._parse_block()
        return FuncDecl(ret_type, name, params, body, line)

    def _parse_global(self, ctype: CType, name: str, line: int) -> GlobalDecl:
        if ctype == VOID:
            raise MinicError("void variable", line)
        array_size: int | None = None
        init: list[int] | str | int | None = None
        if self._accept("op", "["):
            if self._accept("op", "]"):
                array_size = -1  # size from initializer
            else:
                size_tok = self._expect("num")
                array_size = size_tok.value or 0
                self._expect("op", "]")
        if self._accept("op", "="):
            token = self._peek()
            if token.kind == "string":
                if array_size is None or ctype.base != "char":
                    raise MinicError(
                        "string initializer requires a char array", token.line)
                init = self._next().text
            elif self._accept("op", "{"):
                values: list[int] = []
                while not self._accept("op", "}"):
                    values.append(self._parse_const_expr())
                    if not self._accept("op", ","):
                        self._expect("op", "}")
                        break
                init = values
            else:
                init = self._parse_const_expr()
                if array_size is not None:
                    raise MinicError(
                        "array initializer must be braced", token.line)
        self._expect("op", ";")
        if array_size == -1:
            if init is None:
                raise MinicError(
                    f"array {name!r} needs a size or initializer", line)
            array_size = len(init) + (1 if isinstance(init, str) else 0)
        return GlobalDecl(ctype, name, array_size, init, line)

    def _parse_const_expr(self) -> int:
        """Constant expression for initializers (folded at parse time)."""
        expr = self._parse_expression()
        value = _fold(expr)
        if value is None:
            raise MinicError("initializer is not constant", expr.line)
        return value

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> Block:
        start = self._expect("op", "{")
        stmts: list[Stmt] = []
        while not self._accept("op", "}"):
            if self._peek().kind == "eof":
                raise MinicError("unterminated block", start.line)
            stmts.append(self._parse_statement())
        return Block(line=start.line, stmts=stmts)

    def _is_type_ahead(self) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.text in ("int", "char")

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.kind == "op" and token.text == "{":
            return self._parse_block()
        if self._is_type_ahead():
            return self._parse_local_decl()
        if token.kind == "keyword":
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                self._next()
                value = None
                if not self._accept("op", ";"):
                    value = self._parse_expression()
                    self._expect("op", ";")
                return Return(line=token.line, value=value)
            if token.text == "break":
                self._next()
                self._expect("op", ";")
                return Break(line=token.line)
            if token.text == "continue":
                self._next()
                self._expect("op", ";")
                return Continue(line=token.line)
        if self._accept("op", ";"):
            return Block(line=token.line, stmts=[])
        expr = self._parse_expression()
        self._expect("op", ";")
        return ExprStmt(line=token.line, expr=expr)

    def _parse_local_decl(self) -> Stmt:
        line = self._peek().line
        ctype = self._parse_type()
        decls: list[Stmt] = []
        while True:
            name = self._expect("ident").text
            array_size: int | None = None
            init: Expr | None = None
            if self._accept("op", "["):
                size_tok = self._expect("num")
                array_size = size_tok.value or 0
                self._expect("op", "]")
            elif self._accept("op", "="):
                init = self._parse_expression()
            decls.append(LocalDecl(line=line, ctype=ctype, name=name,
                                   array_size=array_size, init=init))
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return Block(line=line, stmts=decls)

    def _parse_if(self) -> If:
        token = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then = self._parse_statement()
        els = None
        if self._accept("keyword", "else"):
            els = self._parse_statement()
        return If(line=token.line, cond=cond, then=then, els=els)

    def _parse_while(self) -> While:
        token = self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return While(line=token.line, cond=cond, body=body)

    def _parse_for(self) -> For:
        token = self._expect("keyword", "for")
        self._expect("op", "(")
        init: Stmt | None = None
        if not self._accept("op", ";"):
            if self._is_type_ahead():
                init = self._parse_local_decl()  # consumes ';'
            else:
                init = ExprStmt(line=token.line, expr=self._parse_expression())
                self._expect("op", ";")
        cond: Expr | None = None
        if not self._accept("op", ";"):
            cond = self._parse_expression()
            self._expect("op", ";")
        step: Expr | None = None
        if self._peek().text != ")":
            step = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return For(line=token.line, init=init, cond=cond, step=step, body=body)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        left = self._parse_binary(1)
        token = self._peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self._next()
            value = self._parse_assignment()
            if not isinstance(left, (Var, Index, Un)) or (
                    isinstance(left, Un) and left.op != "*"):
                raise MinicError("invalid assignment target", token.line)
            return Assign(line=token.line, op=token.text, target=left,
                          value=value)
        return left

    def _parse_binary(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            prec = _PRECEDENCE.get(token.text) if token.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = Bin(line=token.line, op=token.text, left=left, right=right)

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            if token.text == "-" and isinstance(operand, Num):
                return Num(line=token.line, value=-operand.value)
            return Un(line=token.line, op=token.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self._accept("op", "["):
                index = self._parse_expression()
                self._expect("op", "]")
                expr = Index(line=expr.line, array=expr, index=index)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._next()
        if token.kind == "num" or token.kind == "char":
            return Num(line=token.line, value=token.value or 0)
        if token.kind == "string":
            return StrLit(line=token.line, text=token.text)
        if token.kind == "ident":
            if self._accept("op", "("):
                args: list[Expr] = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept("op", ","):
                            break
                    self._expect("op", ")")
                return Call(line=token.line, name=token.text, args=args)
            return Var(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise MinicError(f"unexpected token {token.text!r}", token.line)


def _fold(expr: Expr) -> int | None:
    """Fold a constant expression; returns None if not constant."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Un) and expr.op in ("-", "~", "!"):
        inner = _fold(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "~":
            return ~inner
        return 0 if inner else 1
    if isinstance(expr, Bin):
        left = _fold(expr.left)
        right = _fold(expr.right)
        if left is None or right is None:
            return None
        try:
            return _APPLY[expr.op](left, right)
        except (KeyError, ZeroDivisionError):
            return None
    return None


_APPLY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: int(a / b) if b else 0,
    "%": lambda a, b: a - int(a / b) * b if b else 0,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


def parse(source: str) -> Program:
    """Parse minic *source* into an AST."""
    return Parser(source).parse()
