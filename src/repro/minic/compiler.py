"""minic compiler driver: source text to a linked object file."""

from __future__ import annotations

from repro.arch.model import MemoryMap
from repro.isa.tricore.assembler import Assembler
from repro.minic.codegen import generate
from repro.minic.parser import parse
from repro.minic.runtime import runtime_asm
from repro.objfile.elf import ObjectFile
from repro.soc.bus import IoMap


def compile_to_asm(source: str, memory: MemoryMap | None = None,
                   io_map: IoMap | None = None,
                   with_runtime: bool = True) -> str:
    """Compile minic *source* to assembly text."""
    program = parse(source)
    asm = generate(program)
    if with_runtime:
        asm = runtime_asm(memory, io_map) + "\n" + asm
    return asm


def compile_source(source: str, memory: MemoryMap | None = None,
                   io_map: IoMap | None = None,
                   with_runtime: bool = True) -> ObjectFile:
    """Compile minic *source* and assemble it into an object file."""
    memory = memory or MemoryMap()
    asm = compile_to_asm(source, memory, io_map, with_runtime)
    return Assembler(memory).assemble(asm)
