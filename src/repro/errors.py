"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so
applications can catch one base type.  Sub-hierarchies mirror the major
subsystems: ISA handling, object files, the minic compiler, the binary
translator, and the simulators.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by this library."""


class ArchitectureError(ReproError):
    """Invalid or inconsistent architecture description."""


class EncodingError(ReproError):
    """An instruction could not be encoded into its binary form."""


class DecodingError(ReproError):
    """A word sequence does not decode to any known instruction."""

    def __init__(self, message: str, address: int | None = None) -> None:
        if address is not None:
            message = f"{message} (at address {address:#010x})"
        super().__init__(message)
        self.address = address


class AssemblerError(ReproError):
    """Syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class ObjectFileError(ReproError):
    """Malformed object file or unsupported object-file feature."""


class MinicError(ReproError):
    """Error reported by the minic compiler."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class TranslationError(ReproError):
    """The binary translator could not translate the program."""


class SchedulingError(TranslationError):
    """The VLIW scheduler violated or could not satisfy a constraint."""


class RegisterAllocationError(TranslationError):
    """Register binding failed (e.g. no spill slot available)."""


class SimulationError(ReproError):
    """Runtime error inside one of the simulators."""


class ShardError(SimulationError):
    """A sharded-evaluation worker failed while executing one shard.

    Carries the :class:`~repro.eval.sharded.ShardSpec` that died and the
    formatted traceback of the underlying failure (which, for pool
    execution, includes the worker-side frames), so a long sweep that
    loses one shard reports *which* measurement broke, not just a bare
    exception bubbled out of ``future.result()``.
    """

    def __init__(self, message: str, spec=None,
                 worker_traceback: str | None = None) -> None:
        super().__init__(message)
        self.spec = spec
        self.worker_traceback = worker_traceback


class BusError(SimulationError):
    """Access to an unmapped or ill-sized bus address."""

    def __init__(self, message: str, address: int | None = None) -> None:
        if address is not None:
            message = f"{message} (address {address:#010x})"
        super().__init__(message)
        self.address = address


class HazardError(SimulationError):
    """Strict-mode VLIW simulator detected a delay-slot hazard.

    Raised when translated code reads a register whose write is still in
    flight, which indicates a scheduler bug rather than a user error.
    """


class DebugError(ReproError):
    """Error in the debug subsystem (breakpoints, RSP protocol)."""
