"""Static branch prediction of the source processor.

The TriCore-style scheme: conditional branches are predicted by
direction (backward = taken, forward = not taken); the hardware
``loop`` instruction is always predicted taken.  The associated cycle
costs live in :class:`repro.arch.model.BranchModel`; this module only
decides the predicted direction, which is a *static* property — the
translator bakes it into the generated correction code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.model import BranchModel
from repro.translator.ir import BranchKind


def predicted_taken(kind: BranchKind, target: int | None, pc: int) -> bool:
    """Statically predicted direction of a branch at *pc*.

    Unconditional transfers (jumps, calls, returns, indirect jumps) are
    trivially "taken"; conditional branches follow BTFN; ``loop`` is
    predicted taken.
    """
    if kind in (BranchKind.JUMP, BranchKind.CALL, BranchKind.CALL_INDIRECT,
                BranchKind.RET, BranchKind.INDIRECT):
        return True
    if kind is BranchKind.LOOP:
        return True
    if kind is BranchKind.COND:
        return target is not None and target <= pc
    return False


@dataclass
class BranchStats:
    """Dynamic prediction statistics gathered by the reference ISS."""

    conditional: int = 0
    mispredicted: int = 0
    taken: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredicted / self.conditional if self.conditional else 0.0


def dynamic_cost(model: BranchModel, kind: BranchKind, taken: bool,
                 predicted: bool) -> int:
    """Actual cycles of a branch with the given outcome."""
    if kind is BranchKind.COND:
        return model.conditional_cost(taken, predicted)
    if kind is BranchKind.LOOP:
        return model.loop_cost(taken)
    if kind is BranchKind.CALL or kind is BranchKind.CALL_INDIRECT:
        return model.call
    if kind is BranchKind.RET:
        return model.ret
    if kind in (BranchKind.JUMP, BranchKind.INDIRECT):
        return model.unconditional
    return 0


def static_cost(model: BranchModel, kind: BranchKind, predicted: bool,
                assume_predicted_path: bool) -> int:
    """Cycles the static calculation accounts for a block-ending branch.

    With *assume_predicted_path* (detail level 1, purely static
    prediction) the cost of the statically predicted outcome is used.
    Without it (levels >= 2) only the guaranteed minimum is charged and
    the difference is produced at run time by the correction code.
    """
    if kind is BranchKind.COND:
        if assume_predicted_path:
            return (model.taken_correct if predicted
                    else model.not_taken_correct)
        return model.min_conditional
    if kind is BranchKind.LOOP:
        if assume_predicted_path:
            return model.loop_taken
        return model.min_loop
    return dynamic_cost(model, kind, True, predicted)
