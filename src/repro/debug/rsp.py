"""GDB remote-serial-protocol-style interface to the debugger.

The paper's debugging support is "implemented using an interface
program between the translated code and the remote debugging interface
of the GNU debugger (gdb)".  This module provides that wire level: the
``$<payload>#<checksum>`` framing with ``+``/``-`` acknowledgements and
a useful command subset, served over an in-memory transport.

Supported commands: ``?`` halt reason, ``g`` read registers, ``p``/``P``
single register read/write, ``m``/``M`` memory read/write, ``s`` step,
``c`` continue, ``Z0``/``z0`` breakpoints.
"""

from __future__ import annotations

from repro.debug.debugger import Debugger, StopInfo, StopReason
from repro.errors import DebugError
from repro.isa.tricore.registers import NUM_REGS, reg_name
from repro.utils.bits import u32

_ACK = b"+"
_NAK = b"-"


def checksum(payload: bytes) -> int:
    return sum(payload) & 0xFF


def encode_packet(payload: bytes) -> bytes:
    """Frame *payload* as ``$payload#xx``."""
    return b"$" + payload + b"#" + f"{checksum(payload):02x}".encode()


def decode_packet(frame: bytes) -> bytes:
    """Unframe and verify one packet; raises :class:`DebugError`."""
    if not frame.startswith(b"$"):
        raise DebugError("packet does not start with '$'")
    hash_index = frame.rfind(b"#")
    if hash_index < 0 or len(frame) < hash_index + 3:
        raise DebugError("packet has no checksum")
    payload = frame[1:hash_index]
    expected = int(frame[hash_index + 1:hash_index + 3], 16)
    if checksum(payload) != expected:
        raise DebugError(
            f"checksum mismatch: {checksum(payload):02x} != {expected:02x}")
    return payload


def _hex32(value: int) -> str:
    """Little-endian hex of a 32-bit value (gdb register format)."""
    return u32(value).to_bytes(4, "little").hex()


def _parse_hex32(text: str) -> int:
    return int.from_bytes(bytes.fromhex(text), "little")


class RspServer:
    """Serves the RSP command set on top of a :class:`Debugger`."""

    def __init__(self, debugger: Debugger) -> None:
        self.debugger = debugger
        self.last_stop: StopInfo | None = None

    # -- framing --------------------------------------------------------

    def handle_frame(self, frame: bytes) -> bytes:
        """Process one framed packet; returns ack + framed response."""
        try:
            payload = decode_packet(frame)
        except DebugError:
            return _NAK
        response = self.handle_command(payload.decode("ascii"))
        return _ACK + encode_packet(response.encode("ascii"))

    # -- commands --------------------------------------------------------

    def handle_command(self, command: str) -> str:
        if not command:
            return ""
        head = command[0]
        rest = command[1:]
        if head == "?":
            return self._stop_reply(self.last_stop)
        if head == "g":
            return self._read_all_registers()
        if head == "p":
            return self._read_register(rest)
        if head == "P":
            return self._write_register(rest)
        if head == "m":
            return self._read_memory(rest)
        if head == "M":
            return self._write_memory(rest)
        if head == "s":
            self.last_stop = self.debugger.step()
            return self._stop_reply(self.last_stop)
        if head == "c":
            self.last_stop = self.debugger.cont()
            return self._stop_reply(self.last_stop)
        if command.startswith("Z0,"):
            return self._breakpoint(rest[2:], insert=True)
        if command.startswith("z0,"):
            return self._breakpoint(rest[2:], insert=False)
        if command.startswith("qSupported"):
            return "PacketSize=4000"
        return ""  # unsupported (per RSP convention)

    def _stop_reply(self, stop: StopInfo | None) -> str:
        if stop is None:
            return "S05"
        if stop.reason is StopReason.EXITED:
            return f"W{(stop.exit_code or 0) & 0xFF:02x}"
        if stop.reason is StopReason.HALTED:
            return "W00"
        return "S05"  # TRAP for breakpoints and steps

    def _read_all_registers(self) -> str:
        values = self.debugger.read_all_registers()
        parts = [_hex32(values[reg_name(reg)]) for reg in range(NUM_REGS)]
        parts.append(_hex32(self.debugger.src_pc))
        return "".join(parts)

    def _read_register(self, rest: str) -> str:
        index = int(rest, 16)
        if index == NUM_REGS:
            return _hex32(self.debugger.src_pc)
        if not 0 <= index < NUM_REGS:
            return "E01"
        return _hex32(self.debugger.read_register(reg_name(index)))

    def _write_register(self, rest: str) -> str:
        try:
            index_text, value_text = rest.split("=", 1)
            index = int(index_text, 16)
            value = _parse_hex32(value_text)
        except ValueError:
            return "E02"
        if not 0 <= index < NUM_REGS:
            return "E01"
        self.debugger.write_register(reg_name(index), value)
        return "OK"

    def _read_memory(self, rest: str) -> str:
        try:
            addr_text, len_text = rest.split(",", 1)
            address = int(addr_text, 16)
            length = int(len_text, 16)
        except ValueError:
            return "E02"
        try:
            return self.debugger.read_memory(address, length).hex()
        except DebugError:
            return "E03"

    def _write_memory(self, rest: str) -> str:
        try:
            location, data_text = rest.split(":", 1)
            addr_text, len_text = location.split(",", 1)
            address = int(addr_text, 16)
            length = int(len_text, 16)
            data = bytes.fromhex(data_text)
        except ValueError:
            return "E02"
        if len(data) != length:
            return "E02"
        try:
            self.debugger.write_memory(address, data)
        except DebugError:
            return "E03"
        return "OK"

    def _breakpoint(self, rest: str, insert: bool) -> str:
        try:
            addr_text = rest.split(",")[0]
            address = int(addr_text, 16)
        except (ValueError, IndexError):
            return "E02"
        try:
            if insert:
                self.debugger.set_breakpoint(address)
            else:
                self.debugger.clear_breakpoint(address)
        except DebugError:
            return "E03"
        return "OK"


class RspClient:
    """Test/client helper speaking the framed protocol to a server."""

    def __init__(self, server: RspServer) -> None:
        self._server = server

    def command(self, text: str) -> str:
        frame = encode_packet(text.encode("ascii"))
        reply = self._server.handle_frame(frame)
        if not reply.startswith(_ACK):
            raise DebugError(f"server rejected packet: {reply!r}")
        return decode_packet(reply[1:]).decode("ascii")
