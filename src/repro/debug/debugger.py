"""Debugging of translated code (Section 3.5).

The paper's debug support keeps **two translations** of the program: one
with block-oriented cycle generation (fast execution between stops) and
one with instruction-oriented cycle generation (single stepping).  The
interface program between the translated code and the debugger front
end implements breakpoints, single step and normal execution, and
"has to translate the register names and the addresses used".

This module is that interface program:

* breakpoints land on the entry of the containing basic block of the
  block-oriented translation; reaching an exact mid-block address uses
  the instruction-oriented translation ("to get to the real break point
  the single step program has to be used");
* register reads/writes go through the translation's register-binding
  map (including spilled registers);
* memory addresses are translated between source and target maps;
* switching between the two translations migrates the source-visible
  state (registers, data memory, emulated clock) at block boundaries,
  where the synchronization device is quiescent by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.model import SourceArch, TargetArch, default_source_arch
from repro.errors import DebugError
from repro.isa.tricore.registers import parse_reg, reg_name
from repro.objfile.elf import ObjectFile
from repro.translator.blocks import build_cfg
from repro.translator.decoder import decode_object
from repro.translator.driver import TranslationResult, translate
from repro.vliw.platform import PrototypingPlatform


class StopReason(enum.Enum):
    BREAKPOINT = "breakpoint"
    STEP = "step"
    EXITED = "exited"
    HALTED = "halted"


@dataclass
class StopInfo:
    reason: StopReason
    address: int
    exit_code: int | None = None


class _Side:
    """One translation plus its executing platform."""

    def __init__(self, result: TranslationResult,
                 source_arch: SourceArch) -> None:
        self.result = result
        self.platform = PrototypingPlatform(result.program,
                                            source_arch=source_arch)
        self.core = self.platform.core
        self.program = result.program

    def head_addr(self, packet: int) -> int | None:
        info = self.program.block_at.get(packet)
        return info.source_addr if info is not None else None


class Debugger:
    """Breakpoints, single-step and state access for translated code."""

    def __init__(self, obj: ObjectFile,
                 source: SourceArch | None = None,
                 target: TargetArch | None = None,
                 level: int = 1) -> None:
        self.obj = obj
        self.source = source or default_source_arch()
        self._cfg = build_cfg(decode_object(obj), obj)
        self._instr_addrs = {i.addr for block in self._cfg
                             for i in block.instrs}
        self.block_side = _Side(
            translate(obj, level=level, source=source, target=target),
            self.source)
        self.instr_side = _Side(
            translate(obj, level=level, source=source, target=target,
                      instruction_blocks=True),
            self.source)
        self.breakpoints: set[int] = set()
        self._active = self.block_side
        self._run_prologue(self.block_side)
        self._run_prologue(self.instr_side)
        self.src_pc = obj.entry

    # ------------------------------------------------------------------
    # breakpoints
    # ------------------------------------------------------------------

    def set_breakpoint(self, address: int) -> None:
        if address not in self._instr_addrs:
            raise DebugError(
                f"{address:#010x} is not an instruction address")
        self.breakpoints.add(address)

    def clear_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address)

    # ------------------------------------------------------------------
    # execution control
    # ------------------------------------------------------------------

    def _run_prologue(self, side: _Side) -> None:
        """Advance a fresh platform to the program entry block."""
        target = side.program.addr_to_packet[self.obj.entry]
        guard = 0
        while side.core.peek_next_packet() != target:
            side.core.step_packet()
            guard += 1
            if guard > 1000:
                raise DebugError("prologue did not reach the entry block")

    @property
    def exited(self) -> bool:
        return self._active.platform.bus.device("exit").exited \
            or self._active.core.halted

    def step(self) -> StopInfo:
        """Execute exactly one source instruction."""
        self._ensure_side(self.instr_side)
        stop = self._advance_one_block(self.instr_side)
        return stop if stop is not None else StopInfo(StopReason.STEP,
                                                      self.src_pc)

    def cont(self) -> StopInfo:
        """Run until a breakpoint, exit, or halt."""
        # Reach a block boundary of the block-oriented program first.
        if self._active is self.instr_side:
            guard = 0
            while self.src_pc not in self.block_side.program.addr_to_packet:
                stop = self._advance_one_block(self.instr_side)
                if stop is not None:
                    return stop
                if self.src_pc in self.breakpoints:
                    return StopInfo(StopReason.BREAKPOINT, self.src_pc)
                guard += 1
                if guard > 100_000:
                    raise DebugError("no block boundary reached")
            self._ensure_side(self.block_side)
        side = self.block_side
        while True:
            packet = side.core.peek_next_packet()
            head = side.head_addr(packet)
            if head is not None:
                block = self._cfg.blocks.get(head)
                hit = None
                if block is not None:
                    for instr in block.instrs:
                        if instr.addr in self.breakpoints:
                            hit = instr.addr
                            break
                if hit is not None:
                    self.src_pc = head
                    if hit == head:
                        return StopInfo(StopReason.BREAKPOINT, head)
                    # Mid-block breakpoint: single-step to the address.
                    self._ensure_side(self.instr_side)
                    guard = 0
                    while self.src_pc != hit:
                        stop = self._advance_one_block(self.instr_side)
                        if stop is not None:
                            return stop
                        guard += 1
                        if guard > 10_000:
                            raise DebugError(
                                "failed to reach mid-block breakpoint")
                    return StopInfo(StopReason.BREAKPOINT, hit)
                self.src_pc = head
            stop = self._check_stopped(side)
            if stop is not None:
                return stop
            side.core.step_packet()

    def _advance_one_block(self, side: _Side) -> StopInfo | None:
        """Run until the next block head (one instruction when
        instruction-oriented); returns a stop for exit/halt."""
        stepped_off = False
        guard = 0
        while True:
            stop = self._check_stopped(side)
            if stop is not None:
                return stop
            packet = side.core.peek_next_packet()
            head = side.head_addr(packet)
            if head is not None and stepped_off:
                self.src_pc = head
                return None
            if head is not None and head != self.src_pc:
                # already at a different head (e.g. after migration)
                self.src_pc = head
                return None
            side.core.step_packet()
            if head is not None:
                stepped_off = True
            guard += 1
            if guard > 100_000:
                raise DebugError("runaway single step")

    def _check_stopped(self, side: _Side) -> StopInfo | None:
        exit_device = side.platform.bus.device("exit")
        if exit_device.exited:
            return StopInfo(StopReason.EXITED, self.src_pc,
                            exit_code=exit_device.code)
        if side.core.halted:
            return StopInfo(StopReason.HALTED, self.src_pc)
        return None

    # ------------------------------------------------------------------
    # state access and migration
    # ------------------------------------------------------------------

    def _ensure_side(self, side: _Side) -> None:
        if self._active is side:
            return
        # Commit the old side's transients, discard the new side's.
        self._active.core.settle()
        side.core.clear_transients()
        source_state = [self._read_source_reg(self._active, reg)
                        for reg in range(32)]
        data = self._active.core.data_window(
            self._active.core.target.data_base, self.source.memory.data_size)
        for reg in range(32):
            self._write_source_reg(side, reg, source_state[reg])
        base = side.core.target.data_base
        for offset in range(0, len(data), 4):
            word = int.from_bytes(data[offset:offset + 4], "little")
            side.core.write_mem(base + offset, word, 4)
        side.platform.sync.emulated_cycles = \
            self._active.platform.sync.emulated_cycles
        target_packet = side.program.addr_to_packet.get(self.src_pc)
        if target_packet is None:
            raise DebugError(
                f"{self.src_pc:#010x} is not a block entry of the "
                f"{'instruction' if side is self.instr_side else 'block'}"
                f"-oriented translation")
        side.core.pc = target_packet
        self._active = side

    def _read_source_reg(self, side: _Side, reg: int) -> int:
        program = side.program
        phys = program.reg_binding.get(reg)
        if phys is not None:
            return side.core.read_reg(phys)
        slot = program.spill_slots.get(reg)
        if slot is not None:
            return side.core.read_mem(slot, 4)
        return 0  # register unused by the program

    def _write_source_reg(self, side: _Side, reg: int, value: int) -> None:
        program = side.program
        phys = program.reg_binding.get(reg)
        if phys is not None:
            side.core.write_reg(phys, value)
            return
        slot = program.spill_slots.get(reg)
        if slot is not None:
            side.core.write_mem(slot, value, 4)

    # -- public state API ---------------------------------------------------

    def read_register(self, name: str) -> int:
        """Read a source register by name (``d4``, ``a10``)."""
        self._active.core.settle()
        return self._read_source_reg(self._active, parse_reg(name))

    def write_register(self, name: str, value: int) -> None:
        self._active.core.settle()
        self._write_source_reg(self._active, parse_reg(name), value)

    def read_all_registers(self) -> dict[str, int]:
        self._active.core.settle()
        return {reg_name(reg): self._read_source_reg(self._active, reg)
                for reg in range(32)}

    def read_memory(self, address: int, size: int) -> bytes:
        """Read source data memory (address translated to the target)."""
        memory = self.source.memory
        if not memory.is_data(address) \
                or not memory.is_data(address + size - 1):
            raise DebugError(
                f"{address:#010x} is outside the source data region")
        core = self._active.core
        target_addr = address - memory.data_base + core.target.data_base
        return core.data_window(target_addr, size)

    def write_memory(self, address: int, data: bytes) -> None:
        memory = self.source.memory
        if not memory.is_data(address) \
                or not memory.is_data(address + len(data) - 1):
            raise DebugError(
                f"{address:#010x} is outside the source data region")
        core = self._active.core
        target_addr = address - memory.data_base + core.target.data_base
        for index, byte in enumerate(data):
            core.write_mem(target_addr + index, byte, 1)

    @property
    def emulated_cycles(self) -> int:
        return self._active.platform.sync.emulated_cycles
