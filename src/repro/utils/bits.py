"""Bit-manipulation helpers shared across ISA, simulator and translator code.

All register and memory values in this library are stored as unsigned
Python integers masked to their width; these helpers convert between the
unsigned storage form and the signed interpretation, and pack/extract
bit fields for instruction encodings.
"""

from __future__ import annotations

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFF_FFFF


def u32(value: int) -> int:
    """Return *value* truncated to an unsigned 32-bit integer."""
    return value & MASK32


def u16(value: int) -> int:
    """Return *value* truncated to an unsigned 16-bit integer."""
    return value & MASK16


def u8(value: int) -> int:
    """Return *value* truncated to an unsigned 8-bit integer."""
    return value & MASK8


def s32(value: int) -> int:
    """Interpret the low 32 bits of *value* as a signed integer."""
    value &= MASK32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def s16(value: int) -> int:
    """Interpret the low 16 bits of *value* as a signed integer."""
    value &= MASK16
    return value - 0x1_0000 if value & 0x8000 else value


def s8(value: int) -> int:
    """Interpret the low 8 bits of *value* as a signed integer."""
    value &= MASK8
    return value - 0x100 if value & 0x80 else value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low *bits* bits of *value* to a Python int."""
    if bits <= 0:
        raise ValueError("bit width must be positive")
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def fits_signed(value: int, bits: int) -> bool:
    """Return True if *value* is representable as a signed *bits*-bit int."""
    limit = 1 << (bits - 1)
    return -limit <= value < limit


def fits_unsigned(value: int, bits: int) -> bool:
    """Return True if *value* is representable as an unsigned *bits*-bit int."""
    return 0 <= value < (1 << bits)


def extract(word: int, lo: int, width: int) -> int:
    """Extract *width* bits of *word* starting at bit *lo* (LSB = 0)."""
    return (word >> lo) & ((1 << width) - 1)


def insert(word: int, lo: int, width: int, value: int) -> int:
    """Return *word* with *width* bits at *lo* replaced by *value*.

    Raises :class:`ValueError` if *value* does not fit in *width* bits
    (unsigned); callers that pack signed fields must mask first.
    """
    if not fits_unsigned(value, width):
        raise ValueError(f"value {value} does not fit in {width} unsigned bits")
    mask = ((1 << width) - 1) << lo
    return (word & ~mask) | (value << lo)


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def is_power_of_two(value: int) -> bool:
    """Return True if *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power-of-two *value*, raising otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
