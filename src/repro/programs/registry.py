"""Registry of benchmark programs.

The six Section-4 workloads of the paper (gcd, dpcm, fir, ellip, sieve,
subband) plus fibonacci (Table 2) and two I/O demonstration programs.
Every entry carries a pure-Python reference implementation of the same
algorithm, so tests can check the compiled/simulated/translated result
against an independent computation — not just against another simulator.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass
from typing import Callable

from repro.arch.model import MemoryMap
from repro.errors import ReproError
from repro.minic.compiler import compile_source
from repro.objfile.elf import ObjectFile
from repro.utils.bits import s32, u32


def _lcg_stream(seed: int, count: int, shift: int, mask: int) -> list[int]:
    """The LCG the .mc sources use to generate deterministic inputs."""
    values = []
    for _ in range(count):
        seed = u32(seed * 1103515245 + 12345)
        values.append((s32(seed) >> shift) & mask)
    return values


def _ref_gcd() -> int:
    import math

    pairs = [1071, 462, 96, 36, 270, 192, 510, 92, 2191, 127]
    return sum(math.gcd(pairs[i], pairs[i + 1]) for i in range(0, 10, 2))

def _ref_fibonacci() -> int:
    a, b = 0, 1
    for _ in range(15):
        a, b = b, a + b
    return a


def _ref_sieve() -> int:
    n = 340
    flags = [False] * (n + 2)
    for i in range(2, n + 1):
        flags[i] = True
    count = 0
    for i in range(2, n + 1):
        if flags[i]:
            count += 1
            for k in range(i + i, n + 1, i):
                flags[k] = False
    return count


def _ref_fir() -> int:
    coeff = [3, -9, 21, -40, 66, -98, 133, 441,
             441, 133, -98, 66, -40, 21, -9, 3]
    inp = _lcg_stream(12345, 64, 16, 1023)
    out = [0] * 64
    for n in range(15, 64):
        acc = 0
        for k in range(16):
            acc = s32(acc + s32(coeff[k] * inp[n - k]))
        out[n] = acc >> 8
    acc = 0
    for n in range(64):
        acc ^= out[n]
    return acc & 255


def _ref_ellip() -> int:
    inp = _lcg_stream(98765, 64, 20, 511)
    w1a = w2a = w1b = w2b = w1c = w2c = 0
    out = [0] * 64
    for n in range(64):
        x = inp[n] << 4
        w0 = s32(x - ((-1228 * w1a) >> 12) - ((410 * w2a) >> 12))
        y = s32(1024 * w0 + 1536 * w1a + 1024 * w2a) >> 12
        w2a, w1a = w1a, w0
        w0 = s32(y - ((-901 * w1b) >> 12) - ((737 * w2b) >> 12))
        y = s32(1024 * w0 + 512 * w1b + 1024 * w2b) >> 12
        w2b, w1b = w1b, w0
        w0 = s32(y - ((-655 * w1c) >> 12) - ((286 * w2c) >> 12))
        y = s32(512 * w0 + 819 * w1c + 512 * w2c) >> 12
        w2c, w1c = w1c, w0
        out[n] = y
    acc = 0
    for n in range(64):
        acc ^= out[n]
    return acc & 255


def _signed_char(value: int) -> int:
    value &= 0xFF
    return value - 256 if value >= 128 else value


def _ref_dpcm() -> int:
    samples = [_signed_char(v) for v in _lcg_stream(555, 128, 18, 127)]
    codes = [0] * 128
    pred = 0
    for n in range(128):
        diff = samples[n] - pred
        if diff < 0:
            code = (-diff) >> 3
            code = min(code, 7)
            code = -code
        else:
            code = diff >> 3
            code = min(code, 7)
        codes[n] = code
        pred = pred + (code << 3)
        pred = min(pred, 127)
        pred = max(pred, -128)
    recon = [0] * 128
    pred = 0
    for n in range(128):
        pred = pred + (codes[n] << 3)
        pred = min(pred, 127)
        pred = max(pred, -128)
        recon[n] = _signed_char(pred)
    total = 0
    for n in range(128):
        total += abs(samples[n] - recon[n])
    return total & 255


def _ref_subband() -> int:
    h = [9, -44, 128, 459, 459, 128, -44, 9]
    x = _lcg_stream(2026, 144, 19, 255)
    low = [0] * 64
    high = [0] * 64
    for n in range(0, 128, 2):
        lo = sum(h[k] * x[n + k] for k in range(8))
        hi = sum((h[k] if k % 2 == 0 else -h[k]) * x[n + k] for k in range(8))
        low[n >> 1] = s32(lo) >> 7
        high[n >> 1] = s32(hi) >> 7
    acc = 0
    for n in range(64):
        acc ^= low[n] ^ high[n]
    return acc & 255


def _ref_uart_hello() -> int:
    return len("hello, soc!")


#: Q10 8-point DCT-II coefficient table; row u holds
#: round(1024 * (c(u)/2) * cos((2j+1)u*pi/16)) — the same literal the
#: dct8x8.mc source carries, so reference and kernel share one table.
_DCT_C = (
    362, 362, 362, 362, 362, 362, 362, 362,
    502, 426, 284, 100, -100, -284, -426, -502,
    473, 196, -196, -473, -473, -196, 196, 473,
    426, -100, -502, -284, 284, 502, 100, -426,
    362, -362, -362, 362, 362, -362, -362, 362,
    284, -502, 100, 426, -426, -100, 502, -284,
    196, -473, 473, -196, -196, 473, -473, 196,
    100, -284, 426, -502, 502, -426, 284, -100,
)


def _ref_dct8x8() -> int:
    """Mirror of dct8x8.mc: 2-D DCT round trip with s32 semantics."""
    C = _DCT_C

    def dct1d(vin):
        return [s32(sum(s32(C[8 * u + j] * vin[j]) for j in range(8))) >> 10
                for u in range(8)]

    def idct1d(vin):
        return [(s32(sum(s32(C[8 * u + j] * vin[u]) for u in range(8)))
                 + 512) >> 10 for j in range(8)]

    block = [v - 128 for v in _lcg_stream(20260731, 64, 16, 255)]
    tmp = [0] * 64
    freq = [0] * 64
    recon = [0] * 64
    chk = 0
    for i in range(8):
        vout = dct1d([block[i * 8 + j] for j in range(8)])
        for u in range(8):
            tmp[u * 8 + i] = vout[u]
    for i in range(8):
        vout = dct1d([tmp[i * 8 + j] for j in range(8)])
        for u in range(8):
            freq[u * 8 + i] = vout[u]
    for i in range(64):
        freq[i] >>= 2
        chk = s32(chk * 31 + freq[i])
        freq[i] = s32(freq[i] << 2)
    for i in range(8):
        vout = idct1d([freq[i * 8 + j] for j in range(8)])
        for u in range(8):
            tmp[u * 8 + i] = vout[u]
    for i in range(8):
        vout = idct1d([tmp[i * 8 + j] for j in range(8)])
        for u in range(8):
            recon[u * 8 + i] = vout[u]
    for i in range(64):
        chk = s32(chk * 31 + abs(recon[i] - block[i]))
    return chk & 255


def _ref_viterbi() -> int:
    """Mirror of viterbi.mc: K=3 encode/decode over the 4-state trellis."""
    chk = 0
    errors = 0
    for rnd in range(2):
        msg = _lcg_stream(48271 + rnd * 1000003, 40, 17, 1)
        state = 0
        cbits = []
        for t in range(42):
            b = msg[t] if t < 40 else 0
            r3 = (b << 2) | state
            cbits.append((r3 ^ (r3 >> 1) ^ (r3 >> 2)) & 1)
            cbits.append((r3 ^ (r3 >> 2)) & 1)
            state = r3 >> 1
        pm = [0, 1000, 1000, 1000]
        surv = [0] * (42 * 4)
        for t in range(42):
            r0, r1 = cbits[2 * t], cbits[2 * t + 1]
            npm = [0] * 4
            for ns in range(4):
                p0 = (ns & 1) << 1
                b = ns >> 1
                cands = []
                for pred in (p0, p0 | 1):
                    r3 = (b << 2) | pred
                    e0 = (r3 ^ (r3 >> 1) ^ (r3 >> 2)) & 1
                    e1 = (r3 ^ (r3 >> 2)) & 1
                    cands.append((pm[pred] + (r0 != e0) + (r1 != e1), pred))
                m0, m1 = cands
                # the unrolled kernel takes the second pred on strict <
                npm[ns], surv[4 * t + ns] = (
                    m1 if m1[0] < m0[0] else m0)
            pm = npm
        s = min(range(4), key=lambda i: (pm[i], i))
        best = pm[s]
        dec = [0] * 40
        for t in range(41, -1, -1):
            if t < 40:
                dec[t] = s >> 1
            s = surv[4 * t + s]
        for t in range(40):
            if dec[t] != msg[t]:
                errors += 1
            chk = s32(chk * 2 + dec[t])
        chk = s32(chk * 31 + best)
    if errors:
        return (100 + errors) & 255
    return chk & 255


def _ref_crc32() -> int:
    """Mirror of crc32.mc: table-driven CRC-32 of the 1 KiB message."""
    tab = []
    for n in range(256):
        c = n
        for _ in range(8):
            if c & 1:
                c = s32(((c >> 1) & 0x7FFFFFFF) ^ 0xEDB88320)
            else:
                c = (c >> 1) & 0x7FFFFFFF
        tab.append(c)
    crc = s32(0xFFFFFFFF)
    for value in _lcg_stream(2468, 1024, 16, 255):
        byte = _signed_char(value)
        crc = s32(tab[(crc ^ byte) & 255] ^ ((crc >> 8) & 0xFFFFFF))
    crc = s32(crc ^ -1)
    return (crc ^ (crc >> 8) ^ (crc >> 16) ^ (crc >> 24)) & 255


def _ref_prodcons_checksum() -> int:
    """Checksum the mbox_prodcons consumer core must exit with."""
    seed = 12345
    check = 0
    for _ in range(16):
        seed = u32(seed * 1103515245 + 12345)
        check = u32(check * 31 + (seed & 255))
    return check & 255


@dataclass(frozen=True)
class ProgramSpec:
    """One registered workload."""

    name: str
    filename: str
    description: str
    category: str  # 'control', 'filter', 'audio', 'io'
    reference: Callable[[], int] | None
    paper_instructions: int | None = None  # Table 2 values, where given


PROGRAMS: dict[str, ProgramSpec] = {
    spec.name: spec
    for spec in (
        ProgramSpec("gcd", "gcd.mc",
                    "subtraction Euclid over input pairs", "control",
                    _ref_gcd, paper_instructions=1484),
        ProgramSpec("fibonacci", "fibonacci.mc",
                    "recursive Fibonacci", "control",
                    _ref_fibonacci, paper_instructions=41419),
        ProgramSpec("sieve", "sieve.mc",
                    "Eratosthenes prime sieve", "control",
                    _ref_sieve, paper_instructions=20779),
        ProgramSpec("fir", "fir.mc",
                    "16-tap FIR filter", "filter", _ref_fir),
        ProgramSpec("ellip", "ellip.mc",
                    "elliptic IIR filter (3 biquads)", "filter", _ref_ellip),
        ProgramSpec("dpcm", "dpcm.mc",
                    "DPCM encode/decode round trip", "audio", _ref_dpcm),
        ProgramSpec("subband", "subband.mc",
                    "two-band QMF analysis filterbank", "audio",
                    _ref_subband),
        ProgramSpec("uart_hello", "uart_hello.mc",
                    "UART output demo", "io", _ref_uart_hello),
        ProgramSpec("timer_probe", "timer_probe.mc",
                    "self-timing loop via the cycle timer", "io", None),
        ProgramSpec("dct8x8", "dct8x8.mc",
                    "jpeg-style 8x8 2-D DCT round trip (big kernel)",
                    "filter", _ref_dct8x8),
        ProgramSpec("viterbi", "viterbi.mc",
                    "K=3 convolutional encode + Viterbi decode (big kernel)",
                    "control", _ref_viterbi),
        ProgramSpec("crc32", "crc32.mc",
                    "table-driven CRC-32 over a 1 KiB message (big kernel)",
                    "control", _ref_crc32),
    )
}

@dataclass(frozen=True)
class SharedProgramSpec:
    """A multi-core workload that communicates over shared devices.

    Shared workloads are registered separately from :data:`PROGRAMS`:
    they only terminate on a shared-capable multi-core SoC (a lone
    core would poll a mailbox nobody fills), so the single-core
    measurement sweeps and the non-contending differential suite must
    not pick them up.  *expected_exits(cores)* predicts the per-core
    exit codes from the protocol, mirroring the pure-Python reference
    idiom of the ordinary registry entries.
    """

    name: str
    filename: str
    description: str
    min_cores: int
    expected_exits: Callable[[int], list[int]]


def _pingpong_exits(cores: int) -> list[int]:
    return [17, 15] + [0] * (cores - 2)


def _prodcons_exits(cores: int) -> list[int]:
    return [16, _ref_prodcons_checksum()] + [0] * (cores - 2)


def _barrier_exits(cores: int) -> list[int]:
    return [10 * cores * (cores + 1) // 2] + list(range(1, cores))


def _allreduce_exits(cores: int) -> list[int]:
    acc = [me + 1 for me in range(cores)]
    for r in range(16):
        sent = []
        for me in range(cores):
            v = acc[me]
            for _ in range(400):
                v = (v * 3 + r) & 0xFFFF
            sent.append(v & 0xFF)
        for me in range(cores):
            acc[me] = (acc[me] + sent[(me + cores - 1) % cores]) & 0xFF
    return [a & 0x7F for a in acc]


SHARED_PROGRAMS: dict[str, SharedProgramSpec] = {
    spec.name: spec
    for spec in (
        SharedProgramSpec(
            "mbox_pingpong", "mbox_pingpong.mc",
            "mailbox round-trip token exchange between cores 0 and 1",
            2, _pingpong_exits),
        SharedProgramSpec(
            "mbox_prodcons", "mbox_prodcons.mc",
            "producer/consumer stream over one word-deep mailbox slot",
            2, _prodcons_exits),
        SharedProgramSpec(
            "shared_barrier", "shared_barrier.mc",
            "four-round barrier and reduction via shared scratch RAM",
            2, _barrier_exits),
        SharedProgramSpec(
            "mbox_allreduce", "mbox_allreduce.mc",
            "ring all-reduce: private compute rounds between neighbor "
            "mailbox exchanges",
            2, _allreduce_exits),
    )
}


@dataclass(frozen=True)
class ClusterProgramSpec:
    """A distributed workload that communicates over the cluster fabric.

    Like shared workloads, cluster workloads are registered separately:
    they only make progress on a multi-SoC
    :class:`~repro.vliw.cluster.Cluster` (on fewer than *min_nodes*
    fabric nodes they read the endpoint's node-count register and exit
    0 immediately).  *expected_exits(nodes, cores)* predicts the
    per-SoC, per-core exit codes from the protocol — distribution
    dynamics may depend on fabric timing (work stealing), but every
    registered workload's exit codes are schedule-invariant.
    """

    name: str
    filename: str
    description: str
    min_nodes: int
    expected_exits: Callable[[int, int], list[list[int]]]


def _node_rows(cores: int, node_exits: list[int]) -> list[list[int]]:
    """Per-SoC rows: core 0 exits the node value, other cores 0."""
    return [[code] + [0] * (cores - 1) for code in node_exits]


def _token_ring_exits(nodes: int, cores: int) -> list[list[int]]:
    return _node_rows(cores, [4 * nodes] + [3 * nodes + k
                                            for k in range(1, nodes)])


def _allreduce_exits(nodes: int, cores: int) -> list[list[int]]:
    total = nodes * (nodes + 1) * (nodes + 2) // 6
    return _node_rows(cores, [total + k for k in range(nodes)])


def _work_steal_exits(nodes: int, cores: int) -> list[list[int]]:
    total = sum(_lcg_stream(77, 16, 16, 127)) & 255
    return _node_rows(cores, [total] + list(range(1, nodes)))


CLUSTER_PROGRAMS: dict[str, ClusterProgramSpec] = {
    spec.name: spec
    for spec in (
        ClusterProgramSpec(
            "token_ring", "token_ring.mc",
            "token circulating a logical ring of SoCs four times",
            2, _token_ring_exits),
        ClusterProgramSpec(
            "allreduce", "allreduce.mc",
            "ring reduce + broadcast of per-node contributions",
            2, _allreduce_exits),
        ClusterProgramSpec(
            "work_steal", "work_steal.mc",
            "thief nodes draining a victim node's work queue",
            2, _work_steal_exits),
    )
}


#: the six workloads of Figure 5 / Table 1 / Figure 6, in paper order.
FIGURE5_PROGRAMS = ("gcd", "dpcm", "fir", "ellip", "sieve", "subband")

#: the three workloads of Table 2.
TABLE2_PROGRAMS = ("gcd", "fibonacci", "sieve")

#: the large-footprint kernels added beyond the paper's Section 4 set;
#: their code exceeds the 2 KiB instruction cache, so they exercise
#: capacity misses and the compiled backend's region cache in ways the
#: small kernels cannot.
BIG_KERNELS = ("dct8x8", "viterbi", "crc32")

_BUILD_CACHE: dict[tuple[str, int, int, int, int, int, int], ObjectFile] = {}


def validate_sources(specs=None) -> None:
    """Check that every registered ``.mc`` source is present.

    Runs at import time over the full registry, so a dropped or
    misnamed source file fails immediately with the offending filename
    instead of surfacing as an opaque downstream build error.  *specs*
    (an iterable of specs with ``name``/``filename`` attributes)
    narrows the check for tests.
    """
    if specs is None:
        specs = [*PROGRAMS.values(), *SHARED_PROGRAMS.values(),
                 *CLUSTER_PROGRAMS.values()]
    root = importlib.resources.files("repro.programs") / "src"
    missing = [
        f"{spec.name!r} (expected {spec.filename})"
        for spec in specs
        if not (root / spec.filename).is_file()
    ]
    if missing:
        raise ReproError(
            "registry references missing minic source file(s): "
            + ", ".join(missing)
            + f" under {root}")


validate_sources()


def program_names() -> list[str]:
    """Single-core-safe registry programs (excludes shared workloads)."""
    return list(PROGRAMS)


def shared_program_names() -> list[str]:
    """Multi-core shared-device workloads (mailbox, barrier, ...)."""
    return list(SHARED_PROGRAMS)


def cluster_program_names() -> list[str]:
    """Multi-SoC fabric workloads (token ring, all-reduce, ...)."""
    return list(CLUSTER_PROGRAMS)


def expected_shared_exits(name: str, cores: int) -> list[int]:
    """Per-core exit codes the shared workload *name* must produce."""
    spec = SHARED_PROGRAMS[name]
    if cores < spec.min_cores:
        raise ReproError(f"shared workload {name!r} needs at least "
                         f"{spec.min_cores} cores")
    return spec.expected_exits(cores)


def expected_cluster_exits(name: str, nodes: int,
                           cores: int = 1) -> list[list[int]]:
    """Per-SoC, per-core exit codes of cluster workload *name*."""
    spec = CLUSTER_PROGRAMS[name]
    if nodes < spec.min_nodes:
        raise ReproError(f"cluster workload {name!r} needs at least "
                         f"{spec.min_nodes} fabric nodes")
    return spec.expected_exits(nodes, cores)


def source(name: str) -> str:
    """minic source text of program *name*."""
    spec = (PROGRAMS.get(name) or SHARED_PROGRAMS.get(name)
            or CLUSTER_PROGRAMS.get(name))
    if spec is None:
        known = ", ".join([*PROGRAMS, *SHARED_PROGRAMS, *CLUSTER_PROGRAMS])
        raise ReproError(f"unknown program {name!r}; known: {known}")
    resource = importlib.resources.files("repro.programs") / "src" / spec.filename
    return resource.read_text()


def build(name: str, memory: MemoryMap | None = None) -> ObjectFile:
    """Compile program *name* to an object file (cached).

    The cache key covers every :class:`MemoryMap` field that affects
    code generation — bases *and* sizes (the stack pointer derives from
    ``data_base + data_size``) — so two maps differing in any region
    never alias to one cached object.
    """
    memory = memory or MemoryMap()
    key = (name, memory.code_base, memory.code_size, memory.data_base,
           memory.data_size, memory.io_base, memory.io_size)
    cached = _BUILD_CACHE.get(key)
    if cached is None:
        cached = compile_source(source(name), memory)
        _BUILD_CACHE[key] = cached
    return cached


def expected_exit(name: str) -> int | None:
    """Exit code predicted by the pure-Python reference (if any)."""
    spec = PROGRAMS.get(name)
    if spec is None:
        if name in SHARED_PROGRAMS:
            raise ReproError(
                f"{name!r} is a shared multi-core workload; its per-core "
                f"exit codes come from expected_shared_exits(name, cores)")
        if name in CLUSTER_PROGRAMS:
            raise ReproError(
                f"{name!r} is a distributed cluster workload; its exit "
                f"codes come from expected_cluster_exits(name, nodes, "
                f"cores)")
        raise ReproError(f"unknown program {name!r}; "
                         f"known: {', '.join(PROGRAMS)}")
    return spec.reference() if spec.reference else None
