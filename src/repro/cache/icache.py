"""Set-associative LRU instruction-cache model.

This is the reference model of the source processor's I-cache.  The
translator's generated cache-correction code (Section 3.4.2 of the
paper) simulates exactly the same structure — tag + valid bit combined
into one word per way, plus per-set LRU information — so the dynamic
correction cycles must agree with this model, and tests assert that.

Fetch model: an instruction fetch is attributed to the cache line that
contains its first halfword (straddling 32-bit instructions charge the
following line when the *next* fetch starts in it).  This matches the
translator's division of basic blocks into cache analysis blocks by
first-byte line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.model import ICacheModel
from repro.utils.bits import log2_exact


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class InstructionCache:
    """LRU set-associative cache keyed by line address."""

    def __init__(self, model: ICacheModel) -> None:
        model.validate()
        self.model = model
        self._offset_bits = log2_exact(model.line_size)
        self._index_bits = log2_exact(model.sets)
        self._tags: list[list[int | None]] = [
            [None] * model.ways for _ in range(model.sets)
        ]
        # _lru[s][w] = age rank of way w in set s; 0 = most recently used.
        # Initial state makes way 0 the first victim, matching the
        # zero-initialized LRU words of the translator-generated code.
        self._lru: list[list[int]] = [
            list(range(model.ways - 1, -1, -1)) for _ in range(model.sets)
        ]
        self.stats = CacheStats()

    def reset(self) -> None:
        """Invalidate all lines and zero the statistics."""
        ways = self.model.ways
        for set_ways in self._tags:
            for way in range(ways):
                set_ways[way] = None
        for ages in self._lru:
            for way in range(ways):
                ages[way] = ways - 1 - way
        self.stats = CacheStats()

    def split(self, address: int) -> tuple[int, int]:
        """Return ``(tag, set_index)`` of *address*."""
        line = address >> self._offset_bits
        return line >> self._index_bits, line & (self.model.sets - 1)

    def line_of(self, address: int) -> int:
        """Line-aligned address containing *address*."""
        return address & ~(self.model.line_size - 1)

    def _touch(self, set_index: int, way: int) -> None:
        ages = self._lru[set_index]
        old = ages[way]
        for other in range(len(ages)):
            if ages[other] < old:
                ages[other] += 1
        ages[way] = 0

    def lookup(self, address: int) -> bool:
        """Non-modifying probe: would *address* hit?"""
        tag, set_index = self.split(address)
        return tag in self._tags[set_index]

    def access(self, address: int) -> bool:
        """Access *address*; returns True on hit, updating LRU state."""
        tag, set_index = self.split(address)
        ways = self._tags[set_index]
        for way, stored in enumerate(ways):
            if stored == tag:
                self._touch(set_index, way)
                self.stats.hits += 1
                return True
        # miss: replace the least recently used way
        ages = self._lru[set_index]
        victim = max(range(len(ages)), key=lambda w: ages[w])
        ways[victim] = tag
        self._touch(set_index, victim)
        self.stats.misses += 1
        return False

    def access_penalty(self, address: int) -> int:
        """Access *address*; returns the stall penalty (0 on hit)."""
        return 0 if self.access(address) else self.model.miss_penalty

    def contents(self) -> list[list[int | None]]:
        """Snapshot of stored tags (for equivalence tests)."""
        return [list(ways) for ways in self._tags]
