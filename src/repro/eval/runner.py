"""Measurement plumbing shared by every experiment."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.arch.model import SourceArch, default_source_arch
from repro.programs.registry import build
from repro.refsim.iss import CycleAccurateISS, RunResult
from repro.refsim.rtlsim import RtlSimulator
from repro.translator.driver import TranslationResult, translate
from repro.vliw.platform import PlatformResult, PrototypingPlatform


@dataclass
class LevelMeasurement:
    """One program translated and executed at one detail level."""

    level: int
    result: PlatformResult
    translation: TranslationResult

    @property
    def cpi(self) -> float:
        return self.result.target_cpi

    def mips(self, clock_hz: int) -> float:
        """Emulation speed in million source instructions per second."""
        seconds = self.result.target_cycles / clock_hz
        if seconds == 0:
            return 0.0
        return self.result.source_instructions / seconds / 1e6

    def runtime(self, clock_hz: int) -> float:
        return self.result.target_cycles / clock_hz


@dataclass
class ProgramMeasurement:
    """Reference run plus all requested detail levels for one program."""

    name: str
    reference: RunResult
    levels: dict[int, LevelMeasurement] = field(default_factory=dict)
    rtl_wall_seconds: float | None = None

    def board_mips(self, clock_hz: int) -> float:
        seconds = self.reference.cycles / clock_hz
        return self.reference.instructions / seconds / 1e6

    def deviation(self, level: int) -> float:
        """Relative cycle-count deviation of a detail level (signed)."""
        emulated = self.levels[level].result.emulated_cycles
        return (emulated - self.reference.cycles) / self.reference.cycles


def measure_program(name: str, levels=(0, 1, 2, 3),
                    arch: SourceArch | None = None,
                    measure_rtl: bool = False,
                    inline_cache_threshold: int | None = None,
                    sync_rate: float = 1.0,
                    backend: str = "interp",
                    cores: int = 1) -> ProgramMeasurement:
    """Run the full measurement battery for one workload.

    *backend* selects the platform execution engine (``"interp"`` or
    ``"compiled"``); both produce identical observables, so every
    derived metric is backend-independent — only wall-clock differs.

    *cores* > 1 replicates the program onto a
    :class:`~repro.vliw.multicore.MultiCoreSoC`; every core then
    produces the same observables as a single-core run (the multi-core
    differential contract), so the measurement records core 0's.
    """
    arch = arch or default_source_arch()
    obj = build(name)
    reference = CycleAccurateISS(obj, arch).run()
    out = ProgramMeasurement(name=name, reference=reference)
    for level in levels:
        translation = translate(
            obj, level=level, source=arch,
            inline_cache_threshold=inline_cache_threshold)
        if cores > 1:
            from repro.vliw.multicore import MultiCoreSoC

            soc = MultiCoreSoC(translation.program, cores=cores,
                               backends=backend, source_arch=arch,
                               sync_rate=sync_rate)
            result = soc.run().per_core[0]
        else:
            platform = PrototypingPlatform(translation.program,
                                           source_arch=arch,
                                           sync_rate=sync_rate,
                                           backend=backend)
            result = platform.run()
        out.levels[level] = LevelMeasurement(level=level, result=result,
                                             translation=translation)
    if measure_rtl:
        start = time.perf_counter()
        RtlSimulator(obj, arch).run()
        out.rtl_wall_seconds = time.perf_counter() - start
    return out
