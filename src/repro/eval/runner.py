"""Measurement plumbing shared by every experiment."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.arch.model import SourceArch, default_source_arch
from repro.programs.registry import build
from repro.refsim.iss import CycleAccurateISS, RunResult
from repro.refsim.rtlsim import RtlSimulator
from repro.translator.driver import TranslationResult, translate
from repro.vliw.platform import PlatformResult, PrototypingPlatform


@dataclass
class LevelMeasurement:
    """One program translated and executed at one detail level."""

    level: int
    result: PlatformResult
    translation: TranslationResult

    @property
    def cpi(self) -> float:
        return self.result.target_cpi

    def mips(self, clock_hz: int) -> float:
        """Emulation speed in million source instructions per second."""
        seconds = self.result.target_cycles / clock_hz
        if seconds == 0:
            return 0.0
        return self.result.source_instructions / seconds / 1e6

    def runtime(self, clock_hz: int) -> float:
        return self.result.target_cycles / clock_hz


@dataclass
class ProgramMeasurement:
    """Reference run plus all requested detail levels for one program."""

    name: str
    reference: RunResult
    levels: dict[int, LevelMeasurement] = field(default_factory=dict)
    rtl_wall_seconds: float | None = None

    def board_mips(self, clock_hz: int) -> float:
        seconds = self.reference.cycles / clock_hz
        return self.reference.instructions / seconds / 1e6

    def deviation(self, level: int) -> float:
        """Relative cycle-count deviation of a detail level (signed).

        A degenerate workload whose reference run reports zero cycles
        has no meaningful relative deviation; report 0.0 instead of
        dividing by zero.
        """
        emulated = self.levels[level].result.emulated_cycles
        if not self.reference.cycles:
            return 0.0
        return (emulated - self.reference.cycles) / self.reference.cycles


def measure_program(name: str, levels=(0, 1, 2, 3),
                    arch: SourceArch | None = None,
                    measure_rtl: bool = False,
                    inline_cache_threshold: int | None = None,
                    sync_rate: float = 1.0,
                    backend: str = "interp",
                    cores: int = 1,
                    shared: bool = False,
                    nodes: int = 1,
                    barrier: str = "lockstep",
                    quantum: int | str = "adaptive") -> ProgramMeasurement:
    """Run the full measurement battery for one workload.

    *backend* selects the platform execution engine (any name
    registered in :mod:`repro.vliw.codegen` — ``"interp"``,
    ``"compiled"`` or ``"native"``); all produce identical observables,
    so every derived metric is backend-independent — only wall-clock
    differs.  An unknown name fails immediately with the registered
    list, before any measurement runs.

    *cores* > 1 replicates the program onto a
    :class:`~repro.vliw.multicore.MultiCoreSoC`; every core then
    produces the same observables as a single-core run (the multi-core
    differential contract), so the measurement records core 0's — and
    **checks** the contract first: cross-core observable divergence
    raises :class:`~repro.errors.SimulationError` instead of being
    silently discarded.  Pass ``shared=True`` for workloads that use
    the shared-device segment, where per-core results legitimately
    differ (cores take different roles); the check is then skipped.

    *nodes* > 1 replicates the (*cores*-core) SoC onto an N-node
    :class:`~repro.vliw.cluster.Cluster` joined by the modeled network
    fabric, under the *barrier* synchronization implementation
    (``"lockstep"`` in-process or ``"process"`` workers — identical
    observables).  The measurement records SoC 0's core 0; pass
    ``shared=True`` for distributed workloads, whose per-SoC results
    legitimately differ.

    *quantum* is the intra-SoC lockstep scheduling mode —
    ``"adaptive"`` (default) or a fixed integer quantum; observables
    are identical across modes by the lockstep differential contract,
    so this knob only trades simulation wall-clock.
    """
    from repro.vliw.codegen import resolve_backend

    resolve_backend(backend)  # fail fast, naming the registered backends
    arch = arch or default_source_arch()
    obj = build(name)
    reference = CycleAccurateISS(obj, arch).run()
    out = ProgramMeasurement(name=name, reference=reference)
    for level in levels:
        translation = translate(
            obj, level=level, source=arch,
            inline_cache_threshold=inline_cache_threshold)
        if nodes > 1:
            from repro.errors import SimulationError
            from repro.vliw.cluster import Cluster

            cluster = Cluster(translation.program, socs=nodes, cores=cores,
                              backends=backend, barrier=barrier,
                              source_arch=arch, sync_rate=sync_rate,
                              core_quantum=quantum)
            clustered = cluster.run()
            if not shared:
                expected = clustered.per_soc[0].observables()
                for index, other in enumerate(clustered.per_soc[1:],
                                              start=1):
                    if other.observables() != expected:
                        raise SimulationError(
                            f"cluster differential contract violated: "
                            f"SoC {index} of {name!r} (level {level}) "
                            f"diverges from SoC 0; pass shared=True if "
                            f"this workload communicates over the fabric")
            result = clustered.per_soc[0].per_core[0]
        elif cores > 1:
            from repro.errors import SimulationError
            from repro.vliw.multicore import MultiCoreSoC

            soc = MultiCoreSoC(translation.program, cores=cores,
                               backends=backend, source_arch=arch,
                               sync_rate=sync_rate, quantum=quantum)
            multi = soc.run()
            if not shared:
                expected = multi.per_core[0].observables()
                for index, other in enumerate(multi.per_core[1:], start=1):
                    if other.observables() != expected:
                        raise SimulationError(
                            f"multi-core differential contract violated: "
                            f"core {index} of {name!r} (level {level}) "
                            f"diverges from core 0; pass shared=True if "
                            f"this workload uses the shared-device "
                            f"segment")
            result = multi.per_core[0]
        else:
            platform = PrototypingPlatform(translation.program,
                                           source_arch=arch,
                                           sync_rate=sync_rate,
                                           backend=backend)
            result = platform.run()
        out.levels[level] = LevelMeasurement(level=level, result=result,
                                             translation=translation)
    if measure_rtl:
        start = time.perf_counter()
        RtlSimulator(obj, arch).run()
        out.rtl_wall_seconds = time.perf_counter() - start
    return out
