"""Regeneration of every table and figure of the paper's Section 4.

Each ``figure5``/``table1``/``figure6``/``table2`` function returns the
measured rows and a formatted text block that prints the measurement
next to the paper's reported values.  Absolute numbers are not expected
to match (our substrate is a simulator, not the authors' hardware); the
*shape* — who wins, rough factors, where the crossovers are — is the
reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval import paper_data
from repro.eval.runner import ProgramMeasurement, measure_program
from repro.programs.registry import FIGURE5_PROGRAMS, TABLE2_PROGRAMS, PROGRAMS

LEVEL_NAMES = {
    "board": "TC10GP evaluation board (reference ISS)",
    0: "C6x w/o cycle information",
    1: "C6x with cycle information",
    2: "C6x with branch prediction",
    3: "C6x with caches",
}


@dataclass
class ExperimentReport:
    """Measured rows plus a printable rendering."""

    title: str
    rows: list[dict] = field(default_factory=list)
    text: str = ""

    def __str__(self) -> str:
        return self.text


def _measure_all(programs, levels, measure_rtl=False, backend="interp",
                 jobs=None, cores=1):
    """Measure *programs*, serially or sharded across *jobs* processes.

    Both paths produce identical measurements (the sharded runner's
    determinism contract); *jobs* only changes the wall clock.
    """
    if jobs is not None and jobs > 1:
        from repro.eval.sharded import ShardedRunner

        return ShardedRunner(jobs=jobs).measure_registry(
            programs, levels, backend=backend, measure_rtl=measure_rtl,
            cores=cores)
    return {name: measure_program(name, levels=levels,
                                  measure_rtl=measure_rtl, backend=backend,
                                  cores=cores)
            for name in programs}


# ---------------------------------------------------------------------------
# Figure 5 — comparison of speed (MIPS)
# ---------------------------------------------------------------------------

def figure5(measurements: dict[str, ProgramMeasurement] | None = None
            ) -> ExperimentReport:
    """Execution speed per program and configuration, in MIPS."""
    measurements = measurements or _measure_all(FIGURE5_PROGRAMS,
                                                (0, 1, 2, 3))
    report = ExperimentReport(title="Figure 5 — comparison of speed (MIPS)")
    lines = [report.title, "=" * len(report.title), ""]
    header = f"{'program':>9s} | {'board':>7s} " + "".join(
        f"{'L' + str(level):>7s} " for level in (0, 1, 2, 3))
    lines += [header, "-" * len(header)]
    for name, m in measurements.items():
        row = {
            "program": name,
            "board": m.board_mips(paper_data.BOARD_HZ),
        }
        for level in (0, 1, 2, 3):
            row[f"level{level}"] = m.levels[level].mips(paper_data.C6X_HZ)
        report.rows.append(row)
        lines.append(
            f"{name:>9s} | {row['board']:7.1f} " + "".join(
                f"{row[f'level{level}']:7.1f} " for level in (0, 1, 2, 3)))
    lines += [
        "",
        "paper (mean MIPS implied by Table 1 at 48/200 MHz):",
        "  board {board:.1f}, L0 {level0:.1f}, L1 {level1:.1f}, "
        "L2 {level2:.1f}, L3 {level3:.1f}".format(
            **paper_data.FIGURE5_MIPS_MEAN),
        "shape checks: large-block programs (ellip, subband) fastest with",
        "cycle information; sieve pays the most for per-block annotation.",
    ]
    report.text = "\n".join(lines)
    return report


# ---------------------------------------------------------------------------
# Table 1 — clock cycles per TriCore instruction
# ---------------------------------------------------------------------------

def table1(measurements: dict[str, ProgramMeasurement] | None = None
           ) -> ExperimentReport:
    """Mean clock cycles per source instruction, all six workloads."""
    measurements = measurements or _measure_all(FIGURE5_PROGRAMS,
                                                (0, 1, 2, 3))
    report = ExperimentReport(
        title="Table 1 — clock cycles per TriCore instruction")
    board = sum(m.reference.cycles for m in measurements.values()) / \
        sum(m.reference.instructions for m in measurements.values())
    row = {"board": board}
    for level in (0, 1, 2, 3):
        cycles = sum(m.levels[level].result.target_cycles
                     for m in measurements.values())
        instrs = sum(m.levels[level].result.source_instructions
                     for m in measurements.values())
        row[f"level{level}"] = cycles / instrs
    report.rows.append(row)
    paper = paper_data.TABLE1_CPI
    lines = [report.title, "=" * len(report.title), "",
             f"{'configuration':42s} {'measured':>9s} {'paper':>9s}"]
    for key, label in (("board", LEVEL_NAMES["board"]),
                       ("level0", LEVEL_NAMES[0]),
                       ("level1", LEVEL_NAMES[1]),
                       ("level2", LEVEL_NAMES[2]),
                       ("level3", LEVEL_NAMES[3])):
        lines.append(f"{label:42s} {row[key]:9.2f} {paper[key]:9.2f}")
    lines += ["",
              "shape checks: board < L0 < L1 < L2 << L3; annotation adds",
              "roughly one cycle per instruction, caches dominate L3."]
    report.text = "\n".join(lines)
    return report


# ---------------------------------------------------------------------------
# Figure 6 — comparison of cycle accuracy
# ---------------------------------------------------------------------------

def figure6(measurements: dict[str, ProgramMeasurement] | None = None
            ) -> ExperimentReport:
    """Simulated vs measured cycles per program and detail level."""
    measurements = measurements or _measure_all(FIGURE5_PROGRAMS, (1, 2, 3))
    report = ExperimentReport(
        title="Figure 6 — comparison of cycle accuracy")
    lines = [report.title, "=" * len(report.title), "",
             f"{'program':>9s} {'measured':>9s} "
             f"{'L1':>9s} {'L2':>9s} {'L3':>9s} "
             f"{'dev L1':>8s} {'dev L2':>8s} {'dev L3':>8s}"]
    for name, m in measurements.items():
        row = {"program": name, "reference_cycles": m.reference.cycles}
        for level in (1, 2, 3):
            row[f"level{level}_cycles"] = \
                m.levels[level].result.emulated_cycles
            row[f"deviation{level}"] = m.deviation(level)
        report.rows.append(row)
        lines.append(
            f"{name:>9s} {row['reference_cycles']:9d} "
            f"{row['level1_cycles']:9d} {row['level2_cycles']:9d} "
            f"{row['level3_cycles']:9d} "
            f"{row['deviation1']:+8.1%} {row['deviation2']:+8.1%} "
            f"{row['deviation3']:+8.1%}")
    lo, hi = paper_data.FIGURE6_DEVIATION_RANGE
    lines += [
        "",
        f"paper: branch-prediction-level deviation ranges from {lo:.0%} "
        f"({paper_data.FIGURE6_BEST_PROGRAM}) to {hi:.0%} "
        f"({paper_data.FIGURE6_WORST_PROGRAM})",
        "shape checks: accuracy improves with each level; control-flow",
        "dominated programs benefit most from branch-prediction handling.",
    ]
    report.text = "\n".join(lines)
    return report


# ---------------------------------------------------------------------------
# Table 2 — software runtime comparison
# ---------------------------------------------------------------------------

def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3g} s  "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3g} ms "
    return f"{seconds * 1e6:8.3g} µs "


def table2(measurements: dict[str, ProgramMeasurement] | None = None
           ) -> ExperimentReport:
    """Runtime comparison: RTL simulation, FPGA emulation, translation."""
    measurements = measurements or _measure_all(TABLE2_PROGRAMS, (1, 2, 3),
                                                measure_rtl=True)
    report = ExperimentReport(
        title="Table 2 — software runtime comparison")
    lines = [report.title, "=" * len(report.title), ""]
    header = f"{'':28s}" + "".join(f"{name:>16s}" for name in measurements)
    lines += [header, "-" * len(header)]

    def add_line(label, values, formatter=str):
        lines.append(f"{label:28s}" + "".join(
            f"{formatter(v):>16s}" for v in values))

    names = list(measurements)
    add_line("# executed instructions",
             [measurements[n].reference.instructions for n in names])
    add_line("  (paper)",
             [paper_data.TABLE2_INSTRUCTIONS[n] for n in names])
    add_line("Simulation (workstation)",
             [measurements[n].rtl_wall_seconds for n in names], _fmt_time)
    add_line("  (paper, HDL simulator)",
             [paper_data.TABLE2_RUNTIMES[n]["workstation_sim"]
              for n in names], _fmt_time)
    add_line("Emulation (FPGA, 8 MHz)",
             [measurements[n].reference.cycles / paper_data.FPGA_HZ
              for n in names], _fmt_time)
    add_line("  (paper)",
             [paper_data.TABLE2_RUNTIMES[n]["fpga_emulation"]
              for n in names], _fmt_time)
    for level, key in ((1, "level1"), (2, "level2"), (3, "level3")):
        add_line(f"Translation {LEVEL_NAMES[level][4:]}",
                 [measurements[n].levels[level].runtime(paper_data.C6X_HZ)
                  for n in names], _fmt_time)
        add_line("  (paper)",
                 [paper_data.TABLE2_RUNTIMES[n][key] for n in names],
                 _fmt_time)

    for name in names:
        m = measurements[name]
        row = {
            "program": name,
            "instructions": m.reference.instructions,
            "workstation_sim": m.rtl_wall_seconds,
            "fpga_emulation": m.reference.cycles / paper_data.FPGA_HZ,
        }
        for level in (1, 2, 3):
            row[f"level{level}"] = m.levels[level].runtime(paper_data.C6X_HZ)
        report.rows.append(row)

    lines += [
        "",
        "shape checks: levels 1-2 beat the 8 MHz FPGA emulation; the",
        "cache level is in the same range as the FPGA; the workstation",
        "simulation is orders of magnitude slower than everything else.",
    ]
    report.text = "\n".join(lines)
    return report


def run_all(quick: bool = False, jobs: int | None = None,
            backend: str = "interp") -> list[ExperimentReport]:
    """Run every experiment; returns the four reports in paper order.

    *jobs* > 1 shards the measurements across worker processes via
    :class:`repro.eval.sharded.ShardedRunner`; reported numbers are
    identical either way.
    """
    levels = (0, 1, 2, 3)
    fig5_measure = _measure_all(FIGURE5_PROGRAMS, levels, backend=backend,
                                jobs=jobs)
    reports = [
        figure5(fig5_measure),
        table1(fig5_measure),
        figure6(fig5_measure),
    ]
    if not quick:
        reports.append(table2(_measure_all(TABLE2_PROGRAMS, (1, 2, 3),
                                           measure_rtl=True, backend=backend,
                                           jobs=jobs)))
    return reports
