"""Process-parallel evaluation: shard independent measurements.

Every measurement the evaluation battery performs — a reference ISS
run, an RTL timing run, a platform execution of one program at one
detail level under one backend — is independent of every other, so a
registry sweep is embarrassingly parallel.  :class:`ShardedRunner`
fans :class:`ShardSpec` work units out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor` and reassembles the
results **in submission order**, so a sharded sweep returns exactly
what the serial :mod:`repro.eval.runner` path returns, regardless of
worker count, scheduling or completion order
(``tests/test_sharded_determinism.py`` locks this down).

Compilation sharing
    The parent translates each unique (program, level) once and — for
    compiled-backend shards — pre-generates every statically reachable
    packet region via
    :func:`repro.vliw.compiled.precompile_program`.  The region cache
    stores plain Python *source*, which pickles, so the translated
    program shipped to each worker carries the parent's generated
    regions with it: workers ``compile()``/``exec`` and run, instead
    of re-scanning and re-generating per process.

Wall-clock accounting
    Each shard's execution is timed with ``time.perf_counter`` inside
    the worker, so :attr:`ShardOutcome.wall_seconds` measures the
    measurement itself — pickling, queueing and pool management are
    excluded.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import get_context

from repro.eval.runner import LevelMeasurement, ProgramMeasurement
from repro.objfile.elf import ObjectFile
from repro.programs.registry import build
from repro.refsim.iss import CycleAccurateISS
from repro.refsim.rtlsim import RtlSimulator
from repro.translator.driver import TranslationResult, translate
from repro.vliw.codegen import TierConfig, resolve_backend
from repro.vliw.compiled import precompile_program
from repro.vliw.platform import PrototypingPlatform

#: shard kinds: a platform execution, a reference-ISS run, or a timed
#: RTL simulation (whose measurement is its wall clock, not a result)
SHARD_KINDS = ("platform", "reference", "rtl")


@dataclass(frozen=True)
class ShardSpec:
    """One independent unit of evaluation work."""

    program: str = ""
    kind: str = "platform"
    level: int = 1
    backend: str = "interp"
    sync_rate: float = 1.0
    inline_cache_threshold: int | None = None
    #: >1 runs the program replicated on a MultiCoreSoC; the shard's
    #: result is core 0's (bit-identical to the single-core run)
    cores: int = 1
    #: explicit object file instead of a registry program name
    obj: ObjectFile | None = None
    #: tier-ladder thresholds for ``backend="tiered"`` shards (frozen,
    #: so it both hashes into the precompile memo key and pickles to
    #: workers); None reads the worker's ``REPRO_TIER_*`` environment
    tier: TierConfig | None = None

    def validate(self) -> "ShardSpec":
        if self.kind not in SHARD_KINDS:
            raise ValueError(f"unknown shard kind {self.kind!r}; "
                             f"choose from {', '.join(SHARD_KINDS)}")
        if not self.program and self.obj is None:
            raise ValueError("shard needs a program name or an object file")
        # fail fast in the parent, naming the registered backends,
        # instead of a worker-side crash
        resolve_backend(self.backend)
        return self


@dataclass
class ShardOutcome:
    """What came back from one shard."""

    spec: ShardSpec
    #: PlatformResult (platform shards), RunResult (reference shards),
    #: or None (rtl shards, whose measurement is the wall clock)
    result: object
    wall_seconds: float
    pid: int
    regions_generated: int = 0
    regions_from_cache: int = 0


@contextlib.contextmanager
def child_import_path():
    """Make :mod:`repro` importable in spawned worker processes.

    A ``spawn``-context child starts a fresh interpreter that knows
    nothing of the parent's ``sys.path`` surgery (e.g. the repo-root
    ``conftest.py`` used when ``PYTHONPATH`` is unset), so the package
    directory is exported through the environment for the duration of
    pool creation.
    """
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    old = os.environ.get("PYTHONPATH")
    parts = old.split(os.pathsep) if old else []
    if src in parts:
        yield
        return
    os.environ["PYTHONPATH"] = os.pathsep.join([src] + parts)
    try:
        yield
    finally:
        if old is None:
            del os.environ["PYTHONPATH"]
        else:
            os.environ["PYTHONPATH"] = old


def default_jobs() -> int:
    """Worker count matching the usable CPUs of this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


# -- worker side -------------------------------------------------------------


def _run_payload(payload: tuple) -> dict:
    """Execute one shard.  Runs in a worker process (or inline)."""
    kind, spec, carrier, arch = payload
    pid = os.getpid()
    if kind == "reference":
        start = time.perf_counter()
        result = CycleAccurateISS(carrier, arch).run()
        return dict(result=result, wall_seconds=time.perf_counter() - start,
                    pid=pid)
    if kind == "rtl":
        start = time.perf_counter()
        RtlSimulator(carrier, arch).run()
        return dict(result=None, wall_seconds=time.perf_counter() - start,
                    pid=pid)
    if spec.cores > 1:
        from repro.vliw.multicore import MultiCoreSoC

        soc = MultiCoreSoC(carrier, cores=spec.cores, backends=spec.backend,
                           source_arch=arch, sync_rate=spec.sync_rate,
                           tier=spec.tier)
        start = time.perf_counter()
        multi = soc.run()
        wall = time.perf_counter() - start
        compilers = [s._compiler for s in soc.slots if s._compiler]
        return dict(
            result=multi.per_core[0], wall_seconds=wall, pid=pid,
            regions_generated=sum(c.regions_generated for c in compilers),
            regions_from_cache=sum(c.regions_from_cache for c in compilers))
    platform = PrototypingPlatform(carrier, source_arch=arch,
                                   sync_rate=spec.sync_rate,
                                   backend=spec.backend, tier=spec.tier)
    start = time.perf_counter()
    result = platform.run()
    wall = time.perf_counter() - start
    compiler = platform._compiler
    return dict(
        result=result, wall_seconds=wall, pid=pid,
        regions_generated=compiler.regions_generated if compiler else 0,
        regions_from_cache=compiler.regions_from_cache if compiler else 0)


def run_pickled_program(blob: bytes, backend: str = "compiled",
                        sync_rate: float = 1.0,
                        tier: TierConfig | None = None,
                        ) -> tuple[dict, int, int]:
    """Unpickle a translated program and execute it on the platform.

    Returns ``(observables, regions_generated, regions_from_cache)``.
    This is the worker-side half of the region-cache sharing contract:
    when the parent precompiled the program before pickling,
    ``regions_generated`` is 0 — every region the execution needed came
    out of the shipped source cache.
    """
    program = pickle.loads(blob)
    platform = PrototypingPlatform(program, sync_rate=sync_rate,
                                   backend=backend, tier=tier)
    result = platform.run()
    compiler = platform._compiler
    return (result.observables(),
            compiler.regions_generated if compiler else 0,
            compiler.regions_from_cache if compiler else 0)


# -- parent side -------------------------------------------------------------


class ShardedRunner:
    """Fans independent measurements out across worker processes.

    ``jobs=1`` executes shards inline (no pool), which is both the
    serial baseline for the scaling benchmark and the cheap path for
    small sweeps.  Results always come back in submission order.
    """

    def __init__(self, jobs: int | None = None, mp_context: str = "spawn",
                 precompile: bool = True, source_arch=None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.mp_context = mp_context
        self.precompile = precompile
        #: None lets every simulator pick the default source
        #: architecture; an explicit SourceArch (it pickles) rides
        #: along to the workers
        self.source_arch = source_arch
        self._objs: dict[str, ObjectFile] = {}
        self._translations: dict[tuple, TranslationResult] = {}
        self._precompiled: set[tuple] = set()

    # -- shared artefacts ------------------------------------------------

    def _obj(self, spec: ShardSpec) -> ObjectFile:
        if spec.obj is not None:
            # pin the reference: translation memo keys use id(), which
            # must stay unambiguous for the runner's lifetime
            self._objs.setdefault(f"@{id(spec.obj)}", spec.obj)
            return spec.obj
        obj = self._objs.get(spec.program)
        if obj is None:
            obj = build(spec.program)
            self._objs[spec.program] = obj
        return obj

    def translation(self, spec: ShardSpec) -> TranslationResult:
        """The (memoized) translation a platform shard will execute."""
        self._obj(spec)
        key = (spec.program or id(spec.obj), spec.level,
               spec.inline_cache_threshold)
        tr = self._translations.get(key)
        if tr is None:
            tr = translate(self._obj(spec), level=spec.level,
                           source=self.source_arch,
                           inline_cache_threshold=spec.inline_cache_threshold)
            self._translations[key] = tr
        pre_key = (key, spec.backend, spec.tier)
        if (self.precompile and resolve_backend(spec.backend).compiled
                and pre_key not in self._precompiled):
            # fills the program's source + IR caches; the native and
            # tiered backends also build the superblock module into
            # the on-disk cache, so workers dlopen instead of invoking
            # the C compiler
            precompile_program(tr.program, source_arch=self.source_arch,
                               backend=spec.backend, tier=spec.tier)
            self._precompiled.add(pre_key)
        return tr

    def _payload(self, spec: ShardSpec) -> tuple:
        spec.validate()
        if spec.kind == "platform":
            return ("platform", spec, self.translation(spec).program,
                    self.source_arch)
        return (spec.kind, spec, self._obj(spec), self.source_arch)

    # -- execution -------------------------------------------------------

    def run(self, specs) -> list[ShardOutcome]:
        """Execute every shard; outcomes are in *specs* order."""
        specs = list(specs)
        payloads = [self._payload(spec) for spec in specs]
        if self.jobs == 1 or len(payloads) <= 1:
            outs = [_run_payload(payload) for payload in payloads]
        else:
            workers = min(self.jobs, len(payloads))
            with child_import_path():
                with ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=get_context(self.mp_context)) as pool:
                    futures = [pool.submit(_run_payload, payload)
                               for payload in payloads]
                    outs = [future.result() for future in futures]
        return [ShardOutcome(spec=spec, **out)
                for spec, out in zip(specs, outs)]

    def run_all(self, specs, stream: bool = False):
        """Execute every shard, optionally streaming completions.

        The default (``stream=False``) is exactly :meth:`run`: a list
        of outcomes in deterministic submission order, identical to the
        serial runner regardless of scheduling.  ``stream=True``
        returns an *iterator* that yields each :class:`ShardOutcome` as
        its shard completes (``as_completed`` order) — for long sweeps
        where early results should surface immediately — so the
        arrival order is nondeterministic, but the outcome *set* (and
        every observable in it) is the same; each outcome carries its
        ``spec``, so callers reassemble deterministically if needed.
        """
        if not stream:
            return self.run(specs)
        return self._run_streaming(list(specs))

    def _run_streaming(self, specs: list[ShardSpec]):
        """Generator behind ``run_all(stream=True)``."""
        payloads = [self._payload(spec) for spec in specs]
        if self.jobs == 1 or len(payloads) <= 1:
            # inline execution *is* completion order
            for spec, payload in zip(specs, payloads):
                yield ShardOutcome(spec=spec, **_run_payload(payload))
            return
        workers = min(self.jobs, len(payloads))
        with child_import_path():
            with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=get_context(self.mp_context)) as pool:
                by_future = {
                    pool.submit(_run_payload, payload): spec
                    for spec, payload in zip(specs, payloads)}
                for future in as_completed(by_future):
                    yield ShardOutcome(spec=by_future[future],
                                       **future.result())

    def measure_registry(self, programs, levels=(0, 1, 2, 3),
                         backend: str = "interp", sync_rate: float = 1.0,
                         measure_rtl: bool = False,
                         inline_cache_threshold: int | None = None,
                         cores: int = 1) -> dict[str, ProgramMeasurement]:
        """The sharded equivalent of a serial ``measure_program`` sweep.

        Produces the same ``{name: ProgramMeasurement}`` mapping as
        calling :func:`repro.eval.runner.measure_program` per program
        (default source architecture), with every reference run, RTL
        timing and platform execution fanned out as its own shard.
        """
        specs: list[ShardSpec] = []
        for name in programs:
            specs.append(ShardSpec(program=name, kind="reference"))
            if measure_rtl:
                specs.append(ShardSpec(program=name, kind="rtl"))
            for level in levels:
                specs.append(ShardSpec(
                    program=name, level=level, backend=backend,
                    sync_rate=sync_rate, cores=cores,
                    inline_cache_threshold=inline_cache_threshold))
        out: dict[str, ProgramMeasurement] = {}
        for outcome in self.run(specs):
            spec = outcome.spec
            if spec.kind == "reference":
                out[spec.program] = ProgramMeasurement(
                    name=spec.program, reference=outcome.result)
            elif spec.kind == "rtl":
                out[spec.program].rtl_wall_seconds = outcome.wall_seconds
            else:
                out[spec.program].levels[spec.level] = LevelMeasurement(
                    level=spec.level, result=outcome.result,
                    translation=self.translation(spec))
        return out
