"""Process-parallel evaluation: shard independent measurements.

Every measurement the evaluation battery performs — a reference ISS
run, an RTL timing run, a platform execution of one program at one
detail level under one backend — is independent of every other, so a
registry sweep is embarrassingly parallel.  :class:`ShardedRunner`
fans :class:`ShardSpec` work units out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor` and reassembles the
results **in submission order**, so a sharded sweep returns exactly
what the serial :mod:`repro.eval.runner` path returns, regardless of
worker count, scheduling or completion order
(``tests/test_sharded_determinism.py`` locks this down).

Compilation sharing
    The parent translates each unique (program, level) once and — for
    compiled-backend shards — pre-generates every statically reachable
    packet region via
    :func:`repro.vliw.compiled.precompile_program`.  The region cache
    stores plain Python *source*, which pickles, so the translated
    program shipped to each worker carries the parent's generated
    regions with it: workers ``compile()``/``exec`` and run, instead
    of re-scanning and re-generating per process.

Wall-clock accounting
    Each shard's execution is timed with ``time.perf_counter`` inside
    the worker, so :attr:`ShardOutcome.wall_seconds` measures the
    measurement itself — pickling, queueing and pool management are
    excluded.

Resident use
    A runner constructed with ``persistent=True`` keeps one worker
    pool alive across :meth:`run`/:meth:`run_all` calls (shut it down
    with :meth:`close`, or use the runner as a context manager), and
    ``max_cached=N`` bounds every memo with LRU eviction — the mode
    ``repro-serve`` runs in, where the runner lives for days and the
    memos would otherwise grow without bound.  Worker failures raise
    :class:`~repro.errors.ShardError` naming the shard that died, and
    abandoning a ``run_all(stream=True)`` iterator mid-sweep cancels
    the not-yet-started shards instead of waiting for them.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import get_context

from repro.errors import ShardError
from repro.eval.runner import LevelMeasurement, ProgramMeasurement
from repro.objfile.elf import ObjectFile, dump_bytes
from repro.programs.registry import build
from repro.refsim.iss import CycleAccurateISS
from repro.refsim.rtlsim import RtlSimulator
from repro.translator.driver import TranslationResult, translate
from repro.vliw.codegen import TierConfig, resolve_backend
from repro.vliw.compiled import precompile_program
from repro.vliw.platform import PrototypingPlatform

#: shard kinds: a platform execution, a reference-ISS run, or a timed
#: RTL simulation (whose measurement is its wall clock, not a result)
SHARD_KINDS = ("platform", "reference", "rtl")


@dataclass(frozen=True)
class ShardSpec:
    """One independent unit of evaluation work."""

    program: str = ""
    kind: str = "platform"
    level: int = 1
    backend: str = "interp"
    sync_rate: float = 1.0
    inline_cache_threshold: int | None = None
    #: >1 runs the program replicated on a MultiCoreSoC; the shard's
    #: result is core 0's (bit-identical to the single-core run)
    cores: int = 1
    #: intra-SoC lockstep scheduling mode for multi-core shards —
    #: "adaptive" run-ahead windows or a fixed integer quantum
    #: (identical observables; hashable, so it keys the precompile
    #: memo, whose emitter mode depends on it)
    quantum: int | str = "adaptive"
    #: explicit object file instead of a registry program name
    obj: ObjectFile | None = None
    #: tier-ladder thresholds for ``backend="tiered"`` shards (frozen,
    #: so it both hashes into the precompile memo key and pickles to
    #: workers); None reads the worker's ``REPRO_TIER_*`` environment
    tier: TierConfig | None = None

    def validate(self) -> "ShardSpec":
        if self.kind not in SHARD_KINDS:
            raise ValueError(f"unknown shard kind {self.kind!r}; "
                             f"choose from {', '.join(SHARD_KINDS)}")
        if not self.program and self.obj is None:
            raise ValueError("shard needs a program name or an object file")
        # fail fast in the parent, naming the registered backends,
        # instead of a worker-side crash
        resolve_backend(self.backend)
        return self

    def describe(self) -> str:
        """Human-readable identity, used by :class:`ShardError`."""
        name = self.program or "<object file>"
        return (f"program={name} kind={self.kind} level={self.level} "
                f"backend={self.backend} cores={self.cores}")


@dataclass
class ShardOutcome:
    """What came back from one shard."""

    spec: ShardSpec
    #: PlatformResult (platform shards), RunResult (reference shards),
    #: or None (rtl shards, whose measurement is the wall clock)
    result: object
    wall_seconds: float
    pid: int
    regions_generated: int = 0
    regions_from_cache: int = 0
    #: lockstep scheduling profile of multi-core shards (run-ahead
    #: windows, inline shared calls, interpreter bails); None for
    #: single-core, reference and rtl shards
    lockstep: dict | None = None


def object_content_key(obj: ObjectFile) -> str:
    """Stable identity of an object file: hash of its serialized form.

    Explicit-``obj`` shards are memoized under this key instead of
    ``id(obj)``: two separately constructed but byte-identical object
    files share one memo entry, the runner never needs to pin the
    caller's object alive to keep an id unambiguous, and eviction from
    a bounded memo cannot be confused by CPython reusing a freed id.
    """
    return "@" + hashlib.sha256(dump_bytes(obj)).hexdigest()


class _BoundedMemo(OrderedDict):
    """A memo dict with optional LRU eviction past *bound*.

    ``bound=None`` (the default) never evicts — identical to the plain
    dicts the one-shot CLI sweeps always used.  With a bound, ``get``
    refreshes recency and inserting past the bound evicts the least
    recently used entry, so a resident server's memos stay flat no
    matter how many distinct programs pass through.
    """

    def __init__(self, bound: int | None = None) -> None:
        super().__init__()
        if bound is not None and bound < 1:
            raise ValueError("memo bound must be >= 1")
        self.bound = bound

    def get(self, key, default=None):
        if key in self:
            self.move_to_end(key)
        return super().get(key, default)

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        if self.bound is not None:
            while len(self) > self.bound:
                self.popitem(last=False)


# -- child PYTHONPATH export (reentrant) -------------------------------------

_IMPORT_PATH_LOCK = threading.Lock()
_IMPORT_PATH_REFS = 0
_IMPORT_PATH_SAVED: str | None = None
_IMPORT_PATH_RESTORE = False


@contextlib.contextmanager
def child_import_path():
    """Make :mod:`repro` importable in spawned worker processes.

    A ``spawn``-context child starts a fresh interpreter that knows
    nothing of the parent's ``sys.path`` surgery (e.g. the repo-root
    ``conftest.py`` used when ``PYTHONPATH`` is unset), so the package
    directory is exported through the environment while any pool that
    may still spawn children is alive.

    Reentrant: concurrent or nested enters (an async server creating
    pools from several contexts, a persistent pool held open across a
    one-shot sweep) share one saved value under a lock and a refcount —
    only the outermost exit restores ``PYTHONPATH``, so interleaved
    lifetimes can no longer restore a stale value over a live one.
    """
    global _IMPORT_PATH_REFS, _IMPORT_PATH_SAVED, _IMPORT_PATH_RESTORE
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    with _IMPORT_PATH_LOCK:
        if _IMPORT_PATH_REFS == 0:
            old = os.environ.get("PYTHONPATH")
            parts = old.split(os.pathsep) if old else []
            if src in parts:
                _IMPORT_PATH_RESTORE = False
            else:
                _IMPORT_PATH_SAVED = old
                _IMPORT_PATH_RESTORE = True
                os.environ["PYTHONPATH"] = os.pathsep.join([src] + parts)
        _IMPORT_PATH_REFS += 1
    try:
        yield
    finally:
        with _IMPORT_PATH_LOCK:
            _IMPORT_PATH_REFS -= 1
            if _IMPORT_PATH_REFS == 0 and _IMPORT_PATH_RESTORE:
                if _IMPORT_PATH_SAVED is None:
                    os.environ.pop("PYTHONPATH", None)
                else:
                    os.environ["PYTHONPATH"] = _IMPORT_PATH_SAVED
                _IMPORT_PATH_SAVED = None
                _IMPORT_PATH_RESTORE = False


def default_jobs() -> int:
    """Worker count matching the usable CPUs of this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


# -- worker side -------------------------------------------------------------


def _run_payload(payload: tuple) -> dict:
    """Execute one shard.  Runs in a worker process (or inline)."""
    kind, spec, carrier, arch = payload
    pid = os.getpid()
    if kind == "reference":
        start = time.perf_counter()
        result = CycleAccurateISS(carrier, arch).run()
        return dict(result=result, wall_seconds=time.perf_counter() - start,
                    pid=pid)
    if kind == "rtl":
        start = time.perf_counter()
        RtlSimulator(carrier, arch).run()
        return dict(result=None, wall_seconds=time.perf_counter() - start,
                    pid=pid)
    if spec.cores > 1:
        from repro.vliw.multicore import MultiCoreSoC

        soc = MultiCoreSoC(carrier, cores=spec.cores, backends=spec.backend,
                           source_arch=arch, sync_rate=spec.sync_rate,
                           tier=spec.tier, quantum=spec.quantum)
        start = time.perf_counter()
        multi = soc.run()
        wall = time.perf_counter() - start
        compilers = [s._compiler for s in soc.slots if s._compiler]
        return dict(
            result=multi.per_core[0], wall_seconds=wall, pid=pid,
            regions_generated=sum(c.regions_generated for c in compilers),
            regions_from_cache=sum(c.regions_from_cache for c in compilers),
            lockstep=multi.lockstep)
    platform = PrototypingPlatform(carrier, source_arch=arch,
                                   sync_rate=spec.sync_rate,
                                   backend=spec.backend, tier=spec.tier)
    start = time.perf_counter()
    result = platform.run()
    wall = time.perf_counter() - start
    compiler = platform._compiler
    return dict(
        result=result, wall_seconds=wall, pid=pid,
        regions_generated=compiler.regions_generated if compiler else 0,
        regions_from_cache=compiler.regions_from_cache if compiler else 0)


def run_pickled_program(blob: bytes, backend: str = "compiled",
                        sync_rate: float = 1.0,
                        tier: TierConfig | None = None,
                        ) -> tuple[dict, int, int]:
    """Unpickle a translated program and execute it on the platform.

    Returns ``(observables, regions_generated, regions_from_cache)``.
    This is the worker-side half of the region-cache sharing contract:
    when the parent precompiled the program before pickling,
    ``regions_generated`` is 0 — every region the execution needed came
    out of the shipped source cache.
    """
    program = pickle.loads(blob)
    platform = PrototypingPlatform(program, sync_rate=sync_rate,
                                   backend=backend, tier=tier)
    result = platform.run()
    compiler = platform._compiler
    return (result.observables(),
            compiler.regions_generated if compiler else 0,
            compiler.regions_from_cache if compiler else 0)


# -- parent side -------------------------------------------------------------


@dataclass
class _PoolLease:
    """A borrowed or owned worker pool plus its PYTHONPATH export."""

    pool: ProcessPoolExecutor
    owned: bool
    import_cm: object = None

    def release(self, abandon: bool = False) -> None:
        """Return the lease; owned pools shut down.

        *abandon* is the early-close path: cancel every not-yet-started
        future and do **not** wait for the running ones, so closing a
        streaming generator mid-sweep returns promptly instead of
        blocking in ``ProcessPoolExecutor.__exit__`` until the whole
        abandoned sweep has executed.
        """
        if not self.owned:
            return
        self.pool.shutdown(wait=not abandon, cancel_futures=abandon)
        if self.import_cm is not None:
            self.import_cm.__exit__(None, None, None)


class ShardedRunner:
    """Fans independent measurements out across worker processes.

    ``jobs=1`` executes shards inline (no pool), which is both the
    serial baseline for the scaling benchmark and the cheap path for
    small sweeps.  Results always come back in submission order.

    *persistent* keeps one worker pool alive across calls (the
    resident-server mode; :meth:`close` or context-manager exit shuts
    it down); *max_cached* bounds the object/translation/precompile
    memos with LRU eviction.  :attr:`stats` counts memo traffic —
    ``translations_built`` vs ``translation_hits`` is how a warm
    resident runner proves a repeated request recompiled nothing.
    """

    def __init__(self, jobs: int | None = None, mp_context: str = "spawn",
                 precompile: bool = True, source_arch=None,
                 persistent: bool = False,
                 max_cached: int | None = None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.mp_context = mp_context
        self.precompile = precompile
        self.persistent = persistent
        #: None lets every simulator pick the default source
        #: architecture; an explicit SourceArch (it pickles) rides
        #: along to the workers
        self.source_arch = source_arch
        self._objs: _BoundedMemo = _BoundedMemo(max_cached)
        self._translations: _BoundedMemo = _BoundedMemo(max_cached)
        self._precompiled: _BoundedMemo = _BoundedMemo(max_cached)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_import_cm = None
        #: memo traffic counters (monotonic over the runner's lifetime)
        self.stats = {"objects_built": 0, "object_hits": 0,
                      "translations_built": 0, "translation_hits": 0,
                      "precompiles": 0, "shards_completed": 0}
        #: shards cancelled because a streaming consumer went away
        self.cancelled_shards = 0

    # -- lifecycle -------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Shut down the persistent pool (no-op without one)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None
        if self._pool_import_cm is not None:
            self._pool_import_cm.__exit__(None, None, None)
            self._pool_import_cm = None

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _reap_broken_pool(self) -> None:
        """Drop a persistent pool whose workers died.

        ``BrokenProcessPool`` poisons an executor permanently; a
        resident server must not stay wedged because one worker was
        OOM-killed — the next sweep simply builds a fresh pool.
        """
        if (self.persistent and self._pool is not None
                and getattr(self._pool, "_broken", False)):
            self.close(wait=False)

    def _acquire_pool(self, n_payloads: int) -> _PoolLease:
        if self.persistent:
            self._reap_broken_pool()
            if self._pool is None:
                # the PYTHONPATH export stays entered for the pool's
                # lifetime: a persistent pool respawns crashed workers
                # at arbitrary later submits, and spawn-children read
                # the environment at that moment
                self._pool_import_cm = child_import_path()
                self._pool_import_cm.__enter__()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=get_context(self.mp_context))
            return _PoolLease(pool=self._pool, owned=False)
        import_cm = child_import_path()
        import_cm.__enter__()
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, n_payloads),
            mp_context=get_context(self.mp_context))
        return _PoolLease(pool=pool, owned=True, import_cm=import_cm)

    # -- shared artefacts ------------------------------------------------

    def _obj_key(self, spec: ShardSpec) -> str:
        if spec.obj is None:
            return spec.program
        return object_content_key(spec.obj)

    def _obj(self, spec: ShardSpec) -> ObjectFile:
        key = self._obj_key(spec)
        obj = self._objs.get(key)
        if obj is None:
            obj = spec.obj if spec.obj is not None else build(spec.program)
            self._objs[key] = obj
            self.stats["objects_built"] += 1
        else:
            self.stats["object_hits"] += 1
        return obj

    def translation(self, spec: ShardSpec) -> TranslationResult:
        """The (memoized) translation a platform shard will execute."""
        obj = self._obj(spec)
        key = (self._obj_key(spec), spec.level, spec.inline_cache_threshold)
        tr = self._translations.get(key)
        if tr is None:
            tr = translate(obj, level=spec.level,
                           source=self.source_arch,
                           inline_cache_threshold=spec.inline_cache_threshold)
            self._translations[key] = tr
            self.stats["translations_built"] += 1
            # a re-translation starts with empty region caches, so any
            # precompile recorded against this key describes an evicted
            # program object — forget it and precompile afresh
            for stale in [pk for pk in self._precompiled if pk[0] == key]:
                del self._precompiled[stale]
        else:
            self.stats["translation_hits"] += 1
        # fixed-quantum multi-core shards run the legacy bail-only
        # emitter, so the parent must warm that cache, not the
        # inline-shared one (regions_generated == 0 contract)
        inline = spec.cores == 1 or spec.quantum == "adaptive"
        pre_key = (key, spec.backend, spec.tier, inline)
        if (self.precompile and resolve_backend(spec.backend).compiled
                and self._precompiled.get(pre_key) is None):
            # fills the program's source + IR caches; the native and
            # tiered backends also build the superblock module into
            # the on-disk cache, so workers dlopen instead of invoking
            # the C compiler
            precompile_program(tr.program, source_arch=self.source_arch,
                               backend=spec.backend, tier=spec.tier,
                               inline_shared=inline)
            self._precompiled[pre_key] = True
            self.stats["precompiles"] += 1
        return tr

    def _payload(self, spec: ShardSpec) -> tuple:
        spec.validate()
        if spec.kind == "platform":
            return ("platform", spec, self.translation(spec).program,
                    self.source_arch)
        return (spec.kind, spec, self._obj(spec), self.source_arch)

    # -- execution -------------------------------------------------------

    def _shard_error(self, spec: ShardSpec, exc: Exception) -> ShardError:
        """Wrap a worker (or inline) failure with the shard's identity.

        ``future.result()`` re-raises the worker's exception with the
        remote traceback chained as ``__cause__``; formatting the full
        chain preserves the worker-side frames in the message.
        """
        tb = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        return ShardError(
            f"shard failed ({spec.describe()}): "
            f"{type(exc).__name__}: {exc}",
            spec=spec, worker_traceback=tb)

    def _run_inline(self, spec: ShardSpec, payload: tuple) -> dict:
        try:
            out = _run_payload(payload)
        except Exception as exc:
            raise self._shard_error(spec, exc) from exc
        self.stats["shards_completed"] += 1
        return out

    def _collect(self, spec: ShardSpec, future) -> dict:
        try:
            out = future.result()
        except Exception as exc:
            raise self._shard_error(spec, exc) from exc
        self.stats["shards_completed"] += 1
        return out

    def run(self, specs) -> list[ShardOutcome]:
        """Execute every shard; outcomes are in *specs* order."""
        specs = list(specs)
        payloads = [self._payload(spec) for spec in specs]
        if self.jobs == 1 or len(payloads) <= 1:
            outs = [self._run_inline(spec, payload)
                    for spec, payload in zip(specs, payloads)]
            return [ShardOutcome(spec=spec, **out)
                    for spec, out in zip(specs, outs)]
        lease = self._acquire_pool(len(payloads))
        futures: list = []
        completed = False
        try:
            futures = [lease.pool.submit(_run_payload, payload)
                       for payload in payloads]
            outs = [self._collect(spec, future)
                    for spec, future in zip(specs, futures)]
            completed = True
        finally:
            if not completed:
                # a failed shard abandons the rest of the sweep: stop
                # the not-yet-started shards instead of running them
                # for a result nobody will read
                self.cancelled_shards += sum(
                    1 for future in futures if future.cancel())
            lease.release(abandon=not completed)
        return [ShardOutcome(spec=spec, **out)
                for spec, out in zip(specs, outs)]

    def run_all(self, specs, stream: bool = False):
        """Execute every shard, optionally streaming completions.

        The default (``stream=False``) is exactly :meth:`run`: a list
        of outcomes in deterministic submission order, identical to the
        serial runner regardless of scheduling.  ``stream=True``
        returns an *iterator* that yields each :class:`ShardOutcome` as
        its shard completes (``as_completed`` order) — for long sweeps
        where early results should surface immediately — so the
        arrival order is nondeterministic, but the outcome *set* (and
        every observable in it) is the same; each outcome carries its
        ``spec``, so callers reassemble deterministically if needed.
        Closing the iterator early (a disconnected consumer) cancels
        every shard that has not started yet and never waits for the
        abandoned sweep.
        """
        if not stream:
            return self.run(specs)
        return self._run_streaming(list(specs))

    def _run_streaming(self, specs: list[ShardSpec]):
        """Generator behind ``run_all(stream=True)``."""
        payloads = [self._payload(spec) for spec in specs]
        if self.jobs == 1 or len(payloads) <= 1:
            # inline execution *is* completion order
            for spec, payload in zip(specs, payloads):
                yield ShardOutcome(spec=spec, **self._run_inline(spec,
                                                                 payload))
            return
        lease = self._acquire_pool(len(payloads))
        by_future: dict = {}
        completed = False
        try:
            by_future = {
                lease.pool.submit(_run_payload, payload): spec
                for spec, payload in zip(specs, payloads)}
            for future in as_completed(by_future):
                spec = by_future[future]
                yield ShardOutcome(spec=spec, **self._collect(spec, future))
            completed = True
        finally:
            if not completed:
                self.cancelled_shards += sum(
                    1 for future in by_future if future.cancel())
            lease.release(abandon=not completed)

    def measure_registry(self, programs, levels=(0, 1, 2, 3),
                         backend: str = "interp", sync_rate: float = 1.0,
                         measure_rtl: bool = False,
                         inline_cache_threshold: int | None = None,
                         cores: int = 1, quantum: int | str = "adaptive",
                         ) -> dict[str, ProgramMeasurement]:
        """The sharded equivalent of a serial ``measure_program`` sweep.

        Produces the same ``{name: ProgramMeasurement}`` mapping as
        calling :func:`repro.eval.runner.measure_program` per program
        (default source architecture), with every reference run, RTL
        timing and platform execution fanned out as its own shard.
        """
        specs = registry_specs(programs, levels=levels, backend=backend,
                               sync_rate=sync_rate, measure_rtl=measure_rtl,
                               inline_cache_threshold=inline_cache_threshold,
                               cores=cores, quantum=quantum)
        out: dict[str, ProgramMeasurement] = {}
        for outcome in self.run(specs):
            spec = outcome.spec
            if spec.kind == "reference":
                out[spec.program] = ProgramMeasurement(
                    name=spec.program, reference=outcome.result)
            elif spec.kind == "rtl":
                out[spec.program].rtl_wall_seconds = outcome.wall_seconds
            else:
                out[spec.program].levels[spec.level] = LevelMeasurement(
                    level=spec.level, result=outcome.result,
                    translation=self.translation(spec))
        return out


def registry_specs(programs, levels=(0, 1, 2, 3), backend: str = "interp",
                   sync_rate: float = 1.0, measure_rtl: bool = False,
                   inline_cache_threshold: int | None = None,
                   cores: int = 1,
                   quantum: int | str = "adaptive") -> list[ShardSpec]:
    """The canonical shard expansion of a registry measurement sweep.

    Shared by :meth:`ShardedRunner.measure_registry` and the serving
    layer, so a served sweep submits exactly the shards (in exactly the
    submission order) the serial path measures — the determinism
    contract's starting point.
    """
    specs: list[ShardSpec] = []
    for name in programs:
        specs.append(ShardSpec(program=name, kind="reference"))
        if measure_rtl:
            specs.append(ShardSpec(program=name, kind="rtl"))
        for level in levels:
            specs.append(ShardSpec(
                program=name, level=level, backend=backend,
                sync_rate=sync_rate, cores=cores, quantum=quantum,
                inline_cache_threshold=inline_cache_threshold))
    return specs
