"""The numbers the paper reports, for side-by-side comparison.

Sources: Section 4 of the paper — Figure 5 (execution-speed bars, read
qualitatively), Table 1 (cycles per TriCore instruction), Figure 6
(cycle-count bars and the quoted deviation range), Table 2 (runtime
comparison with the FPGA prototyping platform of reference [12]).
"""

from __future__ import annotations

#: Table 1 — average clock cycles per TriCore instruction.
TABLE1_CPI = {
    "board": 1.08,
    "level0": 2.94,  # C6x without cycle information
    "level1": 4.28,  # C6x with cycle information
    "level2": 5.87,  # C6x with branch prediction
    "level3": 35.34,  # C6x with caches
}

#: Figure 6 — deviation range of the branch-prediction detail level.
FIGURE6_DEVIATION_RANGE = (0.03, 0.15)  # 3 % (ellip) .. 15 % (sieve)
FIGURE6_BEST_PROGRAM = "ellip"
FIGURE6_WORST_PROGRAM = "sieve"

#: Table 2 — executed instructions per workload.
TABLE2_INSTRUCTIONS = {"gcd": 1484, "fibonacci": 41419, "sieve": 20779}

#: Table 2 — runtimes in seconds.
TABLE2_RUNTIMES = {
    "gcd": {
        "workstation_sim": 28.0,
        "fpga_emulation": 321e-6,
        "level1": 63.1e-6,
        "level2": 94.6e-6,
        "level3": 416e-6,
    },
    "fibonacci": {
        "workstation_sim": 600.0,
        "fpga_emulation": 3.9e-3,
        "level1": 950e-6,
        "level2": 1.4e-3,
        "level3": 6.3e-3,
    },
    "sieve": {
        "workstation_sim": 1080.0,
        "fpga_emulation": 21.8e-3,
        "level1": 520e-6,
        "level2": 781e-6,
        "level3": 5e-3,
    },
}

#: Clock rates of the original setups.
BOARD_HZ = 48_000_000  # TriCore TC10GP evaluation board
C6X_HZ = 200_000_000  # TMS320C6201 on the emulation system
FPGA_HZ = 8_000_000  # Xilinx XCV2000E emulation of the core

#: Figure 5 — approximate MIPS implied by Table 1 at the above clocks.
FIGURE5_MIPS_MEAN = {
    "board": BOARD_HZ / TABLE1_CPI["board"] / 1e6,
    "level0": C6X_HZ / TABLE1_CPI["level0"] / 1e6,
    "level1": C6X_HZ / TABLE1_CPI["level1"] / 1e6,
    "level2": C6X_HZ / TABLE1_CPI["level2"] / 1e6,
    "level3": C6X_HZ / TABLE1_CPI["level3"] / 1e6,
}
