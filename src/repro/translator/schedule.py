"""VLIW list scheduling into execute packets.

The "further transformations of the intermediate code" of Fig. 1:
instructions that can execute in parallel are found, each is assigned
to a functional unit, and the stream becomes execute packets that issue
one per cycle.

Dependence model (exposed pipeline, delays in packets):

* RAW: consumer issues at least ``1 + delay(producer)`` packets later;
* WAW: the later write's result must land strictly after the earlier
  one (``delay1 - delay2 + 1``, at least 1);
* WAR: the writer may issue in the same packet as the reader (operands
  are read from the pre-packet state) but never earlier;
* memory: stores and device accesses stay in program order; plain data
  loads may reorder freely among themselves.

The region-ending branch is placed so that its five delay slots cover
the remaining instructions *and* every in-flight result lands before
control transfers; trailing empty cycles become explicit NOP packets,
so a region is always architecturally quiet at its boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.model import TargetArch
from repro.errors import SchedulingError
from repro.isa.c6x.instructions import (
    TargetInstr,
    TOp,
    TRole,
    UNIT_KINDS,
    delay_slots,
)
from repro.isa.c6x.packets import ExecutePacket
from repro.isa.c6x.units import UNITS_BY_KIND, Unit


@dataclass
class _Node:
    instr: TargetInstr
    index: int
    preds: list[tuple[int, int]] = field(default_factory=list)  # (node, delta)
    succs: list[tuple[int, int]] = field(default_factory=list)
    priority: int = 0
    issue: int = -1


def _build_dependences(instrs: list[TargetInstr],
                       target: TargetArch) -> list[_Node]:
    nodes = [_Node(instr=i, index=n) for n, i in enumerate(instrs)]
    last_write: dict[int, int] = {}
    reads_since_write: dict[int, list[int]] = {}
    mem_ops: list[int] = []

    def add_edge(src: int, dst: int, delta: int) -> None:
        if src == dst:
            return
        nodes[src].succs.append((dst, delta))
        nodes[dst].preds.append((src, delta))

    for n, instr in enumerate(instrs):
        delay_of = {}
        for reg in instr.reads():
            writer = last_write.get(reg)
            if writer is not None:
                producer = instrs[writer]
                add_edge(writer, n,
                         1 + delay_slots(producer.op, target))
            reads_since_write.setdefault(reg, []).append(n)
        for reg in instr.writes():
            writer = last_write.get(reg)
            if writer is not None:
                d1 = delay_slots(instrs[writer].op, target)
                d2 = delay_slots(instr.op, target)
                add_edge(writer, n, max(1, d1 - d2 + 1))
            for reader in reads_since_write.get(reg, ()):
                add_edge(reader, n, 0)  # WAR: same packet is fine
            reads_since_write[reg] = []
            last_write[reg] = n
        del delay_of
        if instr.is_memory():
            serializing = instr.is_store() or instr.device
            for m in mem_ops:
                other = instrs[m]
                if serializing or other.is_store() or other.device:
                    add_edge(m, n, 1)
            mem_ops.append(n)
        if instr.op is TOp.HALT:
            # The machine stops here: everything before must have fully
            # completed (stores committed, writebacks landed).
            for m in range(n):
                add_edge(m, n, 1 + delay_slots(instrs[m].op, target))

    # Priority: longest latency-weighted path to any sink.
    for node in reversed(nodes):
        longest = 0
        for succ, delta in node.succs:
            longest = max(longest, nodes[succ].priority + max(delta, 1))
        node.priority = longest
    return nodes


@dataclass
class ScheduledRegion:
    """Packets of one region plus bookkeeping for the emitter."""

    packets: list[ExecutePacket]
    branch_issue: int | None


class RegionScheduler:
    """Schedules one region (body + optional terminating branch)."""

    def __init__(self, target: TargetArch) -> None:
        self.target = target

    def schedule(self, body: list[TargetInstr],
                 terminator: TargetInstr | None) -> ScheduledRegion:
        nodes = _build_dependences(
            body + ([terminator] if terminator is not None else []),
            self.target)
        term_index = len(body) if terminator is not None else None

        unit_busy: dict[int, set[Unit]] = {}
        cycle_fill: dict[int, int] = {}
        unscheduled = {n.index for n in nodes
                       if term_index is None or n.index != term_index}
        placed = 0
        cycle = 0
        guard = 0
        while unscheduled:
            guard += 1
            if guard > 200_000:  # pragma: no cover - defensive
                raise SchedulingError("scheduler failed to converge")
            ready = []
            for index in unscheduled:
                node = nodes[index]
                ready_at = 0
                ok = True
                for pred, delta in node.preds:
                    if nodes[pred].issue < 0:
                        if pred in unscheduled or pred == term_index:
                            ok = False
                            break
                        continue
                    ready_at = max(ready_at, nodes[pred].issue + delta)
                if ok and ready_at <= cycle:
                    ready.append(node)
            ready.sort(key=lambda n: (-n.priority, n.index))
            for node in ready:
                unit = self._pick_unit(node.instr, cycle, unit_busy,
                                       cycle_fill)
                if unit is None:
                    continue
                node.instr.unit = unit
                node.issue = cycle
                unit_busy.setdefault(cycle, set()).add(unit)
                cycle_fill[cycle] = cycle_fill.get(cycle, 0) + 1
                unscheduled.discard(node.index)
                placed += 1
            cycle += 1

        body_last = max((n.issue for n in nodes
                         if n.index != term_index), default=-1)
        completion = 0
        for node in nodes:
            if node.index == term_index:
                continue
            completion = max(completion, node.issue + 1 +
                             delay_slots(node.instr.op, self.target))

        branch_issue: int | None = None
        if term_index is not None:
            term_node = nodes[term_index]
            bds = self.target.branch_delay_slots
            ready_at = 0
            for pred, delta in term_node.preds:
                if nodes[pred].issue >= 0:
                    ready_at = max(ready_at, nodes[pred].issue + delta)
            earliest = max(ready_at, completion - 1 - bds, 0)
            while True:
                unit = self._pick_unit(term_node.instr, earliest,
                                       unit_busy, cycle_fill)
                if unit is not None:
                    break
                earliest += 1
            term_node.instr.unit = unit
            term_node.issue = earliest
            unit_busy.setdefault(earliest, set()).add(unit)
            cycle_fill[earliest] = cycle_fill.get(earliest, 0) + 1
            branch_issue = earliest
            length = max(body_last, earliest + bds) + 1
        else:
            # Quiet boundary: all writebacks land before the next region.
            length = max(body_last + 1, completion)
            length = max(length, 1)

        packets: list[ExecutePacket] = [ExecutePacket() for _ in range(length)]
        for node in nodes:
            if node.issue >= 0:
                packets[node.issue].instrs.append(node.instr)
        for packet in packets:
            if not packet.instrs:
                packet.instrs.append(
                    TargetInstr(TOp.NOP, imm=1, role=TRole.NOPPAD))
        return ScheduledRegion(packets=packets, branch_issue=branch_issue)

    def _pick_unit(self, instr: TargetInstr, cycle: int,
                   unit_busy: dict[int, set[Unit]],
                   cycle_fill: dict[int, int]) -> Unit | None:
        if cycle_fill.get(cycle, 0) >= self.target.max_issue:
            return None
        kinds = UNIT_KINDS[instr.op]
        if not kinds:
            return None
        busy = unit_busy.get(cycle, set())
        preferred_side = None
        if instr.dst is not None:
            preferred_side = 0 if instr.dst < self.target.registers_per_side \
                else 1
        candidates: list[Unit] = []
        for kind in kinds:
            candidates.extend(UNITS_BY_KIND[kind])
        if preferred_side is not None:
            candidates.sort(key=lambda u: u.side != preferred_side)
        for unit in candidates:
            if unit not in busy:
                return unit
        return None
