"""Annotation of translated code (Sections 3.1 and 3.4).

Assembles each basic block's final instruction stream:

* detail level >= 1 — cycle-generation start at block entry (write the
  predicted count *n* to the synchronization device) and the blocking
  wait at block exit (Fig. 2);
* detail level >= 2 — cycle-calculation code for the conditional jump
  (predicated correction-counter updates, Section 3.4.1) and the
  correction block (conditional start/wait on the correction channel,
  Fig. 3);
* detail level 3 — division into cache analysis blocks with a
  subroutine call (or inline probe) per analysis block
  (Section 3.4.2).

The result is a list of :class:`CodeRegion`: straight-line scheduling
units, each optionally ending in a single branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.model import SourceArch
from repro.translator.cycles import BlockCycles
from repro.translator.icache_annot import (
    CacheLayout,
    call_sequence,
    inline_sequence,
    split_analysis_blocks,
)
from repro.translator.ir import (
    RES_CORR,
    RES_SYNC,
    IRInstr,
    IROp,
    Role,
    TempAllocator,
)
from repro.translator.rewrite import BlockIR
from repro.vliw.syncdev import (
    REG_CMD,
    REG_CORR_CMD,
    REG_CORR_STATUS,
    REG_STATUS,
)


@dataclass
class CodeRegion:
    """A straight-line scheduling unit with at most one ending branch."""

    label: str | None
    items: list[IRInstr] = field(default_factory=list)
    terminator: IRInstr | None = None
    #: set on the first region of a basic block (head metadata)
    block_addr: int | None = None
    n_source_instructions: int = 0
    predicted_cycles: int = 0


def _sync_start(n: int, temps: TempAllocator) -> list[IRInstr]:
    value = temps.fresh()
    return [
        IRInstr(IROp.MVK, dst=value, imm=n, role=Role.SYNC_START,
                comment=f"predicted cycles = {n}"),
        IRInstr(IROp.STW, a=value, b=RES_SYNC, imm=REG_CMD,
                role=Role.SYNC_START, device=True,
                comment="start cycle generation"),
    ]


def _sync_wait(temps: TempAllocator) -> list[IRInstr]:
    scratch = temps.fresh()
    return [
        IRInstr(IROp.LDW, dst=scratch, a=RES_SYNC, imm=REG_STATUS,
                role=Role.SYNC_WAIT, device=True,
                comment="wait for end of cycle generation"),
    ]


def _branch_corrections(block_ir: BlockIR, cycles: BlockCycles) -> list[IRInstr]:
    """Predicated correction-counter updates before the conditional jump."""
    correction = cycles.correction
    term = block_ir.terminator
    if correction is None or not correction.needed or term is None \
            or term.pred is None:
        return []
    items: list[IRInstr] = []
    if correction.delta_taken:
        items.append(IRInstr(
            IROp.ADD, dst=RES_CORR, a=RES_CORR, imm=correction.delta_taken,
            pred=term.pred, pred_sense=term.pred_sense, role=Role.CORR_ADD,
            comment=f"+{correction.delta_taken} if taken"))
    if correction.delta_not_taken:
        items.append(IRInstr(
            IROp.ADD, dst=RES_CORR, a=RES_CORR,
            imm=correction.delta_not_taken,
            pred=term.pred, pred_sense=not term.pred_sense,
            role=Role.CORR_ADD,
            comment=f"+{correction.delta_not_taken} if not taken"))
    return items


def _correction_block(temps: TempAllocator) -> list[IRInstr]:
    """Conditionally emit and await the accumulated correction cycles."""
    scratch = temps.fresh()
    return [
        IRInstr(IROp.STW, a=RES_CORR, b=RES_SYNC, imm=REG_CORR_CMD,
                pred=RES_CORR, role=Role.CORR_START, device=True,
                comment="start correction cycle generation"),
        IRInstr(IROp.LDW, dst=scratch, a=RES_SYNC, imm=REG_CORR_STATUS,
                pred=RES_CORR, role=Role.CORR_WAIT, device=True,
                comment="wait for end of correction cycle generation"),
        IRInstr(IROp.MVK, dst=RES_CORR, imm=0, role=Role.CORR_RESET,
                comment="reset correction counter"),
    ]


def build_block_regions(block_ir: BlockIR, cycles: BlockCycles,
                        level: int, source: SourceArch,
                        cache_layout: CacheLayout | None,
                        inline_cache_threshold: int | None) -> list[CodeRegion]:
    """Assemble the annotated regions of one basic block."""
    block = block_ir.block
    temps = block_ir.temps
    head = CodeRegion(
        label=f"B_{block.addr:08x}",
        block_addr=block.addr,
        n_source_instructions=block.n_instructions,
        predicted_cycles=cycles.predicted,
    )
    if level >= 1:
        head.items.extend(_sync_start(cycles.predicted, temps))

    regions = [head]
    current = head

    if level >= 3 and cache_layout is not None:
        inline = (inline_cache_threshold is not None
                  and block.n_instructions >= inline_cache_threshold)
        cabs = split_analysis_blocks(block, block_ir.boundaries,
                                     len(block_ir.body), cache_layout)
        for cab_index, cab in enumerate(cabs):
            if inline:
                current.items.extend(
                    inline_sequence(cab, cache_layout, temps))
                current.items.extend(
                    block_ir.body[cab.start_index:cab.end_index])
            else:
                return_label = f"B_{block.addr:08x}_cab{cab_index}"
                call_items, branch = call_sequence(cab, cache_layout,
                                                   return_label)
                current.items.extend(call_items)
                current.terminator = branch
                current = CodeRegion(label=return_label)
                regions.append(current)
                current.items.extend(
                    block_ir.body[cab.start_index:cab.end_index])
    else:
        current.items.extend(block_ir.body)

    if level >= 2:
        current.items.extend(_branch_corrections(block_ir, cycles))
    if level >= 1:
        current.items.extend(_sync_wait(temps))
    if level >= 2:
        current.items.extend(_correction_block(temps))
    current.terminator = block_ir.terminator
    return regions
