"""The cycle-accurate static compiler (Fig. 1), end to end.

:class:`BinaryTranslator` chains every pass of the paper's Figure 1:
reading the object file, constructing intermediate code, building basic
blocks, finding base addresses, cycle calculation, insertion of cycle
generation and dynamic-correction code, the VLIW transformations
(parallelization, unit assignment, register binding), and emission of
the cycle-accurate VLIW program.

The *detail level* selects how much timing machinery is generated
(Section 3.2):

====== =======================================================
level  meaning
====== =======================================================
0      purely functional translation (no cycle information)
1      static cycle prediction per basic block
2      level 1 + dynamic branch-prediction correction
3      level 2 + instruction-cache simulation
====== =======================================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.arch.model import (
    SourceArch,
    TargetArch,
    default_source_arch,
    default_target_arch,
)
from repro.errors import TranslationError
from repro.objfile.elf import ObjectFile, SymbolKind
from repro.translator.annotate import CodeRegion, build_block_regions
from repro.translator.baseaddr import analyze
from repro.translator.blocks import build_cfg
from repro.translator.cycles import BlockCycles, static_block_cycles
from repro.translator.decoder import decode_object
from repro.translator.emit import EmittedRegion, ProgramEmitter
from repro.translator.icache_annot import (
    CACHE_SUB_LABEL,
    CacheLayout,
    make_layout,
    subroutine_body,
)
from repro.translator.ir import (
    RES_CORR,
    RES_DDELTA,
    RES_RETADDR,
    RES_SYNC,
    RES_TMP0,
    RES_TMP1,
    RES_TMP2,
    RES_TMP3,
    RES_TMP4,
    RES_TMP5,
    IRInstr,
    IROp,
    Role,
    TempAllocator,
    is_source_reg,
)
from repro.translator.lower import Lowering, lower_mvk
from repro.translator.regalloc import RegisterBinder
from repro.translator.rewrite import AddressTranslator, BlockIR
from repro.translator.schedule import RegionScheduler
from repro.isa.c6x.instructions import TargetInstr, TOp, TRole
from repro.isa.c6x.packets import C6xProgram
from repro.utils.bits import u32


@dataclass(frozen=True)
class TranslationOptions:
    """Knobs of the translator."""

    level: int = 1
    #: inline the cache probe into blocks with at least this many source
    #: instructions (None = always call the generated subroutine)
    inline_cache_threshold: int | None = None
    #: one block per instruction: the paper's instruction-oriented cycle
    #: generation used by the debugger for single stepping (Section 3.5)
    instruction_blocks: bool = False

    def validate(self) -> "TranslationOptions":
        if self.level not in (0, 1, 2, 3):
            raise TranslationError(f"invalid detail level {self.level}")
        return self


@dataclass
class TranslationStats:
    """Size/shape statistics of one translation."""

    source_instructions: int = 0
    basic_blocks: int = 0
    target_instructions: int = 0
    packets: int = 0
    code_expansion: float = 0.0
    accesses_data: int = 0
    accesses_io: int = 0
    accesses_unknown: int = 0
    spilled_registers: int = 0


@dataclass
class TranslationResult:
    """Everything the translator produces."""

    program: C6xProgram
    block_cycles: dict[int, BlockCycles] = field(default_factory=dict)
    stats: TranslationStats = field(default_factory=TranslationStats)
    options: TranslationOptions = field(default_factory=TranslationOptions)

    @property
    def predicted_total(self) -> int:
        return sum(bc.predicted for bc in self.block_cycles.values())


def _reserved_for_level(level: int) -> list[int]:
    reserved = [RES_DDELTA]
    if level >= 1:
        reserved.append(RES_SYNC)
    if level >= 2:
        reserved.append(RES_CORR)
    if level >= 3:
        reserved.extend([RES_RETADDR, RES_TMP0, RES_TMP1,
                         RES_TMP2, RES_TMP3, RES_TMP4, RES_TMP5])
    return reserved


class BinaryTranslator:
    """Translates one source object file to a C6x program."""

    def __init__(self, obj: ObjectFile,
                 source: SourceArch | None = None,
                 target: TargetArch | None = None,
                 options: TranslationOptions | None = None) -> None:
        self.obj = obj
        self.source = source or default_source_arch()
        self.target = target or default_target_arch()
        self.options = (options or TranslationOptions()).validate()

    def translate(self) -> TranslationResult:
        opts = self.options
        level = opts.level

        # Fig. 1: decode, intermediate code, basic blocks.
        instrs = decode_object(self.obj)
        cfg = build_cfg(instrs, self.obj,
                        instruction_blocks=opts.instruction_blocks)

        # Fig. 1: finding base addresses.
        func_entries = {sym.addr for sym in self.obj.symbols.values()
                        if sym.kind == SymbolKind.FUNC}
        accesses = analyze(cfg, self.source.memory, func_entries)

        cache_layout: CacheLayout | None = None
        if level >= 3:
            if not self.source.icache.enabled:
                raise TranslationError(
                    "detail level 3 requires an instruction cache in the "
                    "source architecture description")
            cache_layout = make_layout(self.source, self.target)

        translator = AddressTranslator(self.source, self.target, accesses,
                                       level)

        # Per-block: rewrite, cycle calculation, annotation.
        block_irs: list[BlockIR] = []
        block_cycles: dict[int, BlockCycles] = {}
        all_regions: list[tuple[BlockIR, list[CodeRegion]]] = []
        for block in cfg:
            block_ir = translator.rewrite_block(block)
            cycles = static_block_cycles(block, accesses, self.source, level)
            block_cycles[block.addr] = cycles
            regions = build_block_regions(
                block_ir, cycles, level, self.source, cache_layout,
                opts.inline_cache_threshold)
            block_irs.append(block_ir)
            all_regions.append((block_ir, regions))

        # Register binding plan from global source-register usage.
        usage: Counter = Counter()
        for block_ir, regions in all_regions:
            for region in regions:
                for item in region.items:
                    for reg in (*item.reads(), *item.writes()):
                        if is_source_reg(reg):
                            usage[reg] += 1
                if region.terminator is not None:
                    for reg in region.terminator.reads():
                        if is_source_reg(reg):
                            usage[reg] += 1
        spill_base = self.target.internal_base + (
            cache_layout.size if cache_layout else 0)
        binder = RegisterBinder(self.target, _reserved_for_level(level),
                                usage, spill_base)

        scheduler = RegionScheduler(self.target)
        emitter = ProgramEmitter(self.source, self.target, self.obj)

        # Prologue: reserved-register setup, then jump to the entry block.
        emitter.add_region(self._prologue(binder, scheduler, level))

        for block_ir, regions in all_regions:
            lowering = Lowering(block_ir.temps)
            for region in regions:
                lowered = lowering.lower_region(region)
                terminator = lowering.lower_terminator(region)
                bound, bound_term = binder.bind_region(lowered, terminator)
                scheduled = scheduler.schedule(bound, bound_term)
                emitter.add_region(EmittedRegion(
                    label=region.label,
                    packets=scheduled.packets,
                    block_addr=region.block_addr,
                    n_source_instructions=region.n_source_instructions,
                    predicted_cycles=region.predicted_cycles,
                ))

        if level >= 3 and cache_layout is not None \
                and self._uses_cache_subroutine(all_regions):
            emitter.add_region(self._cache_subroutine(
                cache_layout, binder, scheduler))

        program = emitter.finish(binder.plan.source,
                                 dict(binder.plan.spilled))
        result = TranslationResult(
            program=program,
            block_cycles=block_cycles,
            options=opts,
        )
        self._fill_stats(result, cfg, accesses, binder)
        return result

    # ------------------------------------------------------------------

    def _prologue(self, binder: RegisterBinder, scheduler: RegionScheduler,
                  level: int) -> EmittedRegion:
        meta = dict(pred=None, pred_sense=True, role=TRole.PROLOGUE,
                    src_addr=None, comment="", device=False)
        plan = binder.plan
        items: list[TargetInstr] = []
        delta = u32(self.target.data_base - self.source.memory.data_base)
        items.extend(lower_mvk(plan.reserved[RES_DDELTA], delta,
                               dict(meta, comment="data region delta")))
        if level >= 1:
            items.extend(lower_mvk(plan.reserved[RES_SYNC],
                                   self.target.sync_base,
                                   dict(meta, comment="sync device base")))
        if level >= 2:
            items.extend(lower_mvk(plan.reserved[RES_CORR], 0,
                                   dict(meta, comment="clear correction")))
        items.extend(binder.prologue_spill_setup())
        terminator = TargetInstr(
            op=TOp.B, target=f"B_{self.obj.entry:08x}", role=TRole.PROLOGUE)
        scheduled = scheduler.schedule(items, terminator)
        return EmittedRegion(label="__entry", packets=scheduled.packets)

    def _cache_subroutine(self, layout: CacheLayout,
                          binder: RegisterBinder,
                          scheduler: RegionScheduler) -> EmittedRegion:
        body, ret = subroutine_body(layout)
        lowering = Lowering(TempAllocator())
        lowered: list[TargetInstr] = []
        for item in body:
            lowered.extend(lowering.lower_instr(item))
        term = lowering.lower_terminator(
            _FakeRegion(items=[], terminator=ret))
        bound, bound_term = binder.bind_region(lowered, term)
        scheduled = scheduler.schedule(bound, bound_term)
        return EmittedRegion(label=CACHE_SUB_LABEL,
                             packets=scheduled.packets)

    @staticmethod
    def _uses_cache_subroutine(all_regions) -> bool:
        for _block_ir, regions in all_regions:
            for region in regions:
                term = region.terminator
                if term is not None and term.label == CACHE_SUB_LABEL:
                    return True
        return False

    def _fill_stats(self, result: TranslationResult, cfg, accesses,
                    binder: RegisterBinder) -> None:
        from repro.translator.baseaddr import Region as AccessRegion

        stats = result.stats
        stats.source_instructions = sum(b.n_instructions for b in cfg)
        stats.basic_blocks = len(cfg)
        stats.packets = len(result.program.packets)
        stats.target_instructions = result.program.n_instructions
        if stats.source_instructions:
            stats.code_expansion = (stats.target_instructions /
                                    stats.source_instructions)
        for cls in accesses.values():
            if cls.region is AccessRegion.DATA:
                stats.accesses_data += 1
            elif cls.region is AccessRegion.IO:
                stats.accesses_io += 1
            else:
                stats.accesses_unknown += 1
        stats.spilled_registers = len(binder.plan.spilled)


@dataclass
class _FakeRegion:
    """Adapter so :class:`Lowering` can lower a bare terminator."""

    items: list
    terminator: IRInstr


def translate(obj: ObjectFile, level: int = 1,
              source: SourceArch | None = None,
              target: TargetArch | None = None,
              inline_cache_threshold: int | None = None,
              instruction_blocks: bool = False) -> TranslationResult:
    """Convenience wrapper around :class:`BinaryTranslator`."""
    options = TranslationOptions(
        level=level, inline_cache_threshold=inline_cache_threshold,
        instruction_blocks=instruction_blocks)
    return BinaryTranslator(obj, source, target, options).translate()
