"""Register binding (the "register binding" step of Fig. 1).

Maps the virtual register space — source architectural registers,
block-local temporaries, reserved translator-internal registers — onto
the target's physical A/B files:

* reserved registers get fixed physical homes at the top of the B file
  (how many depends on the detail level);
* source registers are ranked by static use count; the most-used get
  physical registers (data registers prefer the A side, address
  registers the B side), the rest live in memory spill slots;
* temporaries are bound per region by a linear scan over the free pool
  with reuse at last use.

Spilled source registers are rewritten access-by-access: a load into a
fresh temporary before each read, a store after each write.  The spill
area lives in target memory next to the simulated-cache data and is
addressed through one extra reserved register (``spill base``) so each
spill access costs a single instruction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace

from repro.arch.model import TargetArch
from repro.errors import RegisterAllocationError
from repro.isa.c6x.instructions import TargetInstr, TOp, TRole
from repro.translator.ir import (
    NUM_SOURCE_REGS,
    is_reserved,
    is_source_reg,
    is_temp,
)

#: minimum physical registers kept free for temporaries.
MIN_TEMP_POOL = 6


@dataclass
class BindingPlan:
    """Where every virtual register lives."""

    reserved: dict[int, int]  # reserved id -> physical register
    source: dict[int, int]  # source reg -> physical register
    spilled: dict[int, int]  # source reg -> spill slot address
    pool: list[int]  # physical registers available for temporaries
    spill_base_reg: int | None  # physical register holding the spill base
    spill_base_addr: int = 0


class RegisterBinder:
    """Builds the binding plan and rewrites regions to physical registers."""

    def __init__(self, target: TargetArch, reserved_ids: list[int],
                 usage: Counter, spill_base_addr: int) -> None:
        self.target = target
        self._reserved_ids = list(reserved_ids)
        self._usage = usage
        self._spill_base_addr = spill_base_addr
        self.plan = self._make_plan()

    # ------------------------------------------------------------------

    def _make_plan(self) -> BindingPlan:
        total = 2 * self.target.registers_per_side
        # Reserved registers live at the top of the B file, downwards.
        reserved: dict[int, int] = {}
        next_phys = total - 1
        for res_id in self._reserved_ids:
            if next_phys < 0:
                raise RegisterAllocationError(
                    "too many reserved registers for the register file")
            reserved[res_id] = next_phys
            next_phys -= 1

        taken = set(reserved.values())
        a_side = [r for r in range(self.target.registers_per_side)
                  if r not in taken]
        b_side = [r for r in range(self.target.registers_per_side, total)
                  if r not in taken]

        used_sources = [reg for reg, count in self._usage.items()
                        if count > 0 and is_source_reg(reg)]
        used_sources.sort(key=lambda reg: (-self._usage[reg], reg))

        available = len(a_side) + len(b_side)
        max_bound = max(0, available - MIN_TEMP_POOL)
        need_spills = len(used_sources) > max_bound
        if need_spills and max_bound > 0:
            max_bound -= 1  # one more register goes to the spill base

        source: dict[int, int] = {}
        spilled: dict[int, int] = {}
        slot = 0
        for reg in used_sources:
            if len(source) < max_bound:
                prefer = a_side if reg < 16 else b_side
                fallback = b_side if reg < 16 else a_side
                bucket = prefer if prefer else fallback
                if not bucket:
                    raise RegisterAllocationError(
                        "register file exhausted during source binding")
                source[reg] = bucket.pop(0)
            else:
                spilled[reg] = self._spill_base_addr + 4 * slot
                slot += 1

        spill_base_reg: int | None = None
        if spilled:
            bucket = b_side if b_side else a_side
            if not bucket:
                raise RegisterAllocationError(
                    "no register left for the spill base")
            spill_base_reg = bucket.pop(0)

        pool = sorted(a_side + b_side)
        if len(pool) < 2:
            raise RegisterAllocationError(
                f"temporary pool too small ({len(pool)} registers); "
                f"reduce reserved registers or enlarge the register file")
        return BindingPlan(
            reserved=reserved,
            source=source,
            spilled=spilled,
            pool=pool,
            spill_base_reg=spill_base_reg,
            spill_base_addr=self._spill_base_addr,
        )

    # ------------------------------------------------------------------

    def bind_region(self, instrs: list[TargetInstr],
                    terminator: TargetInstr | None
                    ) -> tuple[list[TargetInstr], TargetInstr | None]:
        """Rewrite one region to physical registers."""
        binder = _RegionBinder(self.plan)
        bound = binder.run(instrs, terminator)
        return bound

    def prologue_spill_setup(self) -> list[TargetInstr]:
        """Instructions initializing the spill base register."""
        if self.plan.spill_base_reg is None:
            return []
        from repro.translator.lower import lower_mvk

        meta = dict(pred=None, pred_sense=True, role=TRole.PROLOGUE,
                    src_addr=None, comment="spill area base", device=False)
        return lower_mvk(self.plan.spill_base_reg,
                         self.plan.spill_base_addr, meta)


class _RegionBinder:
    """Linear-scan temporary binding for one region."""

    def __init__(self, plan: BindingPlan) -> None:
        self._plan = plan
        self._free = list(plan.pool)
        self._temp_map: dict[int, int] = {}
        self._last_use: dict[int, int] = {}
        self._out: list[TargetInstr] = []

    def run(self, instrs: list[TargetInstr],
            terminator: TargetInstr | None
            ) -> tuple[list[TargetInstr], TargetInstr | None]:
        sequence = list(instrs) + ([terminator] if terminator else [])
        for index, instr in enumerate(sequence):
            for reg in (*instr.reads(), *instr.writes()):
                if is_temp(reg):
                    self._last_use[reg] = index

        bound_term: TargetInstr | None = None
        for index, instr in enumerate(sequence):
            is_term = terminator is not None and index == len(sequence) - 1
            bound = self._bind_instr(instr, index)
            if is_term:
                bound_term = bound
            else:
                self._out.append(bound)
            self._release_dead(index)
        return self._out, bound_term

    # -- helpers -------------------------------------------------------

    def _phys_of(self, reg: int, index: int, writing: bool) -> int:
        plan = self._plan
        if is_reserved(reg):
            try:
                return plan.reserved[reg]
            except KeyError:
                raise RegisterAllocationError(
                    f"reserved register {reg} has no binding at this "
                    f"detail level") from None
        if is_source_reg(reg):
            phys = plan.source.get(reg)
            if phys is not None:
                return phys
            raise _NeedsSpill(reg)
        # temporary
        phys = self._temp_map.get(reg)
        if phys is None:
            if not writing:
                raise RegisterAllocationError(
                    f"temporary t{reg} read before being written")
            phys = self._alloc_temp(reg)
        return phys

    def _alloc_temp(self, reg: int) -> int:
        if not self._free:
            raise RegisterAllocationError(
                "temporary register pool exhausted; the region is too "
                "complex for the configured register file")
        phys = self._free.pop(0)
        self._temp_map[reg] = phys
        return phys

    def _release_dead(self, index: int) -> None:
        dead = [t for t, last in self._last_use.items()
                if last == index and t in self._temp_map]
        for temp in dead:
            self._free.append(self._temp_map.pop(temp))

    def _bind_instr(self, instr: TargetInstr, index: int) -> TargetInstr:
        """Bind one instruction, inserting spill loads/stores as needed."""
        fields = {}
        spill_loads: list[TargetInstr] = []
        store_after: TargetInstr | None = None

        def map_read(reg: int | None) -> int | None:
            if reg is None:
                return None
            try:
                return self._phys_of(reg, index, writing=False)
            except _NeedsSpill as spill:
                phys = self._alloc_spill_temp(spill.reg, index)
                spill_loads.append(self._spill_load(spill.reg, phys))
                return phys

        src1 = instr.src1
        src2 = instr.src2
        pred = instr.pred
        dst = instr.dst
        # Reads first (so a spilled reg read+written uses two temps).
        read_map: dict[int, int] = {}
        for reg in instr.reads():
            if reg not in read_map:
                mapped = map_read(reg)
                read_map[reg] = mapped

        def lookup_read(reg: int | None) -> int | None:
            return None if reg is None else read_map[reg]

        bound_pred = lookup_read(pred) if pred is not None else None
        new_dst = None
        if dst is not None:
            if dst in read_map:
                # Read-modify-write (MVKH keeps the low halfword): the
                # write must land in the same register that was read.
                new_dst = read_map[dst]
                if is_source_reg(dst) and dst in self._plan.spilled:
                    store_after = self._spill_store(
                        dst, new_dst, bound_pred, instr.pred_sense)
            else:
                try:
                    new_dst = self._phys_of(dst, index, writing=True)
                except _NeedsSpill as spill:
                    phys = self._alloc_spill_temp(spill.reg, index)
                    new_dst = phys
                    store_after = self._spill_store(
                        spill.reg, phys, bound_pred, instr.pred_sense)

        bound = replace(
            instr,
            dst=new_dst,
            src1=lookup_read(src1) if src1 is not None else None,
            src2=lookup_read(src2) if src2 is not None else None,
            pred=bound_pred,
        )
        for load in spill_loads:
            self._out.append(load)
        if store_after is not None:
            self._out.append(bound)
            self._release_spill_temps(index)
            return store_after
        self._release_spill_temps(index)
        return bound

    # -- spill mechanics --------------------------------------------------

    def _alloc_spill_temp(self, source_reg: int, index: int) -> int:
        if not self._free:
            raise RegisterAllocationError(
                "no free register for a spill access")
        phys = self._free.pop(0)
        self._spill_temps = getattr(self, "_spill_temps", [])
        self._spill_temps.append(phys)
        return phys

    def _release_spill_temps(self, index: int) -> None:
        for phys in getattr(self, "_spill_temps", []):
            self._free.append(phys)
        self._spill_temps = []

    def _spill_load(self, source_reg: int, phys: int) -> TargetInstr:
        plan = self._plan
        return TargetInstr(
            TOp.LDW, dst=phys, src1=plan.spill_base_reg,
            imm=plan.spilled[source_reg] - plan.spill_base_addr,
            role=TRole.PROGRAM,
            comment=f"reload spilled source r{source_reg}")

    def _spill_store(self, source_reg: int, phys: int,
                     pred: int | None, pred_sense: bool) -> TargetInstr:
        # A predicated write spills under the same predicate: when the
        # write is nullified the slot must keep its old value.
        plan = self._plan
        return TargetInstr(
            TOp.STW, src1=phys, src2=plan.spill_base_reg,
            imm=plan.spilled[source_reg] - plan.spill_base_addr,
            pred=pred, pred_sense=pred_sense,
            role=TRole.PROGRAM,
            comment=f"spill source r{source_reg}")


class _NeedsSpill(Exception):
    def __init__(self, reg: int) -> None:
        super().__init__(f"source register {reg} is spilled")
        self.reg = reg
