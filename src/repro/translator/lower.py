"""Lowering: intermediate code to virtual target instructions.

Converts the unconstrained IR into :class:`TargetInstr` over the same
(virtual) register space, legalizing constants for the target's
encoding model:

* ``MVK`` fits a signed 16-bit constant; constants with a zero lower
  halfword use a single ``MVKH``; everything else becomes the
  ``MVKL``/``MVKH`` pair (exactly the real C6x idiom);
* label-valued ``MVK`` (return-point materialization) always lowers to
  the pair, with halves filled at emission;
* ALU immediates beyond signed 16 bits and load/store offsets beyond
  signed 15 bits are materialized through a temporary.

Register numbers remain IR-space (architectural 0–31, temporaries,
reserved ids); binding to physical registers happens afterwards.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.isa.c6x.instructions import TargetInstr, TOp, TRole
from repro.translator.annotate import CodeRegion
from repro.translator.ir import IRInstr, IROp, Role, TempAllocator, is_reserved
from repro.utils.bits import fits_signed, s32, u32

_OP_MAP: dict[IROp, TOp] = {
    IROp.MV: TOp.MV,
    IROp.ADD: TOp.ADD,
    IROp.SUB: TOp.SUB,
    IROp.MPY: TOp.MPY,
    IROp.AND: TOp.AND,
    IROp.OR: TOp.OR,
    IROp.XOR: TOp.XOR,
    IROp.ANDN: TOp.ANDN,
    IROp.SHL: TOp.SHL,
    IROp.SHRU: TOp.SHRU,
    IROp.SHRA: TOp.SHRA,
    IROp.MIN: TOp.MIN,
    IROp.MAX: TOp.MAX,
    IROp.ABS: TOp.ABS,
    IROp.CMPEQ: TOp.CMPEQ,
    IROp.CMPNE: TOp.CMPNE,
    IROp.CMPLT: TOp.CMPLT,
    IROp.CMPLTU: TOp.CMPLTU,
    IROp.CMPGE: TOp.CMPGE,
    IROp.CMPGEU: TOp.CMPGEU,
    IROp.LDW: TOp.LDW,
    IROp.LDH: TOp.LDH,
    IROp.LDHU: TOp.LDHU,
    IROp.LDB: TOp.LDB,
    IROp.LDBU: TOp.LDBU,
    IROp.STW: TOp.STW,
    IROp.STH: TOp.STH,
    IROp.STB: TOp.STB,
    IROp.HALT: TOp.HALT,
}

_ROLE_MAP: dict[Role, TRole] = {role: TRole(role.value) for role in Role
                                if role.value in {r.value for r in TRole}}

_SHIFT_OPS = {IROp.SHL, IROp.SHRU, IROp.SHRA}


def _role(ir_role: Role) -> TRole:
    return _ROLE_MAP.get(ir_role, TRole.PROGRAM)


def _meta(instr: IRInstr) -> dict:
    return dict(
        pred=instr.pred,
        pred_sense=instr.pred_sense,
        role=_role(instr.role),
        src_addr=instr.src_addr,
        comment=instr.comment,
        device=instr.device,
    )


def lower_mvk(dst: int, imm: int, meta: dict,
              label: str | None = None) -> list[TargetInstr]:
    """Materialize a 32-bit constant (or label value) into *dst*."""
    if label is not None:
        return [
            TargetInstr(TOp.MVKL, dst=dst, target=label, **meta),
            TargetInstr(TOp.MVKH, dst=dst, target=label, **meta),
        ]
    value = s32(u32(imm))
    if fits_signed(value, 16):
        return [TargetInstr(TOp.MVK, dst=dst, imm=value, **meta)]
    # The real C6x idiom: MVKL sign-extends the low halfword, MVKH then
    # replaces the upper one.  MVKH alone would inherit a garbage low
    # halfword, so the pair is always emitted.
    uvalue = u32(imm)
    low = uvalue & 0xFFFF
    return [
        TargetInstr(TOp.MVKL, dst=dst,
                    imm=s32(low | (0xFFFF0000 if low & 0x8000 else 0)),
                    **meta),
        TargetInstr(TOp.MVKH, dst=dst, imm=uvalue >> 16, **meta),
    ]


class Lowering:
    """Lowers the regions of one basic block (shared temp allocator)."""

    def __init__(self, temps: TempAllocator) -> None:
        self._temps = temps

    def lower_region(self, region: CodeRegion) -> list[TargetInstr]:
        out: list[TargetInstr] = []
        for instr in region.items:
            out.extend(self.lower_instr(instr))
        return out

    def lower_terminator(self, region: CodeRegion) -> TargetInstr | None:
        term = region.terminator
        if term is None:
            return None
        if term.op is not IROp.B:
            raise TranslationError(
                f"region terminator is not a branch: {term.op}")
        meta = _meta(term)
        if term.label is not None:
            return TargetInstr(TOp.B, target=term.label, **meta)
        if term.a is not None:
            return TargetInstr(TOp.B, src1=term.a, **meta)
        if term.imm is None:
            raise TranslationError("branch without a target")
        return TargetInstr(TOp.B, target=f"B_{term.imm:08x}", **meta)

    # ------------------------------------------------------------------

    def lower_instr(self, instr: IRInstr) -> list[TargetInstr]:
        meta = _meta(instr)
        op = instr.op
        if op is IROp.NOP:
            return []
        if op is IROp.B:
            raise TranslationError("stray branch inside a region body")
        if op is IROp.MVK:
            if instr.pred is not None and instr.label is None \
                    and not fits_signed(s32(u32(instr.imm or 0)), 16):
                raise TranslationError(
                    "predicated MVK of a wide constant is not supported")
            return lower_mvk(instr.dst, instr.imm or 0, meta, instr.label)
        if op in (IROp.LDW, IROp.LDH, IROp.LDHU, IROp.LDB, IROp.LDBU):
            return self._lower_load(instr, meta)
        if op in (IROp.STW, IROp.STH, IROp.STB):
            return self._lower_store(instr, meta)
        if op is IROp.HALT:
            return [TargetInstr(TOp.HALT, **meta)]

        top = _OP_MAP[op]
        if instr.b is not None or instr.imm is None:
            return [TargetInstr(top, dst=instr.dst, src1=instr.a,
                                src2=instr.b, **meta)]
        imm = instr.imm
        if op in _SHIFT_OPS:
            if not 0 <= imm <= 31:
                raise TranslationError(f"shift amount {imm} out of range")
            return [TargetInstr(top, dst=instr.dst, src1=instr.a, imm=imm,
                                **meta)]
        value = s32(u32(imm))
        if fits_signed(value, 16):
            return [TargetInstr(top, dst=instr.dst, src1=instr.a, imm=value,
                                **meta)]
        temp = self._temps.fresh()
        mvk_meta = dict(meta)
        mvk_meta["pred"] = None  # materialization is side-effect free
        mvk_meta["pred_sense"] = True
        return [
            *lower_mvk(temp, imm, mvk_meta),
            TargetInstr(top, dst=instr.dst, src1=instr.a, src2=temp, **meta),
        ]

    def _lower_load(self, instr: IRInstr, meta: dict) -> list[TargetInstr]:
        top = _OP_MAP[instr.op]
        offset = instr.imm or 0
        if fits_signed(offset, 15):
            return [TargetInstr(top, dst=instr.dst, src1=instr.a, imm=offset,
                                **meta)]
        temp = self._temps.fresh()
        return [
            *self._address_add(temp, instr.a, offset, meta),
            TargetInstr(top, dst=instr.dst, src1=temp, imm=0, **meta),
        ]

    def _lower_store(self, instr: IRInstr, meta: dict) -> list[TargetInstr]:
        top = _OP_MAP[instr.op]
        offset = instr.imm or 0
        if fits_signed(offset, 15):
            return [TargetInstr(top, src1=instr.a, src2=instr.b, imm=offset,
                                **meta)]
        temp = self._temps.fresh()
        return [
            *self._address_add(temp, instr.b, offset, meta),
            TargetInstr(top, src1=instr.a, src2=temp, imm=0, **meta),
        ]

    def _address_add(self, dst: int, base: int, offset: int,
                     meta: dict) -> list[TargetInstr]:
        add_meta = dict(meta)
        add_meta["pred"] = None
        add_meta["pred_sense"] = True
        add_meta["device"] = False
        if fits_signed(offset, 16):
            return [TargetInstr(TOp.ADD, dst=dst, src1=base, imm=offset,
                                **add_meta)]
        temp = self._temps.fresh()
        return [
            *lower_mvk(temp, offset, add_meta),
            TargetInstr(TOp.ADD, dst=dst, src1=base, src2=temp, **add_meta),
        ]
