"""Basic-block construction and control-flow graph.

Fig. 1: "the basic blocks of this program are found out … and a list of
basic blocks is built".  Leaders are the program entry, every function
symbol (possible indirect-branch target), every direct branch target,
and every instruction following a control transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TranslationError
from repro.objfile.elf import ObjectFile, SymbolKind
from repro.refsim.decoded import DecodedInstr
from repro.translator.ir import BranchKind


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    addr: int
    instrs: list[DecodedInstr] = field(default_factory=list)

    @property
    def end_addr(self) -> int:
        last = self.instrs[-1]
        return last.next_addr

    @property
    def n_instructions(self) -> int:
        return len(self.instrs)

    @property
    def size_bytes(self) -> int:
        return self.end_addr - self.addr

    @property
    def terminator(self) -> DecodedInstr | None:
        """The control transfer ending this block (None = fall-through)."""
        last = self.instrs[-1]
        return last if last.branch_kind is not BranchKind.NONE else None

    @property
    def kind(self) -> BranchKind:
        term = self.terminator
        return term.branch_kind if term is not None else BranchKind.NONE

    @property
    def branch_target(self) -> int | None:
        term = self.terminator
        return term.branch_target if term is not None else None

    @property
    def falls_through(self) -> bool:
        """True if control may continue into the next block in memory."""
        if self.instrs[-1].spec.key == "halt":
            return False
        kind = self.kind
        # Calls "fall through" in the sense that the return site is the
        # next block; jumps, returns and indirect jumps never do.
        return kind in (BranchKind.NONE, BranchKind.COND, BranchKind.LOOP,
                        BranchKind.CALL, BranchKind.CALL_INDIRECT)

    def successor_addrs(self) -> list[int]:
        """Statically known successor block addresses."""
        result: list[int] = []
        if self.kind in (BranchKind.COND, BranchKind.LOOP, BranchKind.JUMP):
            if self.branch_target is not None:
                result.append(self.branch_target)
        if self.falls_through:
            result.append(self.end_addr)
        return result


@dataclass
class ControlFlowGraph:
    """Address-ordered basic blocks plus lookup tables."""

    blocks: dict[int, BasicBlock]
    entry: int

    @property
    def order(self) -> list[int]:
        return sorted(self.blocks)

    def block_of(self, addr: int) -> BasicBlock:
        """The block containing *addr* (not necessarily at its start)."""
        candidates = [a for a in self.blocks if a <= addr]
        if not candidates:
            raise TranslationError(f"no block contains {addr:#010x}")
        block = self.blocks[max(candidates)]
        if addr >= block.end_addr:
            raise TranslationError(f"no block contains {addr:#010x}")
        return block

    def __iter__(self):
        for addr in self.order:
            yield self.blocks[addr]

    def __len__(self) -> int:
        return len(self.blocks)


def build_cfg(instrs: list[DecodedInstr], obj: ObjectFile,
              instruction_blocks: bool = False) -> ControlFlowGraph:
    """Partition *instrs* into basic blocks.

    With *instruction_blocks* every instruction becomes its own block —
    the "instruction oriented cycle generation" of the paper's debug
    support (Section 3.5), where the translated code carries cycle
    generation per instruction so the debugger can single-step.
    """
    if not instrs:
        raise TranslationError("cannot build a CFG from an empty program")
    by_addr = {i.addr: i for i in instrs}
    leaders: set[int] = {obj.entry}
    if instruction_blocks:
        leaders.update(by_addr)
    for sym in obj.symbols.values():
        if sym.kind == SymbolKind.FUNC and sym.addr in by_addr:
            leaders.add(sym.addr)
    for instr in instrs:
        if instr.branch_kind is not BranchKind.NONE:
            if instr.branch_target is not None:
                target = instr.branch_target
                if target not in by_addr:
                    raise TranslationError(
                        f"branch at {instr.addr:#010x} targets "
                        f"{target:#010x}, which is not an instruction start")
                leaders.add(target)
            if instr.next_addr in by_addr:
                leaders.add(instr.next_addr)
        elif instr.spec.key in ("halt", "debug"):
            if instr.next_addr in by_addr:
                leaders.add(instr.next_addr)

    if obj.entry not in by_addr:
        raise TranslationError(
            f"entry point {obj.entry:#010x} is not an instruction start")

    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None
    for instr in instrs:
        if instr.addr in leaders or current is None:
            current = BasicBlock(addr=instr.addr)
            blocks[instr.addr] = current
        current.instrs.append(instr)
        if instr.branch_kind is not BranchKind.NONE \
                or instr.spec.key == "halt":
            current = None
    return ControlFlowGraph(blocks=blocks, entry=obj.entry)
