"""Intermediate code of the binary translator.

Per Section 3 of the paper, the semantics of every source instruction is
written "in an intermediate code which resembles the assembler
instructions of the C6x processor but does not have their constraints":
three-address operations over an unlimited register space, with optional
predicates, and no functional-unit or delay-slot restrictions.

The same intermediate code is the single source of semantic truth for
the whole library: the reference ISS *interprets* the IR expansion of
each source instruction, while the binary translator *compiles* it to
scheduled VLIW packets.  Functional equivalence between the reference
simulation and the translated program is therefore structural.

Register numbering
------------------
``0..15``   source data registers d0–d15
``16..31``  source address registers a0–a15
``32..``    translator temporaries (fresh per expansion)
``>= 1000`` reserved translator-internal registers (sync-device base,
            correction counter, cache-data base, scratch) bound to
            reserved physical registers by the register binder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterator

NUM_SOURCE_REGS = 32
FIRST_TEMP = 32

# Reserved translator-internal registers (bound late to reserved
# physical registers; see repro.translator.regalloc).
RES_SYNC = 1000  # base address of the synchronization device
RES_CORR = 1001  # dynamic cycle-correction counter
RES_DDELTA = 1002  # source-data -> target-data address delta
RES_RETADDR = 1003  # return-address register of the cache subroutine
RES_TMP0 = 1004  # cache-subroutine argument: set data address
RES_TMP1 = 1005  # cache-subroutine argument: tag+valid word
RES_TMP2 = 1006  # cache-subroutine scratch
RES_TMP3 = 1007  # cache-subroutine scratch
RES_TMP4 = 1008  # cache-subroutine scratch
RES_TMP5 = 1009  # cache-subroutine scratch
RESERVED_REGS = (RES_SYNC, RES_CORR, RES_DDELTA, RES_RETADDR,
                 RES_TMP0, RES_TMP1, RES_TMP2, RES_TMP3, RES_TMP4, RES_TMP5)


def is_temp(reg: int) -> bool:
    """True for translator temporaries (not architectural, not reserved)."""
    return FIRST_TEMP <= reg < RES_SYNC


def is_reserved(reg: int) -> bool:
    """True for reserved translator-internal registers."""
    return reg >= RES_SYNC


def is_source_reg(reg: int) -> bool:
    """True for architectural source registers (d0–d15 / a0–a15)."""
    return 0 <= reg < NUM_SOURCE_REGS


def source_reg_name(reg: int) -> str:
    """Render an IR register in source terms (``d4``, ``a10``, ``t35``)."""
    if 0 <= reg < 16:
        return f"d{reg}"
    if 16 <= reg < 32:
        return f"a{reg - 16}"
    if is_reserved(reg):
        names = {
            RES_SYNC: "Rsync",
            RES_CORR: "Rcorr",
            RES_DDELTA: "Rdelta",
            RES_RETADDR: "Rret",
            RES_TMP0: "Rtmp0",
            RES_TMP1: "Rtmp1",
            RES_TMP2: "Rtmp2",
            RES_TMP3: "Rtmp3",
            RES_TMP4: "Rtmp4",
            RES_TMP5: "Rtmp5",
        }
        return names.get(reg, f"Rres{reg}")
    return f"t{reg}"


class IROp(enum.Enum):
    """Operations of the intermediate code."""

    # Data movement / constants
    MV = "mv"  # dst = src a
    MVK = "mvk"  # dst = imm (32-bit constant; materialization is late)
    # Integer arithmetic / logic (dst, a, b-or-imm)
    ADD = "add"
    SUB = "sub"
    MPY = "mpy"
    AND = "and"
    OR = "or"
    XOR = "xor"
    ANDN = "andn"
    SHL = "shl"
    SHRU = "shru"
    SHRA = "shra"
    MIN = "min"
    MAX = "max"
    ABS = "abs"  # unary: dst = |a|
    # Comparisons: dst = 1 if relation holds else 0
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLTU = "cmpltu"
    CMPGE = "cmpge"
    CMPGEU = "cmpgeu"
    # Memory: loads dst = mem[a + imm]; stores mem[b + imm] = a
    LDW = "ldw"
    LDH = "ldh"
    LDHU = "ldhu"
    LDB = "ldb"
    LDBU = "ldbu"
    STW = "stw"
    STH = "sth"
    STB = "stb"
    # Control: branch to imm target or to register a
    B = "b"
    HALT = "halt"
    NOP = "nop"


LOAD_OPS = frozenset({IROp.LDW, IROp.LDH, IROp.LDHU, IROp.LDB, IROp.LDBU})
STORE_OPS = frozenset({IROp.STW, IROp.STH, IROp.STB})
MEMORY_OPS = LOAD_OPS | STORE_OPS
COMPARE_OPS = frozenset(
    {IROp.CMPEQ, IROp.CMPNE, IROp.CMPLT, IROp.CMPLTU, IROp.CMPGE, IROp.CMPGEU}
)
UNARY_OPS = frozenset({IROp.MV, IROp.ABS})
ALU_OPS = frozenset(
    {
        IROp.ADD,
        IROp.SUB,
        IROp.MPY,
        IROp.AND,
        IROp.OR,
        IROp.XOR,
        IROp.ANDN,
        IROp.SHL,
        IROp.SHRU,
        IROp.SHRA,
        IROp.MIN,
        IROp.MAX,
    }
)


class BranchKind(enum.Enum):
    """Classification of a source-level control transfer (for timing/CFG)."""

    NONE = "none"
    JUMP = "jump"  # unconditional direct jump
    COND = "cond"  # conditional direct branch
    LOOP = "loop"  # hardware loop-back branch
    CALL = "call"  # direct call
    CALL_INDIRECT = "calli"
    RET = "ret"
    INDIRECT = "indirect"  # indirect jump


class Role(enum.Enum):
    """Why the translator inserted an IR instruction (annotation roles)."""

    PROGRAM = "program"  # translated source semantics
    SYNC_START = "sync_start"  # write n to the sync device (Fig. 2)
    SYNC_WAIT = "sync_wait"  # blocking read from the sync device
    CORR_ADD = "corr_add"  # correction-counter update (Section 3.4.1)
    CORR_START = "corr_start"  # write counter to correction channel
    CORR_WAIT = "corr_wait"  # blocking read from correction channel
    CORR_RESET = "corr_reset"  # zero the correction counter
    CACHE = "cache"  # cache-analysis / cache-subroutine code (3.4.2)
    ADDR_FIXUP = "addr_fixup"  # dynamic address translation stub
    PROLOGUE = "prologue"  # platform entry stub
    DEBUG = "debug"  # debug trap insertion (Section 3.5)


@dataclass
class IRInstr:
    """One intermediate instruction.

    Operand conventions by :class:`IROp`:

    * ALU / compare: ``dst``, ``a`` and either ``b`` (register) or
      ``imm`` (constant second operand).
    * ``MV``/``ABS``: ``dst``, ``a``.
    * ``MVK``: ``dst``, ``imm``.
    * loads: ``dst``, base register ``a``, offset ``imm``.
    * stores: value register ``a``, base register ``b``, offset ``imm``.
    * ``B``: target address ``imm`` (direct) or target register ``a``
      (indirect); optional predicate.
    """

    op: IROp
    dst: int | None = None
    a: int | None = None
    b: int | None = None
    imm: int | None = None
    pred: int | None = None
    pred_sense: bool = True
    #: translator-internal label reference: branch target of inserted
    #: code (cache subroutine, return points) or the value of an MVK
    #: that materializes a return point.  Resolved at emission.
    label: str | None = None
    #: memory op with device side effects (I/O, sync device): the
    #: scheduler keeps all such accesses strictly ordered.
    device: bool = False
    # --- metadata ---
    src_addr: int | None = None  # address of the originating source instr
    branch: BranchKind = BranchKind.NONE
    role: Role = Role.PROGRAM
    comment: str = ""

    def is_branch(self) -> bool:
        return self.op is IROp.B

    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    def is_store(self) -> bool:
        return self.op in STORE_OPS

    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    def is_conditional(self) -> bool:
        return self.pred is not None

    def reads(self) -> tuple[int, ...]:
        """Registers read by this instruction (including the predicate)."""
        regs: list[int] = []
        if self.op in STORE_OPS:
            if self.a is not None:
                regs.append(self.a)  # value
            if self.b is not None:
                regs.append(self.b)  # base
        elif self.op is IROp.B:
            if self.a is not None:
                regs.append(self.a)  # indirect target
        elif self.op is IROp.MVK:
            pass
        else:
            if self.a is not None:
                regs.append(self.a)
            if self.b is not None:
                regs.append(self.b)
        if self.pred is not None:
            regs.append(self.pred)
        return tuple(regs)

    def writes(self) -> tuple[int, ...]:
        """Registers written by this instruction."""
        return (self.dst,) if self.dst is not None else ()

    def renamed(self, mapping: dict[int, int]) -> "IRInstr":
        """Return a copy with registers substituted through *mapping*."""

        def sub(reg: int | None) -> int | None:
            return mapping.get(reg, reg) if reg is not None else None

        return replace(
            self,
            dst=sub(self.dst),
            a=sub(self.a),
            b=sub(self.b),
            pred=sub(self.pred),
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts: list[str] = []
        if self.pred is not None:
            sense = "" if self.pred_sense else "!"
            parts.append(f"[{sense}{source_reg_name(self.pred)}]")
        parts.append(self.op.value)
        operands: list[str] = []
        if self.dst is not None:
            operands.append(source_reg_name(self.dst))
        if self.op in LOAD_OPS:
            operands.append(f"*({source_reg_name(self.a)} + {self.imm})")
        elif self.op in STORE_OPS:
            operands.append(source_reg_name(self.a))
            operands.append(f"*({source_reg_name(self.b)} + {self.imm})")
        elif self.op is IROp.B:
            if self.a is not None:
                operands.append(source_reg_name(self.a))
            else:
                operands.append(f"{self.imm:#x}" if self.imm is not None else "?")
        else:
            if self.a is not None:
                operands.append(source_reg_name(self.a))
            if self.b is not None:
                operands.append(source_reg_name(self.b))
            elif self.imm is not None:
                operands.append(str(self.imm))
        text = " ".join(parts) + " " + ", ".join(operands)
        if self.comment:
            text += f"  ; {self.comment}"
        return text.strip()


class TempAllocator:
    """Allocates fresh IR temporaries."""

    def __init__(self, first: int = FIRST_TEMP) -> None:
        self._next = first

    def fresh(self) -> int:
        reg = self._next
        self._next += 1
        return reg


@dataclass
class Expansion:
    """IR expansion of one decoded source instruction."""

    instrs: list[IRInstr] = field(default_factory=list)

    def __iter__(self) -> Iterator[IRInstr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)
