"""Per-block IR collection and memory-address translation.

Collects the IR expansions of a basic block into one stream with
uniquely renamed temporaries, and rewrites every memory access for the
target memory map (the consumers of Fig. 1's "finding base addresses"):

* accesses proven to be source *data* add the constant data-region
  delta held in the reserved register ``RES_DDELTA``;
* accesses proven to be *I/O* are redirected into the bus-bridge
  window (the paper's "replaced by instructions accessing the hardware
  of the bus model");
* statically unknown accesses get a run-time translation stub that
  tests the address against the I/O base and applies the right delta —
  at detail levels >= 2 the stub also adds the I/O bus cycles to the
  dynamic correction counter, since the static calculation could not
  account for them.

Register values keep *source* addresses everywhere; translation happens
only at the access itself, so pointer arithmetic and comparisons in the
translated program behave exactly as on the source processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.model import SourceArch, TargetArch
from repro.errors import TranslationError
from repro.refsim.decoded import DecodedInstr
from repro.translator.baseaddr import AccessMap, Region
from repro.translator.blocks import BasicBlock
from repro.translator.ir import (
    RES_CORR,
    RES_DDELTA,
    IRInstr,
    IROp,
    LOAD_OPS,
    Role,
    STORE_OPS,
    TempAllocator,
    is_temp,
)
from repro.utils.bits import u32


@dataclass
class BlockIR:
    """Translated IR of one basic block, terminator split off."""

    block: BasicBlock
    body: list[IRInstr] = field(default_factory=list)
    terminator: IRInstr | None = None
    #: (index into body, source address) for each source instruction,
    #: marking where its translated code begins (cache-analysis split)
    boundaries: list[tuple[int, int]] = field(default_factory=list)
    temps: TempAllocator = field(default_factory=TempAllocator)


def _rename_temps(instrs: list[IRInstr],
                  temps: TempAllocator) -> list[IRInstr]:
    """Give expansion-local temporaries block-unique numbers."""
    mapping: dict[int, int] = {}
    out: list[IRInstr] = []
    for instr in instrs:
        for reg in (*instr.reads(), *instr.writes()):
            if is_temp(reg) and reg not in mapping:
                mapping[reg] = temps.fresh()
        out.append(instr.renamed(mapping))
    return out


def _with_base(instr: IRInstr, new_base: int) -> IRInstr:
    """The memory access with its base register replaced."""
    if instr.op in STORE_OPS:
        return replace(instr, b=new_base)
    return replace(instr, a=new_base)


class AddressTranslator:
    """Rewrites the memory accesses of one program."""

    def __init__(self, source: SourceArch, target: TargetArch,
                 accesses: AccessMap, level: int) -> None:
        self.source = source
        self.target = target
        self.accesses = accesses
        self.level = level
        memory = source.memory
        self.data_delta = u32(target.data_base - memory.data_base)
        self.io_delta = u32(target.bridge_base - memory.io_base)
        self.io_base = memory.io_base

    def rewrite_block(self, block: BasicBlock) -> BlockIR:
        """Collect and rewrite the IR of *block*."""
        result = BlockIR(block=block)
        temps = result.temps
        for decoded in block.instrs:
            start = len(result.body)
            renamed = _rename_temps(list(decoded.expansion), temps)
            for index, instr in enumerate(renamed):
                if instr.op in LOAD_OPS or instr.op in STORE_OPS:
                    result.body.extend(
                        self._rewrite_access(decoded, index, instr, temps))
                else:
                    result.body.append(instr)
            result.boundaries.append((start, decoded.addr))
        if result.body and result.body[-1].op is IROp.B:
            result.terminator = result.body.pop()
        return result

    # -- access rewriting ----------------------------------------------------

    def _rewrite_access(self, decoded: DecodedInstr, index: int,
                        instr: IRInstr, temps: TempAllocator) -> list[IRInstr]:
        cls = self.accesses.get((decoded.addr, index))
        region = cls.region if cls is not None else Region.UNKNOWN
        base = instr.b if instr.op in STORE_OPS else instr.a
        meta = dict(src_addr=decoded.addr, role=Role.ADDR_FIXUP)
        if region is Region.DATA:
            xlated = temps.fresh()
            return [
                IRInstr(IROp.ADD, dst=xlated, a=base, b=RES_DDELTA,
                        comment="data address translation", **meta),
                _with_base(instr, xlated),
            ]
        if region is Region.IO:
            delta = temps.fresh()
            xlated = temps.fresh()
            return [
                IRInstr(IROp.MVK, dst=delta, imm=self.io_delta,
                        comment="io window delta", **meta),
                IRInstr(IROp.ADD, dst=xlated, a=base, b=delta,
                        comment="io address translation", **meta),
                replace(_with_base(instr, xlated), device=True),
            ]
        if region is Region.CODE:
            raise TranslationError(
                f"load/store at {decoded.addr:#010x} targets the code "
                f"region; translated programs cannot access source code "
                f"memory (put constant data in .data)")
        return self._unknown_stub(decoded, instr, base, temps, meta)

    def _unknown_stub(self, decoded: DecodedInstr, instr: IRInstr,
                      base: int, temps: TempAllocator,
                      meta: dict) -> list[IRInstr]:
        """Run-time data-vs-I/O discrimination and translation."""
        effective = base
        stub: list[IRInstr] = []
        offset = instr.imm or 0
        if offset:
            effective = temps.fresh()
            stub.append(IRInstr(IROp.ADD, dst=effective, a=base, imm=offset,
                                comment="effective address", **meta))
        io_base_reg = temps.fresh()
        is_io = temps.fresh()
        io_delta_reg = temps.fresh()
        xlated = temps.fresh()
        stub.extend([
            IRInstr(IROp.MVK, dst=io_base_reg, imm=self.io_base,
                    comment="io base", **meta),
            IRInstr(IROp.CMPGEU, dst=is_io, a=effective, b=io_base_reg,
                    comment="address >= io base?", **meta),
            IRInstr(IROp.MVK, dst=io_delta_reg, imm=self.io_delta,
                    comment="io window delta", **meta),
            IRInstr(IROp.ADD, dst=xlated, a=effective, b=io_delta_reg,
                    pred=is_io, pred_sense=True, **meta),
            IRInstr(IROp.ADD, dst=xlated, a=effective, b=RES_DDELTA,
                    pred=is_io, pred_sense=False, **meta),
        ])
        if self.level >= 2 and self.source.pipeline.io_access_cycles:
            stub.append(
                IRInstr(IROp.ADD, dst=RES_CORR, a=RES_CORR,
                        imm=self.source.pipeline.io_access_cycles,
                        pred=is_io, pred_sense=True,
                        src_addr=decoded.addr, role=Role.CORR_ADD,
                        comment="dynamic io cycle correction"))
        access = _with_base(instr, xlated)
        stub.append(replace(access, imm=0, device=True))
        return stub
