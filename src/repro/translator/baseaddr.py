"""Base-address analysis: finding out where loads and stores go.

Fig. 1 / Section 3: "the base addresses of load/store instructions have
to be found out, as far as this is statically possible … to change the
base addresses … to the new memory addresses of the target system …
[and] to find out which of these load/store instructions are I/O
instructions".

The analysis is an abstract interpretation of each instruction's IR
expansion over a small lattice:

* ``CONST(v)`` — the register provably holds the constant *v*;
* ``REGION(r)`` — the register holds *some* address inside region *r*
  (data or I/O): a region constant plus a statically unknown index,
  the common shape of array accesses;
* unknown (absent from the state).

States propagate through the CFG with a meet-over-paths worklist; call
boundaries conservatively clear the state (the callee may clobber any
register).  Every memory access is classified ``data`` / ``io`` /
``code`` / ``unknown``; unknown accesses get a run-time translation
stub (Section 3's "I/O instructions have to be replaced by instructions
accessing the hardware of the bus model" generalizes to a dynamic
check when the class is not static).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.model import MemoryMap
from repro.translator.blocks import BasicBlock, ControlFlowGraph
from repro.translator.ir import (
    ALU_OPS,
    COMPARE_OPS,
    IRInstr,
    IROp,
    LOAD_OPS,
    STORE_OPS,
    is_source_reg,
)
from repro.utils.bits import s32, u32


class Region(enum.Enum):
    DATA = "data"
    IO = "io"
    CODE = "code"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class AbsVal:
    """Abstract register value: a constant or a region."""

    region: Region
    const: int | None  # exact value when known

    @property
    def is_const(self) -> bool:
        return self.const is not None


def _classify_const(value: int, memory: MemoryMap) -> Region:
    if memory.is_data(value):
        return Region.DATA
    if memory.is_io(value):
        return Region.IO
    if memory.is_code(value):
        return Region.CODE
    return Region.UNKNOWN


def _const(value: int, memory: MemoryMap) -> AbsVal:
    value = u32(value)
    return AbsVal(_classify_const(value, memory), value)


#: an access classification: (region, constant address or None)
@dataclass(frozen=True)
class AccessClass:
    region: Region
    const_addr: int | None

    @property
    def is_io(self) -> bool:
        return self.region is Region.IO


#: key: (source instruction address, index of the IR op in the expansion)
AccessMap = dict[tuple[int, int], AccessClass]

State = dict[int, AbsVal]


def _meet(a: State, b: State) -> State:
    """Join two predecessor states (intersection of compatible facts)."""
    out: State = {}
    for reg, va in a.items():
        vb = b.get(reg)
        if vb is None:
            continue
        if va == vb:
            out[reg] = va
        elif va.region == vb.region and va.region is not Region.UNKNOWN:
            out[reg] = AbsVal(va.region, None)
    return out


class BaseAddressAnalysis:
    """Classifies every memory access in the program.

    *extra_entries* are blocks that may be reached with unknown register
    state (function symbols — potential indirect call targets).
    """

    def __init__(self, cfg: ControlFlowGraph, memory: MemoryMap,
                 extra_entries: set[int] | None = None) -> None:
        self.cfg = cfg
        self.memory = memory
        self.extra_entries = extra_entries or set()
        self.accesses: AccessMap = {}
        self._in_states: dict[int, State] = {}

    # -- abstract transfer ---------------------------------------------------

    def _eval(self, instr: IRInstr, state: State) -> AbsVal | None:
        """Abstract value produced by a non-memory IR op (or None)."""
        op = instr.op
        if op is IROp.MVK:
            return _const(instr.imm or 0, self.memory)

        def operand_a() -> AbsVal | None:
            return state.get(instr.a) if instr.a is not None else None

        def operand_b() -> AbsVal | None:
            if instr.b is not None:
                return state.get(instr.b)
            if instr.imm is not None:
                return _const(instr.imm, self.memory)
            return None

        if op is IROp.MV:
            return operand_a()
        if op in (IROp.ADD, IROp.SUB):
            va, vb = operand_a(), operand_b()
            if va is not None and va.is_const and vb is not None \
                    and vb.is_const:
                value = va.const + vb.const if op is IROp.ADD \
                    else va.const - vb.const
                return _const(value, self.memory)
            # region + offset stays in the region (in-bounds assumption,
            # the paper's pragmatic premise for array accesses)
            for vr, other in ((va, vb), (vb, va)) if op is IROp.ADD \
                    else ((va, vb),):
                if vr is not None and vr.region in (Region.DATA, Region.IO):
                    return AbsVal(vr.region, None)
            return None
        if op in ALU_OPS or op in COMPARE_OPS or op is IROp.ABS:
            va, vb = operand_a(), operand_b()
            if va is not None and va.is_const and \
                    (vb is None or vb.is_const) and op is not IROp.MPY:
                value = self._fold(op, va.const,
                                   vb.const if vb is not None else None)
                if value is not None:
                    return _const(value, self.memory)
            return None
        return None

    @staticmethod
    def _fold(op: IROp, a: int, b: int | None) -> int | None:
        b = b or 0
        if op is IROp.AND:
            return a & u32(b)
        if op is IROp.OR:
            return a | u32(b)
        if op is IROp.XOR:
            return a ^ u32(b)
        if op is IROp.SHL:
            return a << (b & 31)
        if op is IROp.SHRU:
            return u32(a) >> (b & 31)
        if op is IROp.SHRA:
            return s32(a) >> (b & 31)
        if op is IROp.ABS:
            return abs(s32(a))
        return None

    def _transfer_instr(self, decoded, state: State) -> None:
        """Run one source instruction's expansion over *state*."""
        addr = decoded.addr
        for index, instr in enumerate(decoded.expansion):
            if instr.op in LOAD_OPS or instr.op in STORE_OPS:
                base = instr.b if instr.op in STORE_OPS else instr.a
                offset = instr.imm or 0
                val = state.get(base)
                if val is None:
                    cls = AccessClass(Region.UNKNOWN, None)
                elif val.is_const:
                    target = u32(val.const + offset)
                    cls = AccessClass(_classify_const(target, self.memory),
                                      target)
                else:
                    cls = AccessClass(val.region, None)
                key = (addr, index)
                previous = self.accesses.get(key)
                cls = self._merge_access(previous, cls)
                self.accesses[key] = cls
                if instr.op in LOAD_OPS:
                    state.pop(instr.dst, None)
                continue
            if instr.op is IROp.B or instr.op is IROp.HALT \
                    or instr.op is IROp.NOP:
                continue
            if instr.dst is None:
                continue
            if instr.pred is not None:
                state.pop(instr.dst, None)
                continue
            value = self._eval(instr, state)
            if value is None:
                state.pop(instr.dst, None)
            else:
                state[instr.dst] = value

    @staticmethod
    def _merge_access(previous: AccessClass | None,
                      new: AccessClass) -> AccessClass:
        if previous is None or previous == new:
            return new
        if previous.region == new.region:
            return AccessClass(new.region, None)
        return AccessClass(Region.UNKNOWN, None)

    # -- dataflow -------------------------------------------------------------

    def run(self) -> AccessMap:
        """Fixpoint over the CFG; returns the access classification.

        The in-state lattice uses ``None`` for "not yet reached"; the
        meet of ``None`` with a state S is S.  Entry points with no
        known callers (the program entry, function symbols that may be
        reached indirectly) start from the empty state — every register
        unknown.
        """
        from repro.translator.ir import BranchKind

        # None = not yet reached (bottom); meet(None, S) = S.
        in_states: dict[int, State | None] = {
            addr: None for addr in self.cfg.order}
        worklist: list[int] = []
        for entry in {self.cfg.entry, *self.extra_entries}:
            if entry in self.cfg.blocks:
                in_states[entry] = {}
                worklist.append(entry)

        iterations = 0
        limit = 100 * max(1, len(self.cfg.blocks))
        while worklist:
            iterations += 1
            if iterations > limit:  # pragma: no cover - defensive
                break
            addr = worklist.pop(0)
            state = dict(in_states[addr] or {})
            block = self.cfg.blocks[addr]
            for decoded in block.instrs:
                self._transfer_instr(decoded, state)
            kind = block.kind
            out = {} if kind in (BranchKind.CALL,
                                 BranchKind.CALL_INDIRECT) else state
            for succ in block.successor_addrs():
                if succ not in self.cfg.blocks:
                    continue
                current = in_states.get(succ)
                merged = dict(out) if current is None else _meet(current, out)
                if current is None or merged != current:
                    in_states[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        self._in_states = {a: (s or {}) for a, s in in_states.items()}
        return self.accesses


def analyze(cfg: ControlFlowGraph, memory: MemoryMap,
            extra_entries: set[int] | None = None) -> AccessMap:
    """Run the base-address analysis over *cfg*."""
    return BaseAddressAnalysis(cfg, memory, extra_entries).run()
