"""Object-file decoding for the translator.

Fig. 1 of the paper: "using an appropriate class, the compiler reads
the object file … this object code will be decoded and translated into
an intermediate representation".  The decoded form is shared with the
reference simulators (:mod:`repro.refsim.decoded`), so translator and
reference agree on semantics by construction.
"""

from __future__ import annotations

from repro.errors import DecodingError
from repro.objfile.elf import ObjectFile
from repro.refsim.decoded import DecodedInstr, decode_instruction


def decode_object(obj: ObjectFile) -> list[DecodedInstr]:
    """Decode the executable section into an ordered instruction list."""
    text = obj.text()
    blob = text.data
    base = text.addr

    def fetch16(addr: int) -> int:
        off = addr - base
        if off < 0 or off + 2 > len(blob):
            raise DecodingError("fetch outside text section", addr)
        return int.from_bytes(blob[off:off + 2], "little")

    instrs: list[DecodedInstr] = []
    addr = base
    end = base + len(blob)
    while addr < end:
        decoded = decode_instruction(fetch16, addr)
        instrs.append(decoded)
        addr = decoded.next_addr
    return instrs
