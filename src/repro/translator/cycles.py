"""Static cycle calculation of a basic block (Section 3.3).

"In order to predict pipeline effects and the effects of super scalarity
statically, modeling the pipeline per basic block becomes necessary" —
the block's instructions are run through the *same*
:class:`~repro.refsim.timing.PipelineTimer` the reference ISS uses,
starting from a clean pipeline.  Statically classified I/O accesses add
their bus cycles; the block-ending branch contributes either its
statically assumed cost (detail level 1) or its guaranteed minimum plus
dynamic-correction deltas (levels 2+, Section 3.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.model import SourceArch
from repro.bpred.static_pred import static_cost
from repro.refsim.timing import PipelineTimer
from repro.translator.baseaddr import AccessMap, Region
from repro.translator.blocks import BasicBlock
from repro.translator.ir import BranchKind, LOAD_OPS, STORE_OPS


@dataclass(frozen=True)
class BranchCorrection:
    """Dynamic-correction deltas of a conditional block terminator.

    The generated code adds ``delta_taken`` to the correction counter
    when the branch is taken and ``delta_not_taken`` otherwise; one of
    the two is zero by construction (the minimum was charged
    statically).
    """

    delta_taken: int
    delta_not_taken: int

    @property
    def needed(self) -> bool:
        return self.delta_taken > 0 or self.delta_not_taken > 0


@dataclass(frozen=True)
class BlockCycles:
    """Result of the static cycle calculation for one block."""

    predicted: int  # cycles written to the synchronization device
    pipeline_cycles: int  # portion from the pipeline model
    branch_cycles: int  # portion from the terminator
    io_cycles: int  # portion from statically classified I/O accesses
    correction: BranchCorrection | None


def static_block_cycles(block: BasicBlock, accesses: AccessMap,
                        arch: SourceArch, level: int) -> BlockCycles:
    """Predict the source-processor cycles of *block* at *level*."""
    timer = PipelineTimer(arch.pipeline)
    io_count = 0
    for decoded in block.instrs:
        timer.issue(decoded.timed)
        for index, instr in enumerate(decoded.expansion):
            if instr.op in LOAD_OPS or instr.op in STORE_OPS:
                cls = accesses.get((decoded.addr, index))
                if cls is not None and cls.region is Region.IO:
                    io_count += 1
    io_cycles = io_count * arch.pipeline.io_access_cycles

    branch_cycles = 0
    correction: BranchCorrection | None = None
    term = block.terminator
    if term is not None:
        kind = term.branch_kind
        assume_predicted = level <= 1
        cost = static_cost(arch.branch, kind, term.predicted_taken,
                           assume_predicted)
        # The branch instruction already consumed its issue cycle in the
        # pipeline timer; charge only the cycles beyond that.
        branch_cycles = max(cost - 1, 0)
        if level >= 2 and kind in (BranchKind.COND, BranchKind.LOOP):
            model = arch.branch
            if kind is BranchKind.COND:
                base = model.min_conditional
                taken = model.conditional_cost(True, term.predicted_taken)
                not_taken = model.conditional_cost(False,
                                                   term.predicted_taken)
            else:
                base = model.min_loop
                taken = model.loop_cost(True)
                not_taken = model.loop_cost(False)
            correction = BranchCorrection(
                delta_taken=taken - base,
                delta_not_taken=not_taken - base,
            )

    predicted = timer.cycles + branch_cycles + io_cycles
    return BlockCycles(
        predicted=predicted,
        pipeline_cycles=timer.cycles,
        branch_cycles=branch_cycles,
        io_cycles=io_cycles,
        correction=correction,
    )
