"""Emission: scheduled regions to a finalized C6x program.

Lays out the prologue, every translated block (address order), and the
generated cache subroutine; resolves internal labels.  Return points of
the cache subroutine are materialized as *synthetic addresses* in a
reserved window (below the source code base), and registered in the
program's address map next to the real source block entries — the
core's indirect-branch handling then treats generated and translated
return targets uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.model import SourceArch, TargetArch
from repro.errors import TranslationError
from repro.isa.c6x.instructions import TargetInstr, TOp
from repro.isa.c6x.packets import BlockInfo, C6xProgram, ExecutePacket
from repro.objfile.elf import ObjectFile
from repro.utils.bits import s32

#: base of the synthetic address window for translator-internal labels.
SYNTH_BASE = 0x0100_0000


@dataclass
class EmittedRegion:
    """One scheduled region ready for layout."""

    label: str | None
    packets: list[ExecutePacket]
    block_addr: int | None = None
    n_source_instructions: int = 0
    predicted_cycles: int = 0


class ProgramEmitter:
    """Accumulates regions and produces the final program."""

    def __init__(self, source: SourceArch, target: TargetArch,
                 obj: ObjectFile) -> None:
        self.source = source
        self.target = target
        self.obj = obj
        self._regions: list[EmittedRegion] = []

    def add_region(self, region: EmittedRegion) -> None:
        self._regions.append(region)

    def finish(self, reg_binding: dict[int, int],
               spill_slots: dict[int, int]) -> C6xProgram:
        program = C6xProgram(target=self.target)
        program.reg_binding = dict(reg_binding)
        program.spill_slots = dict(spill_slots)

        for region in self._regions:
            index = len(program.packets)
            if region.label is not None:
                if region.label in program.labels:
                    raise TranslationError(
                        f"duplicate label {region.label!r}")
                program.labels[region.label] = index
            if region.block_addr is not None:
                program.block_at[index] = BlockInfo(
                    source_addr=region.block_addr,
                    n_instructions=region.n_source_instructions,
                    predicted_cycles=region.predicted_cycles,
                    entry_label=region.label or "",
                )
                program.addr_to_packet[region.block_addr] = index
            program.packets.extend(region.packets)
            for offset, packet in enumerate(region.packets):
                addrs = sorted({i.src_addr for i in packet.instrs
                                if i.src_addr is not None})
                if addrs:
                    program.line_map[index + offset] = addrs

        self._resolve_label_constants(program)
        self._build_data_image(program)
        return program.finalize()

    # ------------------------------------------------------------------

    def _resolve_label_constants(self, program: C6xProgram) -> None:
        """Fill MVKL/MVKH halves of label-valued constants."""
        for packet in program.packets:
            for instr in packet.instrs:
                if instr.target is None or instr.op is TOp.B:
                    continue
                packet_index = program.labels.get(instr.target)
                if packet_index is None:
                    raise TranslationError(
                        f"constant references undefined label "
                        f"{instr.target!r}")
                synth = SYNTH_BASE + packet_index
                program.addr_to_packet[synth] = packet_index
                if instr.op is TOp.MVKL:
                    low = synth & 0xFFFF
                    instr.imm = s32(low | (0xFFFF0000 if low & 0x8000 else 0))
                elif instr.op is TOp.MVKH:
                    instr.imm = synth >> 16
                else:
                    raise TranslationError(
                        f"label constant on unsupported op {instr.op}")

    def _build_data_image(self, program: C6xProgram) -> None:
        memory = self.source.memory
        delta = self.target.data_base - memory.data_base
        for section in self.obj.sections:
            if section.is_exec():
                continue
            if not memory.is_data(section.addr):
                raise TranslationError(
                    f"section {section.name!r} at {section.addr:#010x} is "
                    f"outside the source data region")
            program.data_image.append((section.addr + delta, section.data))
