"""Instruction-cache simulation code (Section 3.4.2).

Three pieces, exactly as the paper describes:

* **Saving cache data** — space at the end of the translated program
  holds, per set, one combined tag+valid word per way and one LRU word.
* **Cache analysis blocks** — each basic block is divided so that every
  analysis block covers the part of the block living in one cache line
  (attributed by the line of each source instruction's first halfword).
* **Cycle calculation code** — at the start of each analysis block the
  translated code calls a generated subroutine (Fig. 4) that probes the
  simulated cache, updates tag/valid/LRU state, and adds the miss
  penalty to the dynamic correction counter.  For large blocks the
  probe can instead be *inlined* branch-free into the block, making the
  subroutine call unnecessary and letting it schedule in parallel with
  program code (the paper's optimization; ablation B measures it).

The generated code implements the same structure as the reference
model in :mod:`repro.cache.icache`; an equivalence test drives both
with identical access streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.model import SourceArch, TargetArch
from repro.errors import TranslationError
from repro.translator.blocks import BasicBlock
from repro.translator.ir import (
    RES_CORR,
    RES_RETADDR,
    RES_TMP0,
    RES_TMP1,
    RES_TMP2,
    RES_TMP3,
    RES_TMP4,
    RES_TMP5,
    IRInstr,
    IROp,
    Role,
    TempAllocator,
)
from repro.utils.bits import log2_exact

CACHE_SUB_LABEL = "__cachesub"


@dataclass(frozen=True)
class CacheLayout:
    """Placement of the simulated-cache data in target memory."""

    base: int
    ways: int
    sets: int
    line_size: int
    miss_penalty: int

    @property
    def set_stride(self) -> int:
        """Bytes per set: one tag+valid word per way plus the LRU word."""
        return 4 * (self.ways + 1)

    @property
    def size(self) -> int:
        return self.sets * self.set_stride

    @property
    def lru_offset(self) -> int:
        return 4 * self.ways

    def set_addr(self, set_index: int) -> int:
        return self.base + set_index * self.set_stride


def make_layout(source: SourceArch, target: TargetArch) -> CacheLayout:
    ic = source.icache
    if ic.ways not in (1, 2):
        raise TranslationError(
            "generated cache-correction code supports 1- or 2-way caches "
            f"(the architecture describes {ic.ways} ways)")
    return CacheLayout(
        base=target.internal_base,
        ways=ic.ways,
        sets=ic.sets,
        line_size=ic.line_size,
        miss_penalty=ic.miss_penalty,
    )


@dataclass(frozen=True)
class CacheAnalysisBlock:
    """One part of a basic block that lies in a single cache line."""

    start_index: int  # first body-item index covered
    end_index: int  # one past the last body-item index
    line_addr: int
    tag: int
    set_index: int


def split_analysis_blocks(block: BasicBlock, boundaries: list[tuple[int, int]],
                          body_len: int,
                          layout: CacheLayout) -> list[CacheAnalysisBlock]:
    """Divide a block's body items into cache analysis blocks.

    *boundaries* maps body-item indices to source addresses (from
    :class:`repro.translator.rewrite.BlockIR`).
    """
    offset_bits = log2_exact(layout.line_size)
    index_bits = log2_exact(layout.sets)
    cabs: list[CacheAnalysisBlock] = []
    current_line: int | None = None
    start = 0
    for item_index, src_addr in boundaries:
        line = src_addr >> offset_bits
        if current_line is None:
            current_line = line
            start = item_index
        elif line != current_line:
            cabs.append(_make_cab(start, item_index, current_line,
                                  offset_bits, index_bits, layout))
            current_line = line
            start = item_index
    if current_line is not None:
        cabs.append(_make_cab(start, body_len, current_line,
                              offset_bits, index_bits, layout))
    return cabs


def _make_cab(start: int, end: int, line: int, offset_bits: int,
              index_bits: int, layout: CacheLayout) -> CacheAnalysisBlock:
    return CacheAnalysisBlock(
        start_index=start,
        end_index=end,
        line_addr=line << offset_bits,
        tag=line >> index_bits,
        set_index=line & (layout.sets - 1),
    )


def tagv_word(cab: CacheAnalysisBlock) -> int:
    """Combined tag+valid word ("to simplify the handling … they are
    combined into one word")."""
    return (cab.tag << 1) | 1


def call_sequence(cab: CacheAnalysisBlock, layout: CacheLayout,
                  return_label: str) -> tuple[list[IRInstr], IRInstr]:
    """Argument setup + branch for the subroutine variant.

    Returns ``(items, branch)``; the branch's delay slots naturally
    hold the argument moves after scheduling.
    """
    items = [
        IRInstr(IROp.MVK, dst=RES_RETADDR, label=return_label,
                role=Role.CACHE, comment="cache return point"),
        IRInstr(IROp.MVK, dst=RES_TMP0, imm=layout.set_addr(cab.set_index),
                role=Role.CACHE, comment=f"set {cab.set_index} data"),
        IRInstr(IROp.MVK, dst=RES_TMP1, imm=tagv_word(cab),
                role=Role.CACHE, comment=f"tag+valid {tagv_word(cab):#x}"),
    ]
    branch = IRInstr(IROp.B, label=CACHE_SUB_LABEL, role=Role.CACHE,
                     comment="cache analysis call")
    return items, branch


def subroutine_body(layout: CacheLayout) -> tuple[list[IRInstr], IRInstr]:
    """The generated cache-correction subroutine (Fig. 4).

    Input: ``RES_TMP0`` = set data address, ``RES_TMP1`` = tag+valid
    word.  Uses only reserved registers, so it can interrupt any block
    without clobbering program state.  Returns ``(body, indirect
    return branch)``.
    """
    corr = RES_CORR
    t0, t1 = RES_TMP0, RES_TMP1
    s0, s1, s2, s3 = RES_TMP2, RES_TMP3, RES_TMP4, RES_TMP5
    mk = Role.CACHE
    if layout.ways == 1:
        body = [
            IRInstr(IROp.LDW, dst=s0, a=t0, imm=0, role=mk,
                    comment="stored tag+valid"),
            IRInstr(IROp.CMPEQ, dst=s0, a=s0, b=t1, role=mk,
                    comment="hit?"),
            IRInstr(IROp.STW, a=t1, b=t0, imm=0, pred=s0, pred_sense=False,
                    role=mk, comment="miss: write new tag"),
            IRInstr(IROp.ADD, dst=corr, a=corr, imm=layout.miss_penalty,
                    pred=s0, pred_sense=False, role=mk,
                    comment="miss penalty"),
        ]
    else:  # 2-way
        body = [
            IRInstr(IROp.LDW, dst=s0, a=t0, imm=0, role=mk,
                    comment="way 0 tag+valid"),
            IRInstr(IROp.LDW, dst=s1, a=t0, imm=4, role=mk,
                    comment="way 1 tag+valid"),
            IRInstr(IROp.LDW, dst=s2, a=t0, imm=layout.lru_offset, role=mk,
                    comment="lru word (victim way index)"),
            IRInstr(IROp.CMPEQ, dst=s0, a=s0, b=t1, role=mk,
                    comment="hit way 0?"),
            IRInstr(IROp.CMPEQ, dst=s1, a=s1, b=t1, role=mk,
                    comment="hit way 1?"),
            IRInstr(IROp.OR, dst=s3, a=s0, b=s1, role=mk, comment="hit?"),
            # Miss path: replace the LRU way and charge the penalty.
            IRInstr(IROp.SHL, dst=s1, a=s2, imm=2, pred=s3, pred_sense=False,
                    role=mk, comment="victim byte offset"),
            IRInstr(IROp.ADD, dst=s1, a=t0, b=s1, pred=s3, pred_sense=False,
                    role=mk, comment="victim word address"),
            IRInstr(IROp.STW, a=t1, b=s1, imm=0, pred=s3, pred_sense=False,
                    role=mk, comment="write new tag+valid"),
            IRInstr(IROp.MVK, dst=s1, imm=1, pred=s3, pred_sense=False,
                    role=mk),
            IRInstr(IROp.SUB, dst=s0, a=s1, b=s2, pred=s3, pred_sense=False,
                    role=mk, comment="miss: new lru = 1 - victim"),
            # s0 now holds the new LRU for every outcome: on a hit it is
            # the hit-way-0 flag (hit way 0 -> way 1 becomes victim,
            # hit way 1 -> way 0); on a miss it was just overwritten.
            IRInstr(IROp.STW, a=s0, b=t0, imm=layout.lru_offset, role=mk,
                    comment="update lru"),
            IRInstr(IROp.ADD, dst=corr, a=corr, imm=layout.miss_penalty,
                    pred=s3, pred_sense=False, role=mk,
                    comment="miss penalty"),
        ]
    ret = IRInstr(IROp.B, a=RES_RETADDR, role=mk,
                  comment="return to analysis block")
    return body, ret


def inline_sequence(cab: CacheAnalysisBlock, layout: CacheLayout,
                    temps: TempAllocator) -> list[IRInstr]:
    """Branch-free inline variant for large blocks.

    Same state machine as :func:`subroutine_body`, but on fresh
    temporaries so it schedules in parallel with program code.
    """
    set_addr = layout.set_addr(cab.set_index)
    tagv = tagv_word(cab)
    mk = Role.CACHE
    base = temps.fresh()
    items = [IRInstr(IROp.MVK, dst=base, imm=set_addr, role=mk,
                     comment=f"set {cab.set_index} data")]
    tag_reg = temps.fresh()
    items.append(IRInstr(IROp.MVK, dst=tag_reg, imm=tagv, role=mk,
                         comment=f"tag+valid {tagv:#x}"))
    if layout.ways == 1:
        w0 = temps.fresh()
        items.extend([
            IRInstr(IROp.LDW, dst=w0, a=base, imm=0, role=mk),
            IRInstr(IROp.CMPEQ, dst=w0, a=w0, b=tag_reg, role=mk),
            IRInstr(IROp.STW, a=tag_reg, b=base, imm=0,
                    pred=w0, pred_sense=False, role=mk),
            IRInstr(IROp.ADD, dst=RES_CORR, a=RES_CORR,
                    imm=layout.miss_penalty, pred=w0, pred_sense=False,
                    role=mk, comment="miss penalty"),
        ])
        return items
    w0, w1, lru, hit, vaddr, one = (temps.fresh() for _ in range(6))
    items.extend([
        IRInstr(IROp.LDW, dst=w0, a=base, imm=0, role=mk),
        IRInstr(IROp.LDW, dst=w1, a=base, imm=4, role=mk),
        IRInstr(IROp.LDW, dst=lru, a=base, imm=layout.lru_offset, role=mk),
        IRInstr(IROp.CMPEQ, dst=w0, a=w0, b=tag_reg, role=mk),
        IRInstr(IROp.CMPEQ, dst=w1, a=w1, b=tag_reg, role=mk),
        IRInstr(IROp.OR, dst=hit, a=w0, b=w1, role=mk),
        IRInstr(IROp.SHL, dst=vaddr, a=lru, imm=2,
                pred=hit, pred_sense=False, role=mk),
        IRInstr(IROp.ADD, dst=vaddr, a=base, b=vaddr,
                pred=hit, pred_sense=False, role=mk),
        IRInstr(IROp.STW, a=tag_reg, b=vaddr, imm=0,
                pred=hit, pred_sense=False, role=mk),
        IRInstr(IROp.MVK, dst=one, imm=1, pred=hit, pred_sense=False,
                role=mk),
        IRInstr(IROp.SUB, dst=w0, a=one, b=lru,
                pred=hit, pred_sense=False, role=mk),
        IRInstr(IROp.STW, a=w0, b=base, imm=layout.lru_offset, role=mk),
        IRInstr(IROp.ADD, dst=RES_CORR, a=RES_CORR,
                imm=layout.miss_penalty, pred=hit, pred_sense=False,
                role=mk, comment="miss penalty"),
    ])
    return items
