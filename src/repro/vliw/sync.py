"""Pluggable lockstep synchronization barriers.

The round-robin lockstep loop that :class:`~repro.vliw.multicore.MultiCoreSoC`
historically ran inline is extracted here into a *synchronization
barrier*: an engine that advances a set of members (cores, or whole
SoCs) in lockstep rounds at target-cycle granularity.  Two
implementations share one round engine:

* :class:`LockstepBarrier` advances members serially in-process — it is
  bit-identical to the historical ``MultiCoreSoC.run()`` loop (same
  frontier computation, same rotating grant order, same error strings).
* :class:`ProcessBarrier` drives members that live in worker processes:
  each round it *posts* the advance command to every eligible member,
  then collects replies — members execute their quantum in parallel,
  while the round structure (and therefore every scheduling decision)
  stays identical to the serial barrier.

The round contract (established in PR 3 and preserved here for both
implementations — ``tests/test_sync_barrier.py`` pins it):

* every round starts at the **frontier** — the minimum cycle count over
  unfinished members — and grants only members strictly below
  ``frontier + quantum``;
* ``max_cycles`` is enforced at round granularity: a round whose base
  has reached the limit raises before granting anyone;
* a full round in which no granted member makes cycle progress (and
  none finishes) raises instead of spinning forever — shared-device
  stalls make "granted but stuck" a reachable state;
* grant priority rotates with the round base (member ``base % n``
  first), so bus arbitration interleaves fairly and deterministically.

Members are anything satisfying the :class:`SyncMember` protocol.  The
barrier itself knows nothing about buses, arbiters or fabrics; owners
hook per-round work in via *on_round* (called with the round base
before any grant — ``MultiCoreSoC`` wires its arbiter and global timer
here) and *on_round_end* (called after the round's grants —
``Cluster`` exchanges fabric messages here).
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import SimulationError


@runtime_checkable
class SyncMember(Protocol):
    """One lockstep participant (a core slot, or a whole SoC).

    ``cycles`` is the member's target-cycle count, ``finished`` whether
    it has halted/exited, and ``grants`` a counter the barrier
    increments once per scheduling grant.  ``advance`` runs the member
    until its cycle count reaches *until* (members may overshoot by
    their backend's atomic unit — one compiled region, or one inner
    lockstep quantum) and must itself raise
    :class:`~repro.errors.SimulationError` if it crosses *max_cycles*.
    """

    cycles: int
    finished: bool
    grants: int

    def advance(self, until: int, max_cycles: int) -> None: ...


class SyncBarrier:
    """Shared round engine of both barrier implementations.

    Subclasses implement :meth:`_advance_round`, which receives the
    round's granted members *in rotating grant order* and must advance
    each of them to *horizon*.  Everything else — frontier computation,
    round-level ``max_cycles``, the no-progress guard, the round hooks
    — lives here so the two implementations cannot drift.
    """

    def __init__(self, members: Sequence[SyncMember],
                 quantum: int = 1,
                 on_round: Callable[[int], None] | None = None,
                 on_round_end: Callable[[int, int], None] | None = None,
                 ) -> None:
        if not members:
            raise SimulationError("a sync barrier needs at least one member")
        if quantum < 1:
            raise SimulationError(
                f"lockstep quantum must be >= 1, got {quantum}")
        self.members = list(members)
        self.quantum = quantum
        self.on_round = on_round
        self.on_round_end = on_round_end
        self.rounds = 0

    @property
    def frontier(self) -> int:
        """Minimum cycle count over unfinished members (the global
        timebase); the maximum over all members once everyone halted."""
        running = [m.cycles for m in self.members if not m.finished]
        if running:
            return min(running)
        return max((m.cycles for m in self.members), default=0)

    @property
    def finished(self) -> bool:
        return all(m.finished for m in self.members)

    def run_until(self, until: int | None, max_cycles: int) -> None:
        """Advance lockstep rounds until every member finished, or the
        frontier reaches *until* (``None`` = run to completion).

        Raises :class:`SimulationError` when a round base reaches
        *max_cycles*, or when a full round passes without progress.
        """
        members = self.members
        n = len(members)
        running = [m for m in members if not m.finished]
        while running:
            base = min(m.cycles for m in running)
            if until is not None and base >= until:
                return
            if base >= max_cycles:
                raise SimulationError(
                    f"target cycle limit {max_cycles} exceeded")
            horizon = base + self.quantum
            self.rounds += 1
            if self.on_round is not None:
                self.on_round(base)
            # rotating grant priority: member (base % n) goes first
            granted = [members[(base + k) % n] for k in range(n)
                       if not members[(base + k) % n].finished
                       and members[(base + k) % n].cycles < horizon]
            for member in granted:
                member.grants += 1
            before = [(m.cycles, m.finished) for m in granted]
            self._advance_round(granted, horizon, max_cycles)
            progressed = any(
                m.cycles > cyc or m.finished != fin
                for m, (cyc, fin) in zip(granted, before))
            if self.on_round_end is not None:
                self.on_round_end(base, horizon)
            if not progressed:
                raise SimulationError(
                    f"lockstep scheduler livelock: no core advanced past "
                    f"cycle {base} in a full arbitration round")
            running = [m for m in members if not m.finished]

    def _advance_round(self, granted: Sequence[SyncMember],
                       horizon: int, max_cycles: int) -> None:
        raise NotImplementedError


class LockstepBarrier(SyncBarrier):
    """In-process barrier: members advance serially in grant order.

    With ``quantum=1`` this reproduces the historical
    ``MultiCoreSoC.run()`` loop bit for bit — the serial order is the
    rotating grant order, so shared-bus transactions interleave exactly
    as before the extraction.
    """

    def _advance_round(self, granted: Sequence[SyncMember],
                       horizon: int, max_cycles: int) -> None:
        for member in granted:
            member.advance(horizon, max_cycles)


@runtime_checkable
class AsyncSyncMember(SyncMember, Protocol):
    """A member whose advance can be posted and awaited separately."""

    def post_advance(self, until: int, max_cycles: int) -> None: ...

    def wait_advance(self) -> None: ...


class ProcessBarrier(SyncBarrier):
    """Cross-process barrier: grants of one round execute in parallel.

    Members must additionally implement :class:`AsyncSyncMember`:
    ``post_advance`` ships the quantum command to the member's worker
    without blocking, ``wait_advance`` blocks until the worker's reply
    updates the member's cached ``cycles``/``finished`` state.  Replies
    are collected in grant order, so the parent-side view of a round is
    deterministic regardless of worker timing.

    Round-level safety is enforced *in the parent*: the ``max_cycles``
    and no-progress raises of :meth:`SyncBarrier.run_until` fire here
    from the workers' reported frontiers, independent of (and in
    addition to) each worker's own in-quantum limit check.
    """

    def _advance_round(self, granted: Sequence[SyncMember],
                       horizon: int, max_cycles: int) -> None:
        for member in granted:
            member.post_advance(horizon, max_cycles)
        for member in granted:
            member.wait_advance()
