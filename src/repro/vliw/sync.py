"""Pluggable lockstep synchronization barriers.

The round-robin lockstep loop that :class:`~repro.vliw.multicore.MultiCoreSoC`
historically ran inline is extracted here into a *synchronization
barrier*: an engine that advances a set of members (cores, or whole
SoCs) in lockstep rounds at target-cycle granularity.  Two
implementations share one round engine:

* :class:`LockstepBarrier` advances members serially in-process — it is
  bit-identical to the historical ``MultiCoreSoC.run()`` loop (same
  frontier computation, same rotating grant order, same error strings).
* :class:`AdaptiveLockstepBarrier` keeps normal rounds bit-identical to
  a ``quantum=1`` :class:`LockstepBarrier` but inserts *run-ahead
  rounds* whenever every running member is provably inside private-only
  code (see :mod:`repro.vliw.codegen.footprint`): the window spans the
  minimum safe bound across members, so compiled cores execute whole
  region chains between barrier crossings without any shared-segment
  observable changing.
* :class:`ProcessBarrier` drives members that live in worker processes:
  each round it *posts* the advance command to every eligible member,
  then collects replies — members execute their quantum in parallel,
  while the round structure (and therefore every scheduling decision)
  stays identical to the serial barrier.

The round contract (established in PR 3 and preserved here for both
implementations — ``tests/test_sync_barrier.py`` pins it):

* every round starts at the **frontier** — the minimum cycle count over
  unfinished members — and grants only members strictly below
  ``frontier + quantum``;
* ``max_cycles`` is enforced at round granularity: a round whose base
  has reached the limit raises before granting anyone;
* a full round in which no granted member makes cycle progress (and
  none finishes) raises instead of spinning forever — shared-device
  stalls make "granted but stuck" a reachable state;
* grant priority rotates with the round base (member ``base % n``
  first), so bus arbitration interleaves fairly and deterministically.

Members are anything satisfying the :class:`SyncMember` protocol.  The
barrier itself knows nothing about buses, arbiters or fabrics; owners
hook per-round work in via *on_round* (called with the round base
before any grant — ``MultiCoreSoC`` wires its arbiter and global timer
here) and *on_round_end* (called after the round's grants —
``Cluster`` exchanges fabric messages here).
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import SimulationError


@runtime_checkable
class SyncMember(Protocol):
    """One lockstep participant (a core slot, or a whole SoC).

    ``cycles`` is the member's target-cycle count, ``finished`` whether
    it has halted/exited, and ``grants`` a counter the barrier
    increments once per scheduling grant.  ``advance`` runs the member
    until its cycle count reaches *until* (members may overshoot by
    their backend's atomic unit — one compiled region, or one inner
    lockstep quantum) and must itself raise
    :class:`~repro.errors.SimulationError` if it crosses *max_cycles*.
    """

    cycles: int
    finished: bool
    grants: int

    def advance(self, until: int, max_cycles: int) -> None: ...


class SyncBarrier:
    """Shared round engine of both barrier implementations.

    Subclasses implement :meth:`_advance_round`, which receives the
    round's granted members *in rotating grant order* and must advance
    each of them to *horizon*.  Everything else — frontier computation,
    round-level ``max_cycles``, the no-progress guard, the round hooks
    — lives here so the two implementations cannot drift.
    """

    def __init__(self, members: Sequence[SyncMember],
                 quantum: int = 1,
                 on_round: Callable[[int], None] | None = None,
                 on_round_end: Callable[[int, int], None] | None = None,
                 ) -> None:
        if not members:
            raise SimulationError("a sync barrier needs at least one member")
        if quantum < 1:
            raise SimulationError(
                f"lockstep quantum must be >= 1, got {quantum}")
        self.members = list(members)
        self.quantum = quantum
        self.on_round = on_round
        self.on_round_end = on_round_end
        self.rounds = 0

    @property
    def frontier(self) -> int:
        """Minimum cycle count over unfinished members (the global
        timebase); the maximum over all members once everyone halted."""
        running = [m.cycles for m in self.members if not m.finished]
        if running:
            return min(running)
        return max((m.cycles for m in self.members), default=0)

    @property
    def finished(self) -> bool:
        return all(m.finished for m in self.members)

    def run_until(self, until: int | None, max_cycles: int) -> None:
        """Advance lockstep rounds until every member finished, or the
        frontier reaches *until* (``None`` = run to completion).

        Raises :class:`SimulationError` when a round base reaches
        *max_cycles*, or when a full round passes without progress.
        """
        members = self.members
        n = len(members)
        running = [m for m in members if not m.finished]
        while running:
            base = min(m.cycles for m in running)
            if until is not None and base >= until:
                return
            if base >= max_cycles:
                raise SimulationError(
                    f"target cycle limit {max_cycles} exceeded")
            horizon, runahead = self._plan_round(base, running,
                                                 until, max_cycles)
            self.rounds += 1
            if self.on_round is not None:
                self.on_round(base)
            # rotating grant priority: member (base % n) goes first
            granted = [members[(base + k) % n] for k in range(n)
                       if not members[(base + k) % n].finished
                       and members[(base + k) % n].cycles < horizon]
            for member in granted:
                member.grants += 1
            before = [(m.cycles, m.finished) for m in granted]
            self._advance_round(granted, horizon, max_cycles, runahead)
            progressed = any(
                m.cycles > cyc or m.finished != fin
                for m, (cyc, fin) in zip(granted, before))
            if self.on_round_end is not None:
                self.on_round_end(base, horizon)
            if not progressed:
                if runahead:
                    # a run-ahead window everyone deferred out of (all
                    # granted members needed the interpreter) is not a
                    # livelock: fall back to a normal round at the same
                    # base, which is guaranteed to step somebody
                    self._runahead_stalled(base)
                else:
                    raise SimulationError(
                        f"lockstep scheduler livelock: no core advanced "
                        f"past cycle {base} in a full arbitration round")
            running = [m for m in members if not m.finished]

    def _plan_round(self, base: int, running: Sequence[SyncMember],
                    until: int | None, max_cycles: int
                    ) -> tuple[int, bool]:
        """Pick this round's ``(horizon, is_run_ahead)``.

        The base implementation is the fixed-quantum window the round
        contract documents; :class:`AdaptiveLockstepBarrier` overrides
        it to grant provably-private run-ahead windows.
        """
        return base + self.quantum, False

    def _runahead_stalled(self, base: int) -> None:
        """Hook: a run-ahead round made no progress (adaptive only)."""

    def _advance_round(self, granted: Sequence[SyncMember],
                       horizon: int, max_cycles: int,
                       runahead: bool = False) -> None:
        raise NotImplementedError


class LockstepBarrier(SyncBarrier):
    """In-process barrier: members advance serially in grant order.

    With ``quantum=1`` this reproduces the historical
    ``MultiCoreSoC.run()`` loop bit for bit — the serial order is the
    rotating grant order, so shared-bus transactions interleave exactly
    as before the extraction.
    """

    def _advance_round(self, granted: Sequence[SyncMember],
                       horizon: int, max_cycles: int,
                       runahead: bool = False) -> None:
        for member in granted:
            member.advance(horizon, max_cycles)


@runtime_checkable
class AdaptiveSyncMember(SyncMember, Protocol):
    """A member that can participate in adaptive run-ahead windows.

    ``private_bound`` returns a conservative lower bound, in target
    cycles, on how far the member can advance from its current state
    before its first *possibly-shared* access (0 when the very next
    packet may touch the shared segment — or whenever the member cannot
    prove anything, e.g. mid-branch).  ``advance_private`` advances the
    member like ``advance`` but must never execute a shared access:
    the member stops early — at its own first possibly-shared access,
    at work only the interpreter can run, or wherever its dynamic
    checks cut in — and the deferred work executes in a later normal
    round once the frontier catches up.
    """

    def private_bound(self) -> int: ...

    def advance_private(self, until: int, max_cycles: int) -> None: ...


class AdaptiveLockstepBarrier(LockstepBarrier):
    """Lockstep barrier with provably-private run-ahead windows.

    Round planning: unless some member sitting exactly at the round
    base reports a private bound of zero (its very next packet may
    touch the shared segment), the round becomes a **run-ahead
    round**: every member advances through ``advance_private`` with
    the horizon thrown wide open (the ``until``/``max_cycles`` cap),
    each stopping *dynamically* at its own first possibly-shared
    access — whole compiled/native region chains, even whole compute
    loops, execute inside one window.  The static bounds only gate
    window *initiation* (so a window always makes progress); safety is
    dynamic, which is what lets the window exceed the static
    shortest-path bound — important, because the static bound is tiny
    inside any loop whose exit path leads to a shared access.
    Otherwise the round is a **normal round**, bit-identical to a
    ``quantum=1`` :class:`LockstepBarrier` round: same frontier, same
    rotating grant order, same arbitration round identity — and since
    a member whose next access may be shared always reports bound 0,
    every shared-segment access still executes in a normal round at a
    base equal to the accessing core's own cycle count, exactly as
    under ``quantum=1``.  Private execution is core-local and schedule
    independent, so how far a member ran ahead is unobservable.

    A run-ahead round in which nobody progresses (every granted member
    deferred to the interpreter) forces the next round to be a normal
    round at the same base instead of raising the livelock error; the
    livelock guard keeps firing for normal rounds.
    """

    def __init__(self, members: Sequence[SyncMember],
                 on_round: Callable[[int], None] | None = None,
                 on_round_end: Callable[[int, int], None] | None = None,
                 ) -> None:
        super().__init__(members, quantum=1, on_round=on_round,
                         on_round_end=on_round_end)
        self.runahead_rounds = 0
        self.runahead_cycles = 0
        self._force_normal = False
        # the plan gate runs once per round: resolve the bound methods
        # up front (None disables run-ahead entirely — every member
        # must be adaptive for a window to be sound)
        bound_fns = [getattr(m, "private_bound", None) for m in members]
        self._bound_fns: dict[int, Callable[[], int]] | None
        if any(fn is None for fn in bound_fns):
            self._bound_fns = None
        else:
            self._bound_fns = {id(m): fn
                               for m, fn in zip(members, bound_fns)}
        # gate back-off: during long all-at-the-frontier phases (cores
        # trading shared-device polls) the gate fails every round, and
        # its cost — one bound computation per frontier member — adds
        # up; after a failure the gate sleeps until the frontier moves
        # a doubling number of *cycles* (normal rounds are always safe,
        # so re-checking late only delays a window by a bounded number
        # of cycles, it never breaks one)
        self._gate_resume = 0
        self._gate_backoff = 1

    def _plan_round(self, base: int, running: Sequence[SyncMember],
                    until: int | None, max_cycles: int
                    ) -> tuple[int, bool]:
        bounds = self._bound_fns
        if bounds is None:
            return base + 1, False
        if self._force_normal:
            self._force_normal = False
            return base + 1, False
        if base < self._gate_resume:
            return base + 1, False
        for member in running:
            # the gate only has to guarantee progress (safety inside
            # the window is dynamic): it fails exactly when a member
            # sitting at the frontier may touch the shared segment with
            # its very next packet — members past the base pass
            # whatever their bound is, and only frontier members pay
            # for a bound computation
            if member.cycles == base and bounds[id(member)]() == 0:
                self._gate_resume = base + self._gate_backoff
                self._gate_backoff = min(self._gate_backoff * 2, 8)
                return base + 1, False
        self._gate_backoff = 1
        # no frontier member can issue a shared access with its very
        # next packet: open the window wide — each member stops
        # dynamically at its own first possibly-shared access, and the
        # frontier bounds guarantee the window makes progress
        self.runahead_rounds += 1
        horizon = max_cycles if until is None else min(until, max_cycles)
        return horizon, True

    def _runahead_stalled(self, base: int) -> None:
        self._force_normal = True

    def _advance_round(self, granted: Sequence[SyncMember],
                       horizon: int, max_cycles: int,
                       runahead: bool = False) -> None:
        if not runahead:
            super()._advance_round(granted, horizon, max_cycles)
            return
        for member in granted:
            before = member.cycles
            member.advance_private(horizon, max_cycles)
            self.runahead_cycles += member.cycles - before


@runtime_checkable
class AsyncSyncMember(SyncMember, Protocol):
    """A member whose advance can be posted and awaited separately."""

    def post_advance(self, until: int, max_cycles: int) -> None: ...

    def wait_advance(self) -> None: ...


class ProcessBarrier(SyncBarrier):
    """Cross-process barrier: grants of one round execute in parallel.

    Members must additionally implement :class:`AsyncSyncMember`:
    ``post_advance`` ships the quantum command to the member's worker
    without blocking, ``wait_advance`` blocks until the worker's reply
    updates the member's cached ``cycles``/``finished`` state.  Replies
    are collected in grant order, so the parent-side view of a round is
    deterministic regardless of worker timing.

    Round-level safety is enforced *in the parent*: the ``max_cycles``
    and no-progress raises of :meth:`SyncBarrier.run_until` fire here
    from the workers' reported frontiers, independent of (and in
    addition to) each worker's own in-quantum limit check.
    """

    def _advance_round(self, granted: Sequence[SyncMember],
                       horizon: int, max_cycles: int,
                       runahead: bool = False) -> None:
        for member in granted:
            member.post_advance(horizon, max_cycles)
        for member in granted:
            member.wait_advance()
