"""Bus interface between the VLIW core and the SoC bus.

The FPGAs of the prototyping platform contain "the bus interface that
adapts the bus of the VLIW processor to the SoC bus of the emulated
processor core".  Accesses into the bridge window are forwarded to the
SoC bus model, stamped with the *emulated* cycle count produced by the
synchronization device — so attached hardware observes I/O at emulated
time, not at raw C6x time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.bus import SocBus
from repro.vliw.syncdev import SyncDevice


@dataclass
class BridgeStats:
    reads: int = 0
    writes: int = 0
    stall_cycles: int = 0


class BusBridge:
    """Forwards bridge-window accesses onto the SoC bus."""

    def __init__(self, bus: SocBus, sync: SyncDevice,
                 access_stall: int = 4) -> None:
        self.bus = bus
        self.sync = sync
        self.access_stall = access_stall
        self.stats = BridgeStats()

    def read(self, offset: int, size: int) -> int:
        self.stats.reads += 1
        self.stats.stall_cycles += self.access_stall
        return self.bus.read(offset, size, self.sync.emulated_cycles)

    def write(self, offset: int, value: int, size: int) -> None:
        self.stats.writes += 1
        self.stats.stall_cycles += self.access_stall
        self.bus.write(offset, value, size, self.sync.emulated_cycles)
