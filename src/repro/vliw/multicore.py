"""Multi-core SoC model: N VLIW cores against one SoC bus.

Scales the prototyping platform of :mod:`repro.vliw.platform` to
several emulated cores, following the multi-core full-system
acceleration line of work (Guo & Mullins; Bosbach et al.): every core
is a full :class:`~repro.vliw.core.C6xCore` with its own
synchronization device (all cores share one sync generation *rate*, so
the emulated SoC clocks advance in the same ratio) and its own bus
bridge, but all bridges decode onto a **single shared**
:class:`~repro.soc.bus.SocBus`.

Address partitioning
    Each core owns an I/O partition of ``CORE_IO_STRIDE`` bytes on the
    shared bus, holding its own instances of the standard peripherals
    (UART, cycle timer, exit device, core-id register, scratch RAM) at
    the standard offsets.  A core's bridge adds the partition base on
    the way out, so translated programs are completely unaware of the
    partitioning — the same program binary runs unmodified on any core.

The shared-device segment
    Above the partitions, at :data:`~repro.soc.bus.SHARED_IO_BASE`,
    lives the :class:`~repro.soc.bus.SharedIoMap` segment: a shared
    :class:`~repro.soc.devices.ScratchRam`, a
    :class:`~repro.soc.devices.GlobalCycleTimer` (the SoC-wide
    timebase) and an inter-core :class:`~repro.soc.devices.Mailbox`.
    Shared-segment addresses are **not** relocated per core — every
    core decodes them onto the same device instances, which is what
    lets programs on different cores communicate, and contend.

Lockstep and arbitration
    Cores tick in lockstep at target-cycle granularity: every
    scheduling round advances only the cores at the minimum cycle
    count, by (at least) one cycle.  When several cores are eligible in
    the same round — simultaneous bus masters, in hardware terms — the
    shared bus grants them in **round-robin** order: grant priority
    rotates with the round's base cycle (core ``min_cycle % n`` first),
    so the global transaction trace interleaves fairly and
    deterministically.  Packet-compiled cores advance one compiled
    region per grant (regions are the backend's atomic unit), so their
    lockstep skew is bounded by the region length cap.  Every
    shared-segment access executes while its core sits exactly at the
    global minimum cycle: under the default adaptive quantum compiled
    regions perform the access **inline** through the arbitrated core
    port at region entry (bailing to the interpreter only for accesses
    discovered mid-region, which re-enter as region entries on the next
    round), and under an integer quantum they bail every shared access
    (see :mod:`repro.vliw.compiled`).

Adaptive run-ahead
    ``quantum="adaptive"`` (the default) keeps the quantum-1 round
    structure for every round that could touch the shared segment, but
    when **every** running core is provably inside private-only code —
    per the static :mod:`repro.vliw.codegen.footprint` analysis — the
    :class:`~repro.vliw.sync.AdaptiveLockstepBarrier` grants one
    run-ahead window spanning the minimum safe bound across cores, and
    whole compiled/native region chains execute between barrier
    crossings.  Windows never contain a shared access (enforced
    dynamically: inline entries bail while the window flag is up,
    mid-region guards bail on shared addresses, interpreter hand-offs
    are deferred to the next normal round), and everything that does
    execute inside a window is core-local and schedule independent —
    so every observable is bit-identical to ``quantum=1``, which
    ``tests/test_lockstep_adaptive.py`` locks down.

Contention
    Within one arbitration round, the first core to reach a shared
    device owns it; every later access to the same device by a
    *different* core in the same round is a lost arbitration — the
    loser is charged a deterministic ``contention_stall`` of target
    cycles (recorded in ``CoreStats.contention_stall_cycles`` and as a
    ``'c'`` marker in both the global and the per-core bus trace).
    Because grant order within a round is the rotating round-robin
    priority, "first to reach" *is* the round-robin winner.
    Partition-local traffic never arbitrates, so non-sharing programs
    pay nothing and see nothing.

Determinism and the differential contract
    Arbitration reorders only the *global* trace.  Per-core observables
    are untouched by scheduling for partition-local traffic: for
    non-sharing programs each core's
    :class:`~repro.vliw.platform.PlatformResult` is **bit identical**
    to the same program run alone on a single-core
    :class:`~repro.vliw.platform.PrototypingPlatform` — the property
    ``tests/test_multicore_differential.py`` locks down for every
    registry program, detail level and backend mix.  Sharing programs
    contend, so single-core equality no longer applies to them; their
    contract is instead *backend independence*: because shared accesses
    always execute at the global minimum cycle under the round's
    rotating arbitration — interpreter-stepped or inline through the
    same arbitrated port — the shared-access interleaving, and with it
    mailbox contents, contention stalls and every observable, is
    identical across interp/compiled/mixed backend assignments
    (``tests/test_contention_differential.py``) and across
    ``quantum="adaptive"`` vs ``quantum=1``
    (``tests/test_lockstep_adaptive.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.model import SourceArch, default_source_arch
from repro.errors import SimulationError
from repro.isa.c6x.packets import C6xProgram
from repro.soc.bus import (
    BusAccess,
    BusMonitor,
    IoMap,
    SharedIoMap,
    SocBus,
)
from repro.soc.devices import (
    CoreIdDevice,
    CycleTimer,
    ExitDevice,
    GlobalCycleTimer,
    Mailbox,
    ScratchRam,
    Uart,
)
from repro.vliw.bridge import BusBridge
from repro.vliw.core import C6xCore
from repro.vliw.fabric import FabricEndpoint
from repro.vliw.platform import (
    PlatformResult,
    PrototypingPlatform,
    collect_platform_result,
)
from repro.vliw.codegen.footprint import shared_footprint
from repro.vliw.sync import AdaptiveLockstepBarrier, LockstepBarrier
from repro.vliw.syncdev import SyncDevice

#: size of each core's I/O partition on the shared bus.  The standard
#: peripheral set (uart 0x00, timer 0x10, exit 0x20, coreid 0x30,
#: scratch 0x40+64) ends at 0x80; one stride per core keeps partitions
#: disjoint.  Partitions live below the shared segment at 0x1000, so
#: the stride bounds the SoC at MAX_CORES cores.
CORE_IO_STRIDE = 0x100

#: largest supported core count: partitions must stay below the
#: shared-device segment, and mailbox slots are MAX_CORES x MAX_CORES.
MAX_CORES = Mailbox.MAX_CORES

#: default target-cycle penalty charged to the round-robin loser of a
#: shared-device arbitration round.
CONTENTION_STALL = 3


class SharedBusArbiter:
    """Round-scoped ownership tracking for the shared-device segment.

    One arbitration round corresponds to one lockstep scheduling round
    of :class:`MultiCoreSoC` (identified by its global base cycle,
    which strictly increases round over round).  The first core to
    access a shared device window in a round claims it; later accesses
    by other cores in the same round lose the arbitration and are
    charged :attr:`contention_stall` target cycles.
    """

    def __init__(self, contention_stall: int = CONTENTION_STALL) -> None:
        if contention_stall < 0:
            raise SimulationError("contention stall must be >= 0")
        self.contention_stall = contention_stall
        self.round_id = 0
        #: device window name -> (round_id, owning core) of last claim
        self._owners: dict[str, tuple[int, int]] = {}
        self.conflicts = 0

    def begin_round(self, round_id: int) -> None:
        self.round_id = round_id

    def access(self, window: str, core: int) -> int:
        """Arbitrate one shared access; returns the stall to charge."""
        owner = self._owners.get(window)
        if owner is not None and owner[0] == self.round_id:
            if owner[1] == core:
                return 0  # a core never contends with itself
            self.conflicts += 1
            return self.contention_stall
        self._owners[window] = (self.round_id, core)
        return 0


class CorePort:
    """One core's window onto the shared SoC bus.

    Quacks like :class:`~repro.soc.bus.SocBus` for the core's
    :class:`~repro.vliw.bridge.BusBridge` and for result collection:
    ``read``/``write`` remap the core's partition-local address onto
    the shared bus, and a private monitor re-records every transaction
    with its *local* address — so the per-core trace is directly
    comparable with a single-core platform's bus trace, while the
    shared bus monitor keeps the globally arbitrated view.

    Addresses at or above the shared segment base pass through
    **unrelocated** (all cores see the same shared devices there) and
    are arbitrated: losing a round costs the core
    ``contention_stall`` target cycles, charged before the transfer.
    """

    def __init__(self, shared: SocBus, index: int, base: int,
                 arbiter: SharedBusArbiter | None = None) -> None:
        self.shared = shared
        self.index = index
        self.base = base
        self.arbiter = arbiter
        # the segment layout is deliberately NOT configurable: compiled
        # regions bake the default SharedIoMap window into their
        # shared-segment bail guard (repro.vliw.compiled), so a port
        # with a different map would break backend independence
        self.shared_map = SharedIoMap()
        self.monitor = BusMonitor()
        self.core: C6xCore | None = None  # bound by the owning slot

    def bind(self, core: C6xCore) -> None:
        """Attach the core whose clock absorbs contention stalls."""
        self.core = core

    def _global_addr(self, addr: int) -> tuple[int, bool]:
        if self.shared_map.base <= addr < self.shared_map.end:
            return addr, True
        return self.base + addr, False

    def _arbitrate(self, global_addr: int, cycle: int) -> None:
        if self.arbiter is None:
            return
        window = self.shared.mapping_name(global_addr)
        stall = self.arbiter.access(window, self.index)
        if not stall:
            return
        core = self.core
        if core is not None:
            core._stall_cycles += stall
            core.stats.contention_stall_cycles += stall
        marker = BusAccess(cycle, "c", global_addr, self.index, stall)
        self.shared.monitor.record(marker)
        self.monitor.record(BusAccess(
            cycle, "c", global_addr, self.index, stall))

    def read(self, addr: int, size: int, cycle: int) -> int:
        global_addr, is_shared = self._global_addr(addr)
        if is_shared:
            self._arbitrate(global_addr, cycle)
        value = self.shared.read(global_addr, size, cycle)
        self.monitor.record(BusAccess(cycle, "r", addr, value, size))
        return value

    def write(self, addr: int, value: int, size: int, cycle: int) -> None:
        global_addr, is_shared = self._global_addr(addr)
        if is_shared:
            self._arbitrate(global_addr, cycle)
        self.shared.write(global_addr, value, size, cycle)
        self.monitor.record(BusAccess(cycle, "w", addr, value, size))

    def device(self, name: str):
        return self.shared.device(f"{name}#{self.index}")

    def shared_device(self, name: str):
        """Look up a device of the shared segment by its global name."""
        return self.shared.device(name)


@dataclass
class MultiCorePlatformResult:
    """Observables of one multi-core platform execution."""

    per_core: list[PlatformResult]
    #: globally arbitrated transaction trace of the shared bus
    #: (addresses are partition-global: ``core_index * CORE_IO_STRIDE``
    #: plus the device offset; shared-segment addresses are absolute;
    #: ``'c'`` entries mark lost shared-device arbitrations)
    bus_trace: list[BusAccess]
    #: scheduling grants each core received from the round-robin
    #: arbiter (one grant = one lockstep advance)
    grants: list[int] = field(default_factory=list)
    #: shared-device arbitration conflicts observed SoC-wide
    contention_conflicts: int = 0
    #: lockstep scheduling profile (:meth:`MultiCoreSoC.lockstep_stats`)
    #: — run-ahead windows, inline shared calls, interpreter bails.
    #: Scheduling metadata, deliberately **not** part of
    #: :meth:`observables`: the differential contract is that
    #: observables match across quantum modes while this differs.
    lockstep: dict = field(default_factory=dict)

    @property
    def n_cores(self) -> int:
        return len(self.per_core)

    @property
    def target_cycles(self) -> int:
        """Platform runtime: the slowest core's cycle count."""
        return max((r.target_cycles for r in self.per_core), default=0)

    @property
    def contention_stall_cycles(self) -> list[int]:
        """Per-core cycles lost to shared-device contention."""
        return [r.core_stats.contention_stall_cycles for r in self.per_core]

    def shared_trace(self) -> list[BusAccess]:
        """The shared-segment slice of the global trace."""
        shared_map = SharedIoMap()
        return [a for a in self.bus_trace
                if shared_map.base <= a.addr < shared_map.end]

    def observables(self) -> list[dict]:
        """Per-core observable dicts, comparable field by field with N
        independent single-core :meth:`PlatformResult.observables`."""
        return [result.observables() for result in self.per_core]


class _CoreSlot:
    """One core's full vertical slice of the multi-core platform."""

    def __init__(self, index: int, program: C6xProgram, backend: str,
                 shared_bus: SocBus, n_cores: int,
                 arbiter: SharedBusArbiter,
                 sync_rate: float, bridge_stall: int,
                 sync_access_stall: int, strict: bool,
                 tier=None, inline_shared: bool = True) -> None:
        from repro.vliw.codegen import resolve_backend

        try:
            spec = resolve_backend(backend)
        except SimulationError as exc:
            raise SimulationError(f"{exc} (core {index})") from None
        self.index = index
        self.backend = backend
        base = index * CORE_IO_STRIDE
        # the same peripheral set at the same offsets as the
        # single-core platform's standard_bus(), relocated into this
        # core's partition — the single I/O map is the source of truth
        io_map = IoMap()
        shared_bus.attach(base + io_map.uart, Uart(), f"uart#{index}")
        shared_bus.attach(base + io_map.timer, CycleTimer(),
                          f"timer#{index}")
        shared_bus.attach(base + io_map.exit, ExitDevice(), f"exit#{index}")
        shared_bus.attach(base + io_map.coreid, CoreIdDevice(index, n_cores),
                          f"coreid#{index}")
        shared_bus.attach(base + io_map.scratch, ScratchRam(64),
                          f"scratch#{index}")
        self.port = CorePort(shared_bus, index, base, arbiter)
        self.sync = SyncDevice(rate=sync_rate)
        self.bridge = BusBridge(self.port, self.sync,
                                access_stall=bridge_stall)
        self.core = C6xCore(program, self.sync, self.bridge, strict=strict,
                            sync_access_stall=sync_access_stall)
        self.port.bind(self.core)
        self.exit_device = self.port.device("exit")
        self.grants = 0
        #: run-ahead observability: windows this core actually advanced
        #: in, and the cycles it covered inside them
        self.runahead_windows = 0
        self.runahead_cycles = 0
        self._footprint = None
        if spec.compiled:
            from repro.vliw.compiled import PacketCompiler

            self._compiler = PacketCompiler(self.core, backend=backend,
                                            tier=tier,
                                            inline_shared=inline_shared)
        else:
            self._compiler = None

    @property
    def cycles(self) -> int:
        """Target-cycle count (the :class:`SyncMember` frontier view)."""
        return self.core.cycles

    @property
    def finished(self) -> bool:
        return self.core.halted or self.exit_device.exited

    def advance(self, until: int, max_cycles: int) -> None:
        """Run this core until its cycle count reaches *until*."""
        if self._compiler is not None:
            self._compiler.run_slice(until, max_cycles)
            return
        core = self.core
        while not self.finished and core.cycles < until:
            core.step_packet()
            if core.cycles >= max_cycles:
                raise SimulationError(
                    f"target cycle limit {max_cycles} exceeded")

    def private_bound(self) -> int:
        """Cycles this core can provably run without a shared access
        (the :class:`~repro.vliw.sync.AdaptiveSyncMember` view): the
        static footprint bound at the current pc, or 0 while a branch
        is in flight (the analysis bounds paths from packet heads, not
        from a half-drained pipeline)."""
        core = self.core
        if core._pending_branch is not None:
            return 0
        fp = self._footprint
        if fp is None:
            fp = self._footprint = shared_footprint(
                core.program, core.target.branch_delay_slots)
        return fp.bound(core.pc)

    def advance_private(self, until: int, max_cycles: int) -> None:
        """Advance inside a run-ahead window: private work only.

        Compiled backends delegate to
        :meth:`~repro.vliw.compiled.PacketCompiler.run_private_slice`
        (which defers every interpreter hand-off and whose emitted
        regions bail on shared accesses); the interpreter steps
        packets directly with a per-packet dynamic stop — it never
        steps *into* a possibly-shared packet, which is exactly the
        no-shared-access-inside-a-window invariant.
        """
        core = self.core
        start = core.cycles
        if self._compiler is not None:
            self._compiler.run_private_slice(until, max_cycles)
        else:
            fp = self._footprint
            if fp is None:
                fp = self._footprint = shared_footprint(
                    core.program, core.target.branch_delay_slots)
            risky = fp.risky
            n = len(risky)
            while not self.finished and core.cycles < until:
                pc = core.pc
                if not 0 <= pc < n or risky[pc]:
                    break  # defer to a normal round at the frontier
                core.step_packet()
                if core.cycles >= max_cycles:
                    raise SimulationError(
                        f"target cycle limit {max_cycles} exceeded")
        won = core.cycles - start
        if won > 0:
            self.runahead_windows += 1
            self.runahead_cycles += won


class MultiCoreSoC:
    """N translated programs executing in lockstep on one SoC bus.

    *programs* is either one :class:`C6xProgram` replicated onto
    *cores* cores, or a sequence of programs (one per core; *cores*
    then defaults to its length).  *backends* is one backend name for
    all cores or a per-core sequence (any name registered in
    :mod:`repro.vliw.codegen`) — interpreted, packet-compiled and
    native cores mix freely, since all mutate identical core state at
    region boundaries.  *tier* carries the
    :class:`~repro.vliw.codegen.tiering.TierConfig` ladder thresholds
    to every compiled slot (``None`` reads the ``REPRO_TIER_*``
    environment).

    The SoC is always shared-capable: the
    :class:`~repro.soc.bus.SharedIoMap` segment (shared scratch,
    mailbox, global timer, cluster fabric endpoint) is mapped above the
    per-core partitions, and *contention_stall* sets the target-cycle
    penalty a core pays for losing a shared-device arbitration round.
    Programs that never touch the segment behave exactly as on the
    partition-only SoC.

    *quantum* selects the lockstep scheduling mode: ``"adaptive"`` (the
    default) runs quantum-1 rounds with provably-private run-ahead
    windows and inline shared-access calls in compiled code — the fast
    path, observable-identical to ``quantum=1``; an integer runs the
    historical fixed-quantum barrier with the bail-every-shared-access
    emitter (``quantum=1`` is the reference baseline the lockstep
    differential contract compares against).

    *node*/*nodes* give the SoC its identity inside a
    :class:`~repro.vliw.cluster.Cluster` (the fabric endpoint's node-id
    registers); a standalone SoC is the degenerate single-node cluster
    ``(0, 1)``, so distributed workloads degrade gracefully on it.
    """

    def __init__(self, programs: C6xProgram | Sequence[C6xProgram],
                 cores: int | None = None,
                 backends: str | Sequence[str] = "interp",
                 source_arch: SourceArch | None = None,
                 sync_rate: float = 1.0,
                 bridge_stall: int = 4,
                 sync_access_stall: int = 4,
                 contention_stall: int = CONTENTION_STALL,
                 strict: bool = True,
                 tier=None,
                 node: int = 0,
                 nodes: int = 1,
                 quantum: int | str = "adaptive") -> None:
        if quantum != "adaptive" and not (
                isinstance(quantum, int) and not isinstance(quantum, bool)
                and quantum >= 1):
            raise SimulationError(
                f"quantum must be 'adaptive' or an int >= 1, "
                f"got {quantum!r}")
        self.quantum = quantum
        if isinstance(programs, C6xProgram):
            if cores is None:
                raise SimulationError(
                    "cores= is required when one program is replicated")
            program_list = [programs] * cores
        else:
            program_list = list(programs)
            if cores is not None and cores != len(program_list):
                raise SimulationError(
                    f"cores={cores} but {len(program_list)} programs given")
        if not program_list:
            raise SimulationError("a multi-core SoC needs at least one core")
        n = len(program_list)
        if n > MAX_CORES:
            raise SimulationError(
                f"{n} cores exceed the {MAX_CORES}-core limit of the "
                f"shared-device address map")
        if isinstance(backends, str):
            backend_list = [backends] * n
        else:
            backend_list = list(backends)
            if len(backend_list) != n:
                raise SimulationError(
                    f"{len(backend_list)} backends for {n} cores")
        self.source_arch = source_arch or default_source_arch()
        self.bus = SocBus()
        self.shared_map = SharedIoMap()
        self.arbiter = SharedBusArbiter(contention_stall=contention_stall)
        self.global_timer = GlobalCycleTimer()
        self.shared_scratch = ScratchRam(256)
        self.mailbox = Mailbox()
        self.bus.attach(self.shared_map.addr(self.shared_map.scratch),
                        self.shared_scratch, "shared_scratch")
        self.bus.attach(self.shared_map.addr(self.shared_map.timer),
                        self.global_timer, "global_timer")
        self.bus.attach(self.shared_map.addr(self.shared_map.mailbox),
                        self.mailbox, "mailbox")
        self.fabric_endpoint = FabricEndpoint(node, nodes)
        self.bus.attach(self.shared_map.addr(self.shared_map.fabric),
                        self.fabric_endpoint, "fabric")
        # the adaptive quantum pairs with the inline-shared emitter (the
        # fast path); an integer quantum keeps the historical
        # bail-every-shared-access emitter, so ``quantum=1`` is the
        # reference baseline of the lockstep differential contract
        inline = quantum == "adaptive"
        self.slots = [
            _CoreSlot(i, program_list[i], backend_list[i], self.bus, n,
                      self.arbiter, sync_rate, bridge_stall,
                      sync_access_stall, strict, tier=tier,
                      inline_shared=inline)
            for i in range(n)
        ]
        if inline:
            self.barrier: LockstepBarrier = AdaptiveLockstepBarrier(
                self.slots, on_round=self._begin_round)
        else:
            self.barrier = LockstepBarrier(self.slots, quantum=quantum,
                                           on_round=self._begin_round)

    @property
    def n_cores(self) -> int:
        return len(self.slots)

    @property
    def frontier(self) -> int:
        """The SoC's global cycle: minimum over unfinished cores."""
        return self.barrier.frontier

    @property
    def finished(self) -> bool:
        return self.barrier.finished

    def _begin_round(self, base: int) -> None:
        # one lockstep round == one shared-bus arbitration round;
        # the global timebase is the round's base cycle
        self.arbiter.begin_round(base)
        self.global_timer.now = base
        self.fabric_endpoint.now = base

    def run_slice(self, until: int, max_cycles: int) -> None:
        """Advance the whole SoC until its frontier reaches *until*.

        The SoC-level lockstep-quantum contract used by
        :class:`~repro.vliw.cluster.Cluster`: rounds executed here are
        exactly the rounds :meth:`run` would execute, just cut at the
        cluster's window boundary — so a clustered SoC schedules (and
        arbitrates) identically to a standalone one.
        """
        self.barrier.run_until(until, max_cycles)

    def run(self, max_cycles: int = 200_000_000) -> MultiCorePlatformResult:
        """Run every core to halt/exit under round-robin lockstep.

        Scheduling lives in the :class:`~repro.vliw.sync.LockstepBarrier`
        the SoC owns: it enforces *max_cycles* at round granularity in
        addition to each core's own in-``advance`` check, and raises
        :class:`SimulationError` if a full round passes in which no
        granted core makes cycle progress — shared-device stalls make
        "granted but stuck" a reachable state, and without the guard
        the loop would spin forever.
        """
        self.barrier.run_until(None, max_cycles)
        self.flush()
        return self.collect_result()

    def flush(self) -> None:
        """Let outstanding cycle generation finish (the hardware would)."""
        for slot in self.slots:
            slot.sync.flush()

    def lockstep_stats(self) -> dict:
        """Scheduling profile of this SoC's lockstep execution.

        Observability only (never part of the differential
        observables): how many rounds ran, how many were adaptive
        run-ahead windows and how many cycles they covered, and per
        core how often it advanced inside windows, performed shared
        accesses inline in compiled code, and handed packets back to
        the interpreter.
        """
        barrier = self.barrier
        per_core = []
        for slot in self.slots:
            compiler = slot._compiler
            per_core.append({
                "core": slot.index,
                "runahead_windows": slot.runahead_windows,
                "runahead_cycles": slot.runahead_cycles,
                "inline_shared_calls": (compiler.inline_calls[0]
                                        if compiler is not None else 0),
                "interp_bails": (compiler.interp_bails
                                 if compiler is not None else 0),
            })
        return {
            "quantum": self.quantum,
            "rounds": barrier.rounds,
            "runahead_rounds": getattr(barrier, "runahead_rounds", 0),
            "runahead_window_cycles": getattr(barrier, "runahead_cycles", 0),
            "per_core": per_core,
        }

    def collect_result(self) -> MultiCorePlatformResult:
        return MultiCorePlatformResult(
            per_core=[collect_platform_result(slot.core, slot.sync,
                                              slot.port, self.source_arch)
                      for slot in self.slots],
            bus_trace=self.bus.monitor.transfers(),
            grants=[slot.grants for slot in self.slots],
            contention_conflicts=self.arbiter.conflicts,
            lockstep=self.lockstep_stats(),
        )
