"""Multi-core SoC model: N VLIW cores against one SoC bus.

Scales the prototyping platform of :mod:`repro.vliw.platform` to
several emulated cores, following the multi-core full-system
acceleration line of work (Guo & Mullins; Bosbach et al.): every core
is a full :class:`~repro.vliw.core.C6xCore` with its own
synchronization device (all cores share one sync generation *rate*, so
the emulated SoC clocks advance in the same ratio) and its own bus
bridge, but all bridges decode onto a **single shared**
:class:`~repro.soc.bus.SocBus`.

Address partitioning
    Each core owns an I/O partition of ``CORE_IO_STRIDE`` bytes on the
    shared bus, holding its own instances of the standard peripherals
    (UART, cycle timer, exit device, scratch RAM) at the standard
    offsets.  A core's bridge adds the partition base on the way out,
    so translated programs are completely unaware of the partitioning —
    the same program binary runs unmodified on any core.

Lockstep and arbitration
    Cores tick in lockstep at target-cycle granularity: every
    scheduling round advances only the cores at the minimum cycle
    count, by (at least) one cycle.  When several cores are eligible in
    the same round — simultaneous bus masters, in hardware terms — the
    shared bus grants them in **round-robin** order: the grant pointer
    rotates every round, so the global transaction trace interleaves
    fairly and deterministically.  Packet-compiled cores advance one
    compiled region per grant (regions are the backend's atomic unit),
    so their lockstep skew is bounded by the region length cap rather
    than a single packet.

Determinism and the differential contract
    Arbitration reorders only the *global* trace.  Per-core observables
    are untouched by scheduling: cores share no memory, no sync device
    and no peripherals, so for these non-contending address maps each
    core's :class:`~repro.vliw.platform.PlatformResult` is **bit
    identical** to the same program run alone on a single-core
    :class:`~repro.vliw.platform.PrototypingPlatform` — the property
    ``tests/test_multicore_differential.py`` locks down for every
    registry program, detail level and backend mix.  Programs pointed
    at a genuinely shared device would contend; their global ordering
    is still deterministic (round-robin), but per-core equality with
    isolated runs is then no longer guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.model import SourceArch, default_source_arch
from repro.errors import SimulationError
from repro.isa.c6x.packets import C6xProgram
from repro.soc.bus import BusAccess, BusMonitor, IoMap, SocBus
from repro.soc.devices import CycleTimer, ExitDevice, ScratchRam, Uart
from repro.vliw.bridge import BusBridge
from repro.vliw.core import C6xCore
from repro.vliw.platform import (
    PlatformResult,
    PrototypingPlatform,
    collect_platform_result,
)
from repro.vliw.syncdev import SyncDevice

#: size of each core's I/O partition on the shared bus.  The standard
#: peripheral set (uart 0x00, timer 0x10, exit 0x20, scratch 0x40+64)
#: ends at 0x80; one stride per core keeps partitions disjoint.
CORE_IO_STRIDE = 0x100


class CorePort:
    """One core's window onto the shared SoC bus.

    Quacks like :class:`~repro.soc.bus.SocBus` for the core's
    :class:`~repro.vliw.bridge.BusBridge` and for result collection:
    ``read``/``write`` remap the core's partition-local address onto
    the shared bus, and a private monitor re-records every transaction
    with its *local* address — so the per-core trace is directly
    comparable with a single-core platform's bus trace, while the
    shared bus monitor keeps the globally arbitrated view.
    """

    def __init__(self, shared: SocBus, index: int, base: int) -> None:
        self.shared = shared
        self.index = index
        self.base = base
        self.monitor = BusMonitor()

    def read(self, addr: int, size: int, cycle: int) -> int:
        value = self.shared.read(self.base + addr, size, cycle)
        self.monitor.record(BusAccess(cycle, "r", addr, value, size))
        return value

    def write(self, addr: int, value: int, size: int, cycle: int) -> None:
        self.shared.write(self.base + addr, value, size, cycle)
        self.monitor.record(BusAccess(cycle, "w", addr, value, size))

    def device(self, name: str):
        return self.shared.device(f"{name}#{self.index}")


@dataclass
class MultiCorePlatformResult:
    """Observables of one multi-core platform execution."""

    per_core: list[PlatformResult]
    #: globally arbitrated transaction trace of the shared bus
    #: (addresses are partition-global: ``core_index * CORE_IO_STRIDE``
    #: plus the device offset)
    bus_trace: list[BusAccess]
    #: scheduling grants each core received from the round-robin
    #: arbiter (one grant = one lockstep advance)
    grants: list[int] = field(default_factory=list)

    @property
    def n_cores(self) -> int:
        return len(self.per_core)

    @property
    def target_cycles(self) -> int:
        """Platform runtime: the slowest core's cycle count."""
        return max((r.target_cycles for r in self.per_core), default=0)

    def observables(self) -> list[dict]:
        """Per-core observable dicts, comparable field by field with N
        independent single-core :meth:`PlatformResult.observables`."""
        return [result.observables() for result in self.per_core]


class _CoreSlot:
    """One core's full vertical slice of the multi-core platform."""

    def __init__(self, index: int, program: C6xProgram, backend: str,
                 shared_bus: SocBus, sync_rate: float, bridge_stall: int,
                 sync_access_stall: int, strict: bool) -> None:
        if backend not in PrototypingPlatform.BACKENDS:
            raise SimulationError(
                f"unknown execution backend {backend!r} for core {index}; "
                f"choose from {', '.join(PrototypingPlatform.BACKENDS)}")
        self.index = index
        self.backend = backend
        base = index * CORE_IO_STRIDE
        # the same peripheral set at the same offsets as the
        # single-core platform's standard_bus(), relocated into this
        # core's partition — the single I/O map is the source of truth
        io_map = IoMap()
        shared_bus.attach(base + io_map.uart, Uart(), f"uart#{index}")
        shared_bus.attach(base + io_map.timer, CycleTimer(),
                          f"timer#{index}")
        shared_bus.attach(base + io_map.exit, ExitDevice(), f"exit#{index}")
        shared_bus.attach(base + io_map.scratch, ScratchRam(64),
                          f"scratch#{index}")
        self.port = CorePort(shared_bus, index, base)
        self.sync = SyncDevice(rate=sync_rate)
        self.bridge = BusBridge(self.port, self.sync,
                                access_stall=bridge_stall)
        self.core = C6xCore(program, self.sync, self.bridge, strict=strict,
                            sync_access_stall=sync_access_stall)
        self.exit_device = self.port.device("exit")
        self.grants = 0
        if backend == "compiled":
            from repro.vliw.compiled import PacketCompiler

            self._compiler = PacketCompiler(self.core)
        else:
            self._compiler = None

    @property
    def finished(self) -> bool:
        return self.core.halted or self.exit_device.exited

    def advance(self, until: int, max_cycles: int) -> None:
        """Run this core until its cycle count reaches *until*."""
        if self._compiler is not None:
            self._compiler.run_slice(until, max_cycles)
            return
        core = self.core
        while not self.finished and core.cycles < until:
            core.step_packet()
            if core.cycles >= max_cycles:
                raise SimulationError(
                    f"target cycle limit {max_cycles} exceeded")


class MultiCoreSoC:
    """N translated programs executing in lockstep on one SoC bus.

    *programs* is either one :class:`C6xProgram` replicated onto
    *cores* cores, or a sequence of programs (one per core; *cores*
    then defaults to its length).  *backends* is one backend name for
    all cores or a per-core sequence — interpreted and packet-compiled
    cores mix freely, since both mutate identical core state at region
    boundaries.
    """

    def __init__(self, programs: C6xProgram | Sequence[C6xProgram],
                 cores: int | None = None,
                 backends: str | Sequence[str] = "interp",
                 source_arch: SourceArch | None = None,
                 sync_rate: float = 1.0,
                 bridge_stall: int = 4,
                 sync_access_stall: int = 4,
                 strict: bool = True) -> None:
        if isinstance(programs, C6xProgram):
            if cores is None:
                raise SimulationError(
                    "cores= is required when one program is replicated")
            program_list = [programs] * cores
        else:
            program_list = list(programs)
            if cores is not None and cores != len(program_list):
                raise SimulationError(
                    f"cores={cores} but {len(program_list)} programs given")
        if not program_list:
            raise SimulationError("a multi-core SoC needs at least one core")
        n = len(program_list)
        if isinstance(backends, str):
            backend_list = [backends] * n
        else:
            backend_list = list(backends)
            if len(backend_list) != n:
                raise SimulationError(
                    f"{len(backend_list)} backends for {n} cores")
        self.source_arch = source_arch or default_source_arch()
        self.bus = SocBus()
        self.slots = [
            _CoreSlot(i, program_list[i], backend_list[i], self.bus,
                      sync_rate, bridge_stall, sync_access_stall, strict)
            for i in range(n)
        ]

    @property
    def n_cores(self) -> int:
        return len(self.slots)

    def run(self, max_cycles: int = 200_000_000) -> MultiCorePlatformResult:
        """Run every core to halt/exit under round-robin lockstep."""
        slots = self.slots
        n = len(slots)
        rr = 0  # round-robin grant pointer of the arbiter
        running = [slot for slot in slots if not slot.finished]
        while running:
            horizon = min(slot.core.cycles for slot in running) + 1
            for k in range(n):
                slot = slots[(rr + k) % n]
                if slot.finished or slot.core.cycles >= horizon:
                    continue
                slot.grants += 1
                slot.advance(horizon, max_cycles)
            rr = (rr + 1) % n
            running = [slot for slot in slots if not slot.finished]
        # Let outstanding cycle generation finish (the hardware would).
        for slot in slots:
            slot.sync.flush()
        return self.collect_result()

    def collect_result(self) -> MultiCorePlatformResult:
        return MultiCorePlatformResult(
            per_core=[collect_platform_result(slot.core, slot.sync,
                                              slot.port, self.source_arch)
                      for slot in self.slots],
            bus_trace=self.bus.monitor.transfers(),
            grants=[slot.grants for slot in self.slots],
        )
