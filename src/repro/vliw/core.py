"""Cycle-level simulator of the C6x-like VLIW core.

Executes one packet per cycle with exposed-pipeline semantics: load
results appear after 4 delay slots, multiplies after 1, branches take
effect after 5.  Readers of an in-flight register architecturally see
the old value; since the translator's scheduler guarantees that never
happens, *strict* mode treats it as an internal error (a scheduler bug)
rather than silently producing stale data.

Delay slots are counted in *issued packets*: a pipeline stall (sync
wait, bridge access) freezes the whole machine, which matches the
behaviour of a stalled in-order pipeline.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.arch.model import TargetArch
from repro.errors import BusError, HazardError, SimulationError
from repro.isa.c6x.instructions import TargetInstr, TOp
from repro.isa.c6x.packets import C6xProgram
from repro.isa.c6x.registers import reg_count, reg_name
from repro.utils.bits import s32, u32
from repro.vliw.bridge import BusBridge
from repro.vliw.syncdev import SYNC_WINDOW, SyncDevice

_LOAD_SIZE = {TOp.LDW: 4, TOp.LDH: 2, TOp.LDHU: 2, TOp.LDB: 1, TOp.LDBU: 1}
_STORE_SIZE = {TOp.STW: 4, TOp.STH: 2, TOp.STB: 1}
_SIGNED_LOADS = {TOp.LDH: 16, TOp.LDB: 8}

#: width of the bus-bridge window; the single source of truth for the
#: interpreter's dispatch and every code-generating backend
BRIDGE_WINDOW = 0x1_0000


@dataclass
class CoreStats:
    packets_issued: int = 0
    instructions_executed: int = 0
    nop_packets: int = 0
    sync_stall_cycles: int = 0
    bridge_stall_cycles: int = 0
    #: cycles lost as the round-robin loser on a contended shared
    #: device of a multi-core SoC (always 0 on a single-core platform)
    contention_stall_cycles: int = 0
    source_instructions: int = 0
    block_executions: dict[int, int] = field(default_factory=dict)

    @property
    def parallelism(self) -> float:
        """Mean non-NOP instructions per issued packet."""
        if not self.packets_issued:
            return 0.0
        return self.instructions_executed / self.packets_issued


class C6xCore:
    """The VLIW processor of the prototyping platform."""

    def __init__(self, program: C6xProgram, sync: SyncDevice,
                 bridge: BusBridge, strict: bool = True,
                 sync_access_stall: int = 4) -> None:
        self.program = program
        self.target: TargetArch = program.target
        self.sync = sync
        self.bridge = bridge
        self.strict = strict
        #: fixed cost of reaching the synchronization device: it lives
        #: in the FPGA behind the C6x external memory interface, so
        #: every access pays bus cycles even when no wait is needed.
        self.sync_access_stall = sync_access_stall
        # a typed array, not a list: the native backend maps the
        # register file into C through the buffer protocol, and
        # compiled regions close over this exact object — it must stay
        # the same object for the core's whole life, or code emitted
        # before a mid-run native attach would mutate a dead snapshot
        self.regs = array("I", bytes(4 * reg_count(self.target)))
        self.pc = program.entry
        self.halted = False
        self.stats = CoreStats()
        self._issue_index = 0
        self._stall_cycles = 0
        # in-flight register writes: reg -> (ready_index, value)
        self._inflight: dict[int, tuple[int, int]] = {}
        self._pending_branch: tuple[int, int] | None = None
        # target data memory (source data + translator-internal area)
        base = self.target.data_base
        size = (self.target.internal_base + self.target.internal_size) - base
        self._mem_base = base
        self._mem = bytearray(size)
        for addr, blob in program.data_image:
            off = addr - base
            if off < 0 or off + len(blob) > size:
                raise SimulationError(
                    f"data image at {addr:#x} outside target memory")
            self._mem[off:off + len(blob)] = blob

    # -- observability -----------------------------------------------------

    @property
    def cycles(self) -> int:
        """Total target clock cycles consumed."""
        return self._issue_index + self._stall_cycles

    def read_reg(self, reg: int) -> int:
        return self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        self.regs[reg] = u32(value)

    def peek_next_packet(self) -> int:
        """Packet index the next :meth:`step_packet` will execute."""
        if self._pending_branch is not None:
            effective, index = self._pending_branch
            if effective <= self._issue_index:
                return index
        return self.pc

    def settle(self) -> None:
        """Resolve transient pipeline state at a region boundary.

        Applies a matured pending branch to ``pc`` and commits every
        completed writeback.  Valid at block boundaries (regions are
        architecturally quiet there); used by the debugger before
        reading or migrating machine state.
        """
        if self._pending_branch is not None:
            effective, index = self._pending_branch
            if effective <= self._issue_index:
                self.pc = index
                self._pending_branch = None
        for reg in list(self._inflight):
            ready, value = self._inflight.pop(reg)
            if ready <= self._issue_index:
                self.regs[reg] = value
            else:  # pragma: no cover - boundaries are quiet by design
                self._inflight[reg] = (ready, value)

    def clear_transients(self) -> None:
        """Drop stale pipeline state before an external pc change."""
        self._pending_branch = None
        self._inflight.clear()

    def write_mem(self, addr: int, value: int, size: int) -> None:
        off = addr - self._mem_base
        if off < 0 or off + size > len(self._mem):
            raise BusError("target store outside memory", addr)
        self._mem[off:off + size] = u32(value).to_bytes(4, "little")[:size]

    def read_mem(self, addr: int, size: int) -> int:
        off = addr - self._mem_base
        return int.from_bytes(self._mem[off:off + size], "little")

    def data_window(self, addr: int, size: int) -> bytes:
        off = addr - self._mem_base
        return bytes(self._mem[off:off + size])

    # -- helpers ------------------------------------------------------------

    def _sync_offset(self, addr: int) -> int | None:
        base = self.target.sync_base
        if base <= addr < base + SYNC_WINDOW:
            return addr - base
        return None

    def _bridge_offset(self, addr: int) -> int | None:
        base = self.target.bridge_base
        if base <= addr < base + BRIDGE_WINDOW:
            return addr - base
        return None

    def _pred_true(self, instr: TargetInstr) -> bool:
        if instr.pred is None:
            return True
        return bool(self._read(instr.pred)) == instr.pred_sense

    def _read(self, reg: int) -> int:
        if self.strict and reg in self._inflight:
            ready, _value = self._inflight[reg]
            if ready > self._issue_index:
                raise HazardError(
                    f"read of {reg_name(reg, self.target)} during its "
                    f"delay shadow at packet {self.pc} "
                    f"(ready at {ready}, now {self._issue_index}) — "
                    f"scheduler bug")
        return self.regs[reg]

    def _schedule_write(self, reg: int, value: int, delay: int) -> None:
        ready = self._issue_index + 1 + delay
        if self.strict and reg in self._inflight:
            prev_ready, _ = self._inflight[reg]
            if prev_ready > self._issue_index and prev_ready >= ready:
                raise HazardError(
                    f"write-after-write hazard on "
                    f"{reg_name(reg, self.target)} — scheduler bug")
        if delay == 0:
            self.regs[reg] = u32(value)
        else:
            self._inflight[reg] = (ready, u32(value))

    def _commit_writebacks(self) -> None:
        if not self._inflight:
            return
        done = [reg for reg, (ready, _v) in self._inflight.items()
                if ready <= self._issue_index]
        for reg in done:
            _ready, value = self._inflight.pop(reg)
            self.regs[reg] = value

    # -- the cycle loop ------------------------------------------------------

    def step_packet(self) -> None:
        """Advance simulation by one issued packet (plus any stalls)."""
        if self.halted:
            raise SimulationError("core is halted")
        self._commit_writebacks()
        if self._pending_branch is not None:
            effective, label_index = self._pending_branch
            if effective <= self._issue_index:
                self.pc = label_index
                self._pending_branch = None
        if self.pc >= len(self.program.packets):
            raise SimulationError(f"fell off the end of the program "
                                  f"(packet {self.pc})")
        packet = self.program.packets[self.pc]

        # Stall while a sync-status read in this packet would block.
        while self._packet_blocks(packet):
            self._stall_cycles += 1
            self.stats.sync_stall_cycles += 1
            self.sync.tick()

        info = self.program.block_at.get(self.pc)
        if info is not None:
            self.stats.source_instructions += info.n_instructions
            self.stats.block_executions[info.source_addr] = (
                self.stats.block_executions.get(info.source_addr, 0) + 1)

        self._execute(packet)
        self.pc += 1
        self._issue_index += 1
        self.stats.packets_issued += 1
        self.sync.tick()

    def _packet_blocks(self, packet) -> bool:
        for instr in packet.instrs:
            if instr.op in _LOAD_SIZE and self._pred_true(instr):
                addr = u32(self._read(instr.src1) + (instr.imm or 0))
                off = self._sync_offset(addr)
                if off is not None and self.sync.read_blocks(off):
                    return True
        return False

    def _execute(self, packet) -> None:
        actions: list[tuple[TargetInstr, int | None]] = []
        # Phase 1: evaluate everything against the pre-packet state.
        for instr in packet.instrs:
            if instr.op is TOp.NOP:
                continue
            if not self._pred_true(instr):
                continue
            actions.append((instr, self._evaluate(instr)))
            self.stats.instructions_executed += 1
        if not actions:
            self.stats.nop_packets += 1
        # Phase 2: apply effects.
        for instr, value in actions:
            self._apply(instr, value)

    def _evaluate(self, instr: TargetInstr) -> int | None:
        op = instr.op
        if op in (TOp.B, TOp.HALT) or op in _STORE_SIZE:
            return None
        if op is TOp.MVK or op is TOp.MVKL:
            return u32(instr.imm if instr.imm is not None else 0)
        if op is TOp.MVKH:
            low = self._read(instr.dst) & 0xFFFF
            return u32(((instr.imm or 0) << 16) | low)
        if op in _LOAD_SIZE:
            return self._do_load(instr)
        a = self._read(instr.src1) if instr.src1 is not None else 0
        if op is TOp.MV:
            return a
        if op is TOp.ABS:
            return u32(abs(s32(a)))
        b = (self._read(instr.src2) if instr.src2 is not None
             else (instr.imm or 0))
        if op is TOp.ADD:
            return u32(a + b)
        if op is TOp.SUB:
            return u32(a - b)
        if op is TOp.MPY:
            return u32(s32(a) * s32(b))
        if op is TOp.AND:
            return u32(a & u32(b))
        if op is TOp.OR:
            return u32(a | u32(b))
        if op is TOp.XOR:
            return u32(a ^ u32(b))
        if op is TOp.ANDN:
            return u32(a & ~u32(b))
        if op is TOp.SHL:
            return u32(a << (b & 31))
        if op is TOp.SHRU:
            return u32(u32(a) >> (b & 31))
        if op is TOp.SHRA:
            return u32(s32(a) >> (b & 31))
        if op is TOp.MIN:
            return u32(min(s32(a), s32(b)))
        if op is TOp.MAX:
            return u32(max(s32(a), s32(b)))
        if op is TOp.CMPEQ:
            return 1 if u32(a) == u32(b) else 0
        if op is TOp.CMPNE:
            return 1 if u32(a) != u32(b) else 0
        if op is TOp.CMPLT:
            return 1 if s32(a) < s32(b) else 0
        if op is TOp.CMPLTU:
            return 1 if u32(a) < u32(b) else 0
        if op is TOp.CMPGE:
            return 1 if s32(a) >= s32(b) else 0
        if op is TOp.CMPGEU:
            return 1 if u32(a) >= u32(b) else 0
        raise SimulationError(f"unhandled target op {op}")

    def _do_load(self, instr: TargetInstr) -> int:
        size = _LOAD_SIZE[instr.op]
        addr = u32(self._read(instr.src1) + (instr.imm or 0))
        off = self._sync_offset(addr)
        if off is not None:
            value = self.sync.read_value(off)
            self._stall_cycles += self.sync_access_stall
            self.stats.sync_stall_cycles += self.sync_access_stall
        else:
            boff = self._bridge_offset(addr)
            if boff is not None:
                value = self.bridge.read(boff, size)
                self._stall_cycles += self.bridge.access_stall
                self.stats.bridge_stall_cycles += self.bridge.access_stall
            else:
                moff = addr - self._mem_base
                if moff < 0 or moff + size > len(self._mem):
                    raise BusError("target load outside memory", addr)
                value = int.from_bytes(self._mem[moff:moff + size], "little")
        bits = _SIGNED_LOADS.get(instr.op)
        if bits is not None and value & (1 << (bits - 1)):
            value -= 1 << bits
        return u32(value)

    def _apply(self, instr: TargetInstr, value: int | None) -> None:
        op = instr.op
        if op is TOp.HALT:
            self.halted = True
            return
        if op is TOp.B:
            if self._pending_branch is not None:
                raise SimulationError(
                    "branch inside the delay slots of another branch — "
                    "scheduler bug")
            if instr.target is not None:
                index = self.program.label_packet(instr.target)
            else:
                # Indirect branches carry *source* addresses in registers
                # (return addresses, function pointers); map them to the
                # translated block's packet index.
                src_addr = self._read(instr.src1)
                index = self.program.addr_to_packet.get(src_addr)
                if index is None:
                    raise SimulationError(
                        f"indirect branch to untranslated source address "
                        f"{src_addr:#010x}")
            self._pending_branch = (
                self._issue_index + 1 + self.target.branch_delay_slots, index)
            return
        if op in _STORE_SIZE:
            self._do_store(instr)
            return
        assert value is not None
        delay = 0
        if op in _LOAD_SIZE:
            delay = self.target.load_delay_slots
        elif op is TOp.MPY:
            delay = self.target.mul_delay_slots
        self._schedule_write(instr.dst, value, delay)

    def _do_store(self, instr: TargetInstr) -> None:
        size = _STORE_SIZE[instr.op]
        addr = u32(self._read(instr.src2) + (instr.imm or 0))
        value = self._read(instr.src1)
        off = self._sync_offset(addr)
        if off is not None:
            self.sync.write(off, value)
            self._stall_cycles += self.sync_access_stall
            self.stats.sync_stall_cycles += self.sync_access_stall
            return
        boff = self._bridge_offset(addr)
        if boff is not None:
            self.bridge.write(boff, value, size)
            self._stall_cycles += self.bridge.access_stall
            self.stats.bridge_stall_cycles += self.bridge.access_stall
            return
        moff = addr - self._mem_base
        if moff < 0 or moff + size > len(self._mem):
            raise BusError("target store outside memory", addr)
        self._mem[moff:moff + size] = u32(value).to_bytes(4, "little")[:size]
