"""Packet-compiled execution backend: the translated program, translated.

The paper's thesis applied one level up, as an explicit three-stage
pipeline (see ``docs/ir.md``): instead of interpreting the translated
C6x program one :meth:`C6xCore.step_packet` call per cycle (paying
Python dispatch, predicate checks and dict lookups every packet),
:class:`PacketCompiler` discovers straight-line packet *regions*,
**lowers** each to the typed Region IR of
:mod:`repro.vliw.codegen.lower`, and **emits** host code through a
pluggable :class:`~repro.vliw.codegen.RegionEmitter`:

* the ``compiled`` backend renders every region with the reference
  :class:`~repro.vliw.codegen.emit_python.PythonEmitter` — register
  numbers, immediates, predicates and load/store offsets resolved into
  direct list/bytearray operations, delay-slot writebacks placed
  statically, counters and sync-device ticks batched per region,
  device packets keeping the interpreter's exact dispatch and stall
  interleaving;
* the ``native`` backend additionally compiles *pure* (device-free)
  regions to C99 at run time (:mod:`repro.vliw.codegen.emit_c`,
  :mod:`repro.vliw.codegen.native`), falling back to the Python
  emitter per region for device packets, for entries discovered only
  at run time, and entirely when no C toolchain is available.

Compiled functions form a *block-function cache* keyed by entry packet
index, with direct chaining: each function returns the next block's
callable (lazily linked through a one-slot cell when the branch target
is static), so the hot path never re-enters ``step_packet``.  The
interpretive core remains the fallback for the rare shapes the
compiler does not specialize (a second branch issued inside another
branch's delay slots, running off the end of the program) and for any
plain memory access that turns out at run time not to target plain
target memory — a region bails out *before* mutating packet state, so
the interpreter can simply re-execute the packet.

The interpretive :class:`C6xCore` remains the reference semantics: a
compiled region mutates exactly the same core state (registers, memory,
stats, sync device), so execution can transfer between the two backends
at any region boundary and both produce identical
:class:`~repro.vliw.platform.PlatformResult` observables.

Known, deliberate divergences from the interpretive core (none of which
affect the results of schedulable programs):

* strict-mode hazard checking is skipped — the scheduler guarantees the
  absence of delay-shadow reads, like real hardware would;
* the ``max_cycles`` limit is checked at region granularity, so the
  :class:`SimulationError` it raises may fire a few packets later than
  the interpreter's per-packet check;
* when a packet raises (bus error, sync protocol violation), the
  ``instructions_executed`` count of that packet's earlier instructions
  may differ — no result is produced on that path.

Generated region *source* and *IR* are cached on the program object
itself, so several platforms executing the same translation (e.g.
repeated benchmark runs) share one lowering pass.  Both caches hold
plain picklable data — deliberately, because source strings and IR
dataclasses pickle while code objects and shared-library handles do
not: a translated program can be pickled and shipped to a worker
process (see :mod:`repro.eval.sharded`) with its region caches
attached, so workers ``compile()``/``exec`` the parent's Python
regions and re-bind (or, cache-cold, rebuild from the shipped IR) the
parent's native module instead of re-scanning and re-generating.  The
host ``compile()`` step itself is memoized per process, keyed by the
source text.
"""

from __future__ import annotations

from types import CodeType
from typing import Callable

from repro.errors import BusError, SimulationError
from repro.isa.c6x.instructions import TOp
from repro.vliw.codegen import resolve_backend
from repro.vliw.codegen.emit_python import PythonEmitter
from repro.vliw.codegen.lower import lower_region, params_for_core
from repro.vliw.core import C6xCore
from repro.utils.bits import s32


class _InterpSentinel:
    """Returned by compiled regions to hand control to the interpreter."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<interp>"


#: sentinel: "the next packet must run on the interpretive core".
INTERP = _InterpSentinel()

#: per-process memo of host ``compile()`` results, keyed by region
#: source.  The region name (which embeds the entry packet index) is
#: part of the source, so identical source implies identical behaviour;
#: every core executing the same region in one process shares one code
#: object regardless of which program object carried the source here.
#: The memo is only a cache: dropping it costs a recompile, never
#: correctness — so it is cleared wholesale once it grows past a bound
#: (a long sweep over many programs would otherwise pin every region's
#: code object for the process lifetime).
_HOST_CODE: dict[str, CodeType] = {}
_HOST_CODE_LIMIT = 8192


def _host_code(source: str, pc0: int) -> CodeType:
    code = _HOST_CODE.get(source)
    if code is None:
        if len(_HOST_CODE) >= _HOST_CODE_LIMIT:
            _HOST_CODE.clear()
        code = compile(source, f"<packet-region {pc0}>", "exec")
        _HOST_CODE[source] = code
    return code


class PacketCompiler:
    """Compiles and dispatches packet regions of one core's program.

    One compiler owns one :class:`C6xCore`; compiled functions close
    over that core's mutable state (register file, data memory, stats,
    sync device), so the compiler must be rebuilt if the core is.
    *backend* selects the stage-3 emitter set: ``"compiled"`` renders
    every region as host Python, ``"native"`` additionally routes pure
    regions through the C emitter (transparently downgrading to the
    Python emitter when no toolchain is available).
    """

    def __init__(self, core: C6xCore, max_region_packets: int = 256,
                 backend: str = "compiled") -> None:
        spec = resolve_backend(backend)
        if not spec.compiled:
            raise SimulationError(
                f"backend {spec.name!r} does not use the packet compiler")
        self.core = core
        self.program = core.program
        self.target = core.target
        self.backend = backend
        self.max_region_packets = max_region_packets
        self.exit_device = core.bridge.bus.device("exit")
        self.emitter = PythonEmitter()
        self.params = params_for_core(core)
        #: block-function cache: entry packet index -> compiled callable
        #: (or the INTERP sentinel for entries only the core can run)
        self._fns: dict[int, Callable | _InterpSentinel] = {}
        self.regions_compiled = 0
        #: regions whose source this compiler had to generate (cache
        #: misses) vs. regions whose source was already in the
        #: program-level cache — e.g. shipped from a parent process
        self.regions_generated = 0
        self.regions_from_cache = 0
        # Program-level caches of generated region source and IR,
        # shared by every compiler (and therefore platform) executing
        # this translation — and, because both pickle, by worker
        # processes receiving the pickled program.  Generated code
        # bakes in the platform's stall parameters (the memory and
        # device-window geometry is a property of the target
        # architecture, hence of the program itself), so the caches are
        # keyed by them: platforms with different stall costs never
        # share code.  Code entries are ``(source, name, n_packets)``;
        # ``(None, None, 0)`` marks entries only the interpreter runs
        # (mirrored by ``None`` in the IR cache).
        self.cache_params = (core.sync_access_stall,
                             core.bridge.access_stall)
        self._code_cache = self._program_cache("_region_code_cache")
        self._ir_cache = self._program_cache("_region_ir_cache")
        self._native = None
        if spec.native:
            from repro.vliw.codegen.native import NativeContext

            self._native = NativeContext.attach(self)

    def _program_cache(self, attr: str) -> dict:
        caches = getattr(self.program, attr, None)
        if caches is None:
            caches = {}
            setattr(self.program, attr, caches)
        return caches.setdefault(self.cache_params, {})

    @property
    def native_context(self):
        """The live native module context, or None (Python emitter)."""
        return self._native

    # -- dispatch ----------------------------------------------------------

    def run(self, max_cycles: int = 200_000_000) -> None:
        """Execute until halt, exit-device write, or the cycle limit."""
        self.run_slice(None, max_cycles)

    def run_slice(self, until: int | None,
                  max_cycles: int = 200_000_000) -> None:
        """Advance execution until ``core.cycles >= until``.

        ``None`` runs to completion (halt, exit-device write, or the
        cycle limit).  A finite *until* is the multi-core lockstep
        quantum: the core always makes forward progress and stops at
        the first region boundary at or past *until*, so it may
        overshoot by up to one region — machine state is
        architecturally consistent whenever this returns.

        Packets the compiler hands to the interpreter (INTERP regions,
        shared-device bails, pipeline drains after a spilled in-flight
        branch) run at **single-packet granularity with respect to the
        quantum**: once ``until`` is reached, the pending interpretive
        packet is deferred to the next slice instead of running now.
        That keeps every shared-device access executing while its core
        sits exactly at the lockstep scheduler's global minimum cycle,
        which is what makes shared-access interleaving identical for
        interpreted and packet-compiled cores.  Compiled dispatch only
        resumes once no branch is in flight — regions assume a clean
        pipeline at entry.
        """
        core = self.core
        fns = self._fns
        step = core.step_packet
        exit_device = self.exit_device
        while (not core.halted and not exit_device.exited
               and (until is None or core.cycles < until)):
            if core._pending_branch is None:
                nxt = fns.get(core.pc)
                if nxt is None:
                    nxt = self.function_for(core.pc)
                while nxt is not None and nxt is not INTERP:
                    nxt = nxt()
                    if core.cycles >= max_cycles:
                        raise SimulationError(
                            f"target cycle limit {max_cycles} exceeded")
                    if (until is not None and core.cycles >= until
                            and nxt is not INTERP):
                        # re-entry dispatches through the
                        # block-function cache at core.pc, which every
                        # epilogue keeps set
                        return
                if nxt is None:  # a compiled region ran HALT or exit
                    return
                # INTERP hand-off: the next packet must run on the
                # interpretive core.  Defer it to the next slice when
                # this one is already exhausted (the loop head's
                # pending-branch check resumes a spilled pipeline).
                if until is not None and core.cycles >= until:
                    return
            step()
            if core.cycles >= max_cycles:
                raise SimulationError(
                    f"target cycle limit {max_cycles} exceeded")

    def function_for(self, pc: int):
        """The compiled function entering at packet *pc* (cached)."""
        fn = self._fns.get(pc)
        if fn is None:
            fn = self._compile_region(pc)
            self._fns[pc] = fn
        return fn

    # -- region discovery --------------------------------------------------

    def _scan(self, pc0: int):
        """Find the straight-line region starting at packet *pc0*.

        Returns ``(n_packets, end_kind, branch_offset)`` where
        *end_kind* is one of:

        * ``'branch'`` — a single branch issued and matured inside the
          region; the region ends exactly at the maturation point;
        * ``'halt'`` — the last packet holds an unpredicated HALT;
        * ``'cut'`` — length cap reached; fall through to a chained
          successor region;
        * ``'interp'`` — the next packet needs the interpretive core
          (a second in-flight branch or the end of the program).
        """
        packets = self.program.packets
        bds = self.target.branch_delay_slots
        k = 0
        branch_off: int | None = None
        while True:
            if branch_off is not None and k == branch_off + 1 + bds:
                return k, "branch", branch_off
            idx = pc0 + k
            if idx >= len(packets):
                return k, "interp", branch_off
            packet = packets[idx]
            has_branch = any(i.op is TOp.B for i in packet.instrs)
            if has_branch and branch_off is not None:
                return k, "interp", branch_off
            if has_branch:
                branch_off = k
            elif branch_off is None and k >= self.max_region_packets:
                return k, "cut", None
            k += 1
            if any(i.op is TOp.HALT and i.pred is None
                   for i in packet.instrs):
                return k, "halt", branch_off

    # -- lowering + emission -----------------------------------------------

    def _generate_entry(self, pc0: int) -> tuple:
        """Scan, lower and emit the cache entries for the region at
        *pc0* — stage 2 (Region IR) and the reference stage-3 rendering
        (Python source) in one pass; both land in the program-level
        caches."""
        n_packets, end_kind, branch_off = self._scan(pc0)
        if n_packets == 0:
            entry = (None, None, 0)
            self._ir_cache[pc0] = None
        else:
            region_ir = lower_region(self.program, self.params, pc0,
                                     n_packets, end_kind, branch_off)
            source, name = self.emitter.emit(region_ir)
            entry = (source, name, n_packets)
            self._ir_cache[pc0] = region_ir
        self._code_cache[pc0] = entry
        return entry

    def _compile_region(self, pc0: int):
        cached = self._code_cache.get(pc0)
        if cached is None:
            cached = self._generate_entry(pc0)
            self.regions_generated += 1
        else:
            self.regions_from_cache += 1
        source, name, _n_packets = cached
        if source is None:
            return INTERP
        if self._native is not None:
            fn = self._native.wrapper_for(pc0)
            if fn is not None:
                self.regions_compiled += 1
                return fn
        ns = self._namespace()
        exec(_host_code(source, pc0), ns)
        self.regions_compiled += 1
        return ns[name]

    def _python_region(self, pc0: int):
        """The Python-emitted callable for region *pc0*, uncached.

        Used by the native runtime to demote a region whose packets
        keep bailing to the interpreter (bus-bridge traffic): the
        Python rendering dispatches device accesses inline instead of
        re-executing packets on the core, so it is the faster engine
        for exactly those regions.  Both renderings mutate identical
        state, so swapping at a region boundary is always safe.
        """
        source, name, _n_packets = self._code_cache[pc0]
        ns = self._namespace()
        exec(_host_code(source, pc0), ns)
        return ns[name]

    def precompile(self) -> int:
        """Generate source + IR for every statically reachable region.

        Walks the program from its entry, every label (static branch
        targets) and every indirect-branch landing site
        (``addr_to_packet``), following region fall-throughs, and fills
        the program-level caches without executing anything.  Returns
        the number of regions generated.  A parent process calls this
        once per translation so that pickled copies of the program
        carry ready-made region source and IR to worker processes.
        """
        program = self.program
        n = len(program.packets)
        pending = {program.entry}
        pending.update(program.labels.values())
        pending.update(program.addr_to_packet.values())
        seen: set[int] = set()
        generated = 0
        while pending:
            pc0 = pending.pop()
            if pc0 in seen or not 0 <= pc0 < n:
                continue
            seen.add(pc0)
            entry = self._code_cache.get(pc0)
            if entry is None:
                entry = self._generate_entry(pc0)
                generated += 1
            if entry[2]:
                pending.add(pc0 + entry[2])
        self.regions_generated += generated
        return generated

    def _namespace(self) -> dict:
        core = self.core
        return dict(
            core=core,
            _regs=core.regs,
            _mem=core._mem,
            sync=core.sync,
            bridge=core.bridge,
            stats=core.stats,
            _bex=core.stats.block_executions,
            _a2p=self.program.addr_to_packet,
            _exitdev=self.exit_device,
            s32=s32,
            fb=int.from_bytes,
            _SimulationError=SimulationError,
            _BusError=BusError,
            _INTERP=INTERP,
            _link=self._link,
            _goto=self.function_for,
            _ct=[None],
            _cf=[None],
        )

    def _link(self, cell: list, pc: int):
        """Lazily resolve a static chain target into its cell."""
        fn = self.function_for(pc)
        cell[0] = fn
        return fn


def precompile_program(program, source_arch=None, sync_rate: float = 1.0,
                       bridge_stall: int = 4, sync_access_stall: int = 4,
                       strict: bool = True,
                       backend: str = "compiled") -> int:
    """Populate *program*'s region caches without executing it.

    Builds a throwaway platform (region code bakes in the core's
    memory geometry and the platform's stall parameters, so a core must
    exist) and statically walks every reachable region.  After this,
    pickling the program ships the generated source and IR along with
    it, and any :class:`PacketCompiler` with the same stall parameters
    — in this process or a worker — executes straight from the cache.
    ``backend="native"`` additionally emits, compiles and disk-caches
    the program's native module, so workers (sharing the cache
    directory) only ``dlopen`` it.  Returns the number of regions
    generated.
    """
    from repro.vliw.platform import PrototypingPlatform

    platform = PrototypingPlatform(
        program, source_arch=source_arch, sync_rate=sync_rate,
        bridge_stall=bridge_stall, sync_access_stall=sync_access_stall,
        strict=strict, backend=backend)
    return PacketCompiler(platform.core, backend=backend).precompile()
