"""Packet-compiled execution backend: the translated program, translated.

The paper's thesis applied one level up: instead of interpreting the
translated C6x program one :meth:`C6xCore.step_packet` call per cycle
(paying Python dispatch, predicate checks and dict lookups every
packet), :class:`PacketCompiler` walks the finalized
:class:`~repro.isa.c6x.packets.C6xProgram` and emits one specialized
host-Python function per straight-line packet run via
``compile()``/``exec``:

* register numbers, immediates, predicates and load/store offsets are
  resolved at compile time into direct list/bytearray operations;
* delay-slot writebacks become statically placed assignments (the
  in-flight dict is only consulted for values carried *into* a region);
* per-block cycle, ``packets_issued``, ``instructions_executed``,
  ``nop_packets`` and ``source_instructions`` counters are added in one
  batched update per region;
* the per-packet sync-device ticks of straight-line code coalesce into
  a single :meth:`SyncDevice.tick_n` bulk advance — packets that touch
  the synchronization device or the bus bridge act as tick barriers
  and keep the interpreter's exact stall/tick interleaving;
* device-flagged memory operations compile to the same three-way
  address dispatch (sync window, bridge window, plain memory) the
  interpretive core performs, including the blocking-read stall loop.

Compiled functions form a *block-function cache* keyed by entry packet
index, with direct chaining: each function returns the next block's
callable (lazily linked through a one-slot cell when the branch target
is static), so the hot path never re-enters ``step_packet``.  The
interpretive core remains the fallback for the rare shapes the
compiler does not specialize (a second branch issued inside another
branch's delay slots, running off the end of the program) and for any
plain memory access that turns out at run time not to target plain
target memory — a region bails out *before* mutating packet state, so
the interpreter can simply re-execute the packet.

The interpretive :class:`C6xCore` remains the reference semantics: a
compiled region mutates exactly the same core state (registers, memory,
stats, sync device), so execution can transfer between the two backends
at any region boundary and both produce identical
:class:`~repro.vliw.platform.PlatformResult` observables.

Known, deliberate divergences from the interpretive core (none of which
affect the results of schedulable programs):

* strict-mode hazard checking is skipped — the scheduler guarantees the
  absence of delay-shadow reads, like real hardware would;
* the ``max_cycles`` limit is checked at region granularity, so the
  :class:`SimulationError` it raises may fire a few packets later than
  the interpreter's per-packet check;
* when a packet raises (bus error, sync protocol violation), the
  ``instructions_executed`` count of that packet's earlier instructions
  may differ — no result is produced on that path.

Generated region *source* is cached on the program object itself, so
several platforms executing the same translation (e.g. repeated
benchmark runs) share one code-generation pass.  The cache holds plain
Python source strings — deliberately, because source pickles and code
objects do not: a translated program can be pickled and shipped to a
worker process (see :mod:`repro.eval.sharded`) with its region cache
attached, so workers ``compile()``/``exec`` the parent's regions
instead of re-scanning and re-generating them.  The host ``compile()``
step itself is memoized per process, keyed by the source text.
"""

from __future__ import annotations

from types import CodeType
from typing import Callable

from repro.errors import BusError, SimulationError
from repro.isa.c6x.instructions import TOp
from repro.soc.bus import SharedIoMap
from repro.utils.bits import s32, u32
from repro.vliw.core import _LOAD_SIZE, _STORE_SIZE, C6xCore
from repro.vliw.syncdev import SYNC_WINDOW

#: width of the bus-bridge window (matches C6xCore._bridge_offset)
_BRIDGE_WINDOW = 0x1_0000

#: bridge-window offsets of the multi-core shared-device segment.
#: Compiled regions bail out to the interpreter before executing any
#: packet whose device access lands here: shared accesses must run at
#: single-packet lockstep granularity (while the core sits at the
#: global minimum cycle) so that shared-device interleaving — and with
#: it contention and mailbox contents — is identical for interpreted
#: and packet-compiled cores.  On a single-core platform nothing is
#: mapped in this window, so the check never fires for plain devices.
_SHARED_LO = SharedIoMap().base
_SHARED_HI = SharedIoMap().end


class _InterpSentinel:
    """Returned by compiled regions to hand control to the interpreter."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<interp>"


#: sentinel: "the next packet must run on the interpretive core".
INTERP = _InterpSentinel()

_STORE_OPS = frozenset(_STORE_SIZE)
_LOAD_OPS = frozenset(_LOAD_SIZE)

#: per-process memo of host ``compile()`` results, keyed by region
#: source.  The region name (which embeds the entry packet index) is
#: part of the source, so identical source implies identical behaviour;
#: every core executing the same region in one process shares one code
#: object regardless of which program object carried the source here.
#: The memo is only a cache: dropping it costs a recompile, never
#: correctness — so it is cleared wholesale once it grows past a bound
#: (a long sweep over many programs would otherwise pin every region's
#: code object for the process lifetime).
_HOST_CODE: dict[str, CodeType] = {}
_HOST_CODE_LIMIT = 8192


def _host_code(source: str, pc0: int) -> CodeType:
    code = _HOST_CODE.get(source)
    if code is None:
        if len(_HOST_CODE) >= _HOST_CODE_LIMIT:
            _HOST_CODE.clear()
        code = compile(source, f"<packet-region {pc0}>", "exec")
        _HOST_CODE[source] = code
    return code


def _is_value_op(op: TOp) -> bool:
    """True if *op* produces a register result."""
    return op not in (TOp.B, TOp.HALT, TOp.NOP) and op not in _STORE_OPS


class _Emit:
    """Tiny indented-source accumulator."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def add(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class PacketCompiler:
    """Compiles and dispatches packet regions of one core's program.

    One compiler owns one :class:`C6xCore`; compiled functions close
    over that core's mutable state (register file, data memory, stats,
    sync device), so the compiler must be rebuilt if the core is.
    """

    def __init__(self, core: C6xCore, max_region_packets: int = 256) -> None:
        self.core = core
        self.program = core.program
        self.target = core.target
        self.max_region_packets = max_region_packets
        self.exit_device = core.bridge.bus.device("exit")
        #: block-function cache: entry packet index -> compiled callable
        #: (or the INTERP sentinel for entries only the core can run)
        self._fns: dict[int, Callable | _InterpSentinel] = {}
        self.regions_compiled = 0
        #: regions whose source this compiler had to generate (cache
        #: misses) vs. regions whose source was already in the
        #: program-level cache — e.g. shipped from a parent process
        self.regions_generated = 0
        self.regions_from_cache = 0
        # Program-level cache of generated region source, shared by
        # every compiler (and therefore platform) executing this
        # translation — and, because source strings pickle, by worker
        # processes receiving the pickled program.  Generated code
        # bakes in the platform's stall parameters (the memory and
        # device-window geometry is a property of the target
        # architecture, hence of the program itself), so the cache is
        # keyed by them: platforms with different stall costs never
        # share code.  Entries are ``(source, name, n_packets)``;
        # ``(None, None, 0)`` marks entries only the interpreter runs.
        params = (core.sync_access_stall, core.bridge.access_stall)
        caches = getattr(self.program, "_region_code_cache", None)
        if caches is None:
            caches = {}
            self.program._region_code_cache = caches
        self._code_cache: dict[int, tuple] = caches.setdefault(params, {})

    # -- dispatch ----------------------------------------------------------

    def run(self, max_cycles: int = 200_000_000) -> None:
        """Execute until halt, exit-device write, or the cycle limit."""
        self.run_slice(None, max_cycles)

    def run_slice(self, until: int | None,
                  max_cycles: int = 200_000_000) -> None:
        """Advance execution until ``core.cycles >= until``.

        ``None`` runs to completion (halt, exit-device write, or the
        cycle limit).  A finite *until* is the multi-core lockstep
        quantum: the core always makes forward progress and stops at
        the first region boundary at or past *until*, so it may
        overshoot by up to one region — machine state is
        architecturally consistent whenever this returns.

        Packets the compiler hands to the interpreter (INTERP regions,
        shared-device bails, pipeline drains after a spilled in-flight
        branch) run at **single-packet granularity with respect to the
        quantum**: once ``until`` is reached, the pending interpretive
        packet is deferred to the next slice instead of running now.
        That keeps every shared-device access executing while its core
        sits exactly at the lockstep scheduler's global minimum cycle,
        which is what makes shared-access interleaving identical for
        interpreted and packet-compiled cores.  Compiled dispatch only
        resumes once no branch is in flight — regions assume a clean
        pipeline at entry.
        """
        core = self.core
        fns = self._fns
        step = core.step_packet
        exit_device = self.exit_device
        while (not core.halted and not exit_device.exited
               and (until is None or core.cycles < until)):
            if core._pending_branch is None:
                nxt = fns.get(core.pc)
                if nxt is None:
                    nxt = self.function_for(core.pc)
                while nxt is not None and nxt is not INTERP:
                    nxt = nxt()
                    if core.cycles >= max_cycles:
                        raise SimulationError(
                            f"target cycle limit {max_cycles} exceeded")
                    if (until is not None and core.cycles >= until
                            and nxt is not INTERP):
                        # re-entry dispatches through the
                        # block-function cache at core.pc, which every
                        # epilogue keeps set
                        return
                if nxt is None:  # a compiled region ran HALT or exit
                    return
                # INTERP hand-off: the next packet must run on the
                # interpretive core.  Defer it to the next slice when
                # this one is already exhausted (the loop head's
                # pending-branch check resumes a spilled pipeline).
                if until is not None and core.cycles >= until:
                    return
            step()
            if core.cycles >= max_cycles:
                raise SimulationError(
                    f"target cycle limit {max_cycles} exceeded")

    def function_for(self, pc: int):
        """The compiled function entering at packet *pc* (cached)."""
        fn = self._fns.get(pc)
        if fn is None:
            fn = self._compile_region(pc)
            self._fns[pc] = fn
        return fn

    # -- region discovery --------------------------------------------------

    def _scan(self, pc0: int):
        """Find the straight-line region starting at packet *pc0*.

        Returns ``(n_packets, end_kind, branch_offset)`` where
        *end_kind* is one of:

        * ``'branch'`` — a single branch issued and matured inside the
          region; the region ends exactly at the maturation point;
        * ``'halt'`` — the last packet holds an unpredicated HALT;
        * ``'cut'`` — length cap reached; fall through to a chained
          successor region;
        * ``'interp'`` — the next packet needs the interpretive core
          (a second in-flight branch or the end of the program).
        """
        packets = self.program.packets
        bds = self.target.branch_delay_slots
        k = 0
        branch_off: int | None = None
        while True:
            if branch_off is not None and k == branch_off + 1 + bds:
                return k, "branch", branch_off
            idx = pc0 + k
            if idx >= len(packets):
                return k, "interp", branch_off
            packet = packets[idx]
            has_branch = any(i.op is TOp.B for i in packet.instrs)
            if has_branch and branch_off is not None:
                return k, "interp", branch_off
            if has_branch:
                branch_off = k
            elif branch_off is None and k >= self.max_region_packets:
                return k, "cut", None
            k += 1
            if any(i.op is TOp.HALT and i.pred is None
                   for i in packet.instrs):
                return k, "halt", branch_off

    # -- code generation ---------------------------------------------------

    def _generate_entry(self, pc0: int) -> tuple:
        """Scan and generate the cache entry for the region at *pc0*."""
        n_packets, end_kind, branch_off = self._scan(pc0)
        if n_packets == 0:
            entry = (None, None, 0)
        else:
            builder = _RegionBuilder(self, pc0, n_packets, end_kind,
                                     branch_off)
            source, name = builder.generate()
            entry = (source, name, n_packets)
        self._code_cache[pc0] = entry
        return entry

    def _compile_region(self, pc0: int):
        cached = self._code_cache.get(pc0)
        if cached is None:
            cached = self._generate_entry(pc0)
            self.regions_generated += 1
        else:
            self.regions_from_cache += 1
        source, name, _n_packets = cached
        if source is None:
            return INTERP
        ns = self._namespace()
        exec(_host_code(source, pc0), ns)
        self.regions_compiled += 1
        return ns[name]

    def precompile(self) -> int:
        """Generate source for every statically reachable region entry.

        Walks the program from its entry, every label (static branch
        targets) and every indirect-branch landing site
        (``addr_to_packet``), following region fall-throughs, and fills
        the program-level source cache without executing anything.
        Returns the number of regions generated.  A parent process
        calls this once per translation so that pickled copies of the
        program carry ready-made region source to worker processes.
        """
        program = self.program
        n = len(program.packets)
        pending = {program.entry}
        pending.update(program.labels.values())
        pending.update(program.addr_to_packet.values())
        seen: set[int] = set()
        generated = 0
        while pending:
            pc0 = pending.pop()
            if pc0 in seen or not 0 <= pc0 < n:
                continue
            seen.add(pc0)
            entry = self._code_cache.get(pc0)
            if entry is None:
                entry = self._generate_entry(pc0)
                generated += 1
            if entry[2]:
                pending.add(pc0 + entry[2])
        self.regions_generated += generated
        return generated

    def _namespace(self) -> dict:
        core = self.core
        return dict(
            core=core,
            _regs=core.regs,
            _mem=core._mem,
            sync=core.sync,
            bridge=core.bridge,
            stats=core.stats,
            _bex=core.stats.block_executions,
            _a2p=self.program.addr_to_packet,
            _exitdev=self.exit_device,
            s32=s32,
            fb=int.from_bytes,
            _SimulationError=SimulationError,
            _BusError=BusError,
            _INTERP=INTERP,
            _link=self._link,
            _goto=self.function_for,
            _ct=[None],
            _cf=[None],
        )

    def _link(self, cell: list, pc: int):
        """Lazily resolve a static chain target into its cell."""
        fn = self.function_for(pc)
        cell[0] = fn
        return fn


class _RegionBuilder:
    """Generates the Python source of one region and compiles it."""

    def __init__(self, compiler: PacketCompiler, pc0: int, n_packets: int,
                 end_kind: str, branch_off: int | None) -> None:
        self.compiler = compiler
        self.core = compiler.core
        self.program = compiler.program
        self.target = compiler.target
        self.pc0 = pc0
        self.n_packets = n_packets
        self.end_kind = end_kind
        self.branch_off = branch_off
        self.mem_base = self.core._mem_base
        self.mem_len = len(self.core._mem)
        self.sync_base = self.target.sync_base
        self.bridge_base = self.target.bridge_base
        self.sync_stall = self.core.sync_access_stall
        self.bridge_stall = self.core.bridge.access_stall
        #: commits carried into the region mature within this window
        self.entry_window = max(self.target.load_delay_slots,
                                self.target.mul_delay_slots) + 1
        self.out = _Emit()
        #: delayed register writes: (mature_offset, dst, val, pred|None)
        self.writes: list[tuple[int, int, str, str | None]] = []
        # running static counters (prefix totals at the emission point)
        self.st_instr = 0
        self.st_nop = 0
        self.st_src = 0
        self.ticks_flushed = 0
        self.uses_ci = False
        self.uses_cn = False
        # branch bookkeeping (filled while emitting the branch packet)
        self.branch_pred: str | None = None
        self.branch_static_target: int | None = None
        self.branch_index_var: str | None = None

    # -- helpers ---------------------------------------------------------

    def _delay(self, op: TOp) -> int:
        if op in _LOAD_OPS:
            return self.target.load_delay_slots
        if op is TOp.MPY:
            return self.target.mul_delay_slots
        return 0

    def _fwd(self, reg: int, instrs, pos: int) -> str:
        """Apply-time value of *reg* for the instruction at *pos*.

        Mirrors the interpretive core: effects apply in packet order,
        so a zero-delay write by an earlier instruction of the same
        packet is visible to later stores / indirect branches.
        """
        for n in range(pos - 1, -1, -1):
            prev = instrs[n]
            if (prev.op is not TOp.NOP and _is_value_op(prev.op)
                    and prev.dst == reg and self._delay(prev.op) == 0):
                var = self._var(prev)
                if prev.pred is not None:
                    return f"({var} if {self._pvar(prev)} else regs[{reg}])"
                return var
        return f"regs[{reg}]"

    def _var(self, instr) -> str:
        return f"v{self._instr_ids[id(instr)]}"

    def _pvar(self, instr) -> str:
        return f"p{self._instr_ids[id(instr)]}"

    # -- value expressions ------------------------------------------------

    def _value_expr(self, instr) -> str:
        """Python expression for the phase-1 result of *instr*."""
        op = instr.op
        M = "0xFFFFFFFF"
        if op in (TOp.MVK, TOp.MVKL):
            return str(u32(instr.imm if instr.imm is not None else 0))
        if op is TOp.MVKH:
            high = u32((instr.imm or 0) << 16) & 0xFFFF0000
            return f"{high} | (regs[{instr.dst}] & 0xFFFF)"
        a = f"regs[{instr.src1}]" if instr.src1 is not None else "0"
        if op is TOp.MV:
            return a
        if op is TOp.ABS:
            return (f"((0x100000000 - {a}) & {M}) "
                    f"if {a} & 0x80000000 else {a}")
        if instr.src2 is not None:
            b = f"regs[{instr.src2}]"
            b_u = b
            b_s = f"s32({b})"
            b_sh = f"({b} & 31)"
        else:
            imm = instr.imm or 0
            b = str(imm)
            b_u = str(u32(imm))
            b_s = str(s32(u32(imm)))
            b_sh = str(imm & 31)
        if op is TOp.ADD:
            return f"({a} + {b}) & {M}"
        if op is TOp.SUB:
            return f"({a} - {b}) & {M}"
        if op is TOp.MPY:
            return f"(s32({a}) * {b_s}) & {M}"
        if op is TOp.AND:
            return f"{a} & {b_u}"
        if op is TOp.OR:
            return f"{a} | {b_u}"
        if op is TOp.XOR:
            return f"{a} ^ {b_u}"
        if op is TOp.ANDN:
            return f"({a} & ~{b_u}) & {M}"
        if op is TOp.SHL:
            return f"({a} << {b_sh}) & {M}"
        if op is TOp.SHRU:
            return f"{a} >> {b_sh}"
        if op is TOp.SHRA:
            return f"(s32({a}) >> {b_sh}) & {M}"
        if op is TOp.MIN:
            return f"min(s32({a}), {b_s}) & {M}"
        if op is TOp.MAX:
            return f"max(s32({a}), {b_s}) & {M}"
        if op is TOp.CMPEQ:
            return f"1 if {a} == {b_u} else 0"
        if op is TOp.CMPNE:
            return f"1 if {a} != {b_u} else 0"
        if op is TOp.CMPLT:
            return f"1 if s32({a}) < {b_s} else 0"
        if op is TOp.CMPLTU:
            return f"1 if {a} < {b_u} else 0"
        if op is TOp.CMPGE:
            return f"1 if s32({a}) >= {b_s} else 0"
        if op is TOp.CMPGEU:
            return f"1 if {a} >= {b_u} else 0"
        raise SimulationError(f"unhandled target op {op}")  # pragma: no cover

    # -- epilogue ---------------------------------------------------------

    def _emit_epilogue(self, indent: int, executed: int, commits_ran: int,
                       pc_expr: str, pending_branch: bool) -> None:
        """Counter flush + state spill shared by every region exit.

        *executed* packets ran; commit sections ran for the first
        *commits_ran* packets, so delayed writes maturing at or after
        that offset must be spilled back into the core's in-flight
        dict.  *pending_branch* spills an unmatured branch.
        """
        add = self.out.add
        add(indent, f"core._issue_index = ii0 + {executed}")
        add(indent, f"core.pc = {pc_expr}")
        add(indent, f"stats.packets_issued += {executed}")
        instr_expr = str(self.st_instr)
        if self.uses_ci:
            instr_expr += " + _ci"
        add(indent, f"stats.instructions_executed += {instr_expr}")
        if self.st_nop or self.uses_cn:
            nop_expr = str(self.st_nop)
            if self.uses_cn:
                nop_expr += " + _cn"
            add(indent, f"stats.nop_packets += {nop_expr}")
        if self.st_src:
            add(indent, f"stats.source_instructions += {self.st_src}")
        ticks = executed - self.ticks_flushed
        if ticks > 0:
            add(indent, f"sync.tick_n({ticks})")
        for mature, dst, val, pred in self.writes:
            if mature >= commits_ran:
                if pred is not None:
                    add(indent, f"if {pred}:")
                    add(indent + 1,
                        f"inflight[{dst}] = (ii0 + {mature}, {val})")
                else:
                    add(indent, f"inflight[{dst}] = (ii0 + {mature}, {val})")
        if pending_branch and self.branch_off is not None:
            effective = self.branch_off + 1 + self.target.branch_delay_slots
            target = (str(self.branch_static_target)
                      if self.branch_static_target is not None
                      else self.branch_index_var)
            if self.branch_pred is not None:
                add(indent, f"if {self.branch_pred}:")
                add(indent + 1,
                    f"core._pending_branch = (ii0 + {effective}, {target})")
            else:
                add(indent,
                    f"core._pending_branch = (ii0 + {effective}, {target})")

    def _emit_chain_return(self, indent: int, cell: str, pc: int) -> None:
        """Direct chaining: return the successor's cached callable."""
        add = self.out.add
        add(indent, f"_n = {cell}[0]")
        add(indent, "if _n is None:")
        add(indent + 1, f"_n = _link({cell}, {pc})")
        add(indent, "return _n")

    def _emit_bail(self, indent: int, packet_offset: int) -> None:
        """Hand the current packet to the interpretive core untouched.

        Only locals have been written for this packet so far; commit
        sections for it ran (idempotent with the interpreter's own
        commit pass), so the interpreter can simply re-execute it.
        """
        self._emit_epilogue(indent, packet_offset, packet_offset + 1,
                            str(self.pc0 + packet_offset),
                            pending_branch=self._branch_in_flight_at(
                                packet_offset))
        self.out.add(indent, "return _INTERP")

    def _branch_in_flight_at(self, offset: int) -> bool:
        return (self.branch_off is not None and self.branch_off < offset)

    # -- main build -------------------------------------------------------

    def generate(self) -> tuple:
        """Produce ``(source, function_name)`` for this region."""
        packets = self.program.packets
        pc0 = self.pc0
        name = f"_region_{pc0}"
        out = self.out
        add = out.add

        # number every instruction in the region for variable naming
        self._instr_ids: dict[int, int] = {}
        counter = 0
        for k in range(self.n_packets):
            for instr in packets[pc0 + k].instrs:
                self._instr_ids[id(instr)] = counter
                counter += 1

        self.uses_ci = any(
            i.pred is not None and i.op is not TOp.NOP
            for k in range(self.n_packets)
            for i in packets[pc0 + k].instrs)
        self.uses_cn = any(
            self._packet_runtime_nop(packets[pc0 + k])
            for k in range(self.n_packets))

        add(0, f"def {name}():")
        add(1, "regs = _regs; mem = _mem")
        add(1, "ii0 = core._issue_index")
        add(1, "inflight = core._inflight")
        if self.uses_ci:
            add(1, "_ci = 0")
        if self.uses_cn:
            add(1, "_cn = 0")

        for k in range(self.n_packets):
            self._emit_packet(k)

        self._emit_region_end()

        return out.source(), name

    @staticmethod
    def _packet_runtime_nop(packet) -> bool:
        """True if the packet's action count is predicate-dependent."""
        real = [i for i in packet.instrs if i.op is not TOp.NOP]
        return bool(real) and all(i.pred is not None for i in real)

    # -- per-packet emission ----------------------------------------------

    def _emit_packet(self, k: int) -> None:
        packets = self.program.packets
        pc0 = self.pc0
        idx = pc0 + k
        packet = packets[idx]
        instrs = packet.instrs
        add = self.out.add
        add(1, f"# packet {idx} (+{k})")
        device = any(i.device for i in instrs)

        # 1. writeback commits due at this packet's issue point
        if k < self.entry_window:
            add(1, "if inflight:")
            add(2, f"for _r in [_x for _x in inflight "
                   f"if inflight[_x][0] <= ii0 + {k}]:")
            add(3, "regs[_r] = inflight.pop(_r)[1]")
        for mature, dst, val, pred in self.writes:
            if mature == k:
                if pred is not None:
                    add(1, f"if {pred}: regs[{dst}] = {val}")
                else:
                    add(1, f"regs[{dst}] = {val}")

        real = [i for i in instrs if i.op is not TOp.NOP]

        # 2a. shared-segment guard: a device access landing in the
        #     multi-core shared window must run on the interpretive
        #     core (single-packet lockstep granularity), so the packet
        #     bails *before* any of its accesses execute
        if device and not self._emit_shared_guard(k, instrs):
            return  # the packet unconditionally bails; rest is dead

        # 2. device packets are tick barriers: flush batched ticks, then
        #    replicate the interpreter's blocking-read stall loop
        if device:
            pending_ticks = k - self.ticks_flushed
            if pending_ticks > 0:
                add(1, f"sync.tick_n({pending_ticks})")
            self.ticks_flushed = k
            self._emit_stall_loop(instrs)

        # 3. phase A1: predicates (pre-packet register state)
        for instr in real:
            if instr.pred is not None:
                test = "!=" if instr.pred_sense else "=="
                add(1, f"{self._pvar(instr)} = regs[{instr.pred}] {test} 0")

        # 4. phase A2: values (loads carry their memory dispatch)
        for instr in real:
            if not _is_value_op(instr.op):
                continue
            indent = 1
            if instr.pred is not None:
                add(1, f"if {self._pvar(instr)}:")
                indent = 2
            if instr.op in _LOAD_OPS:
                if device:
                    self._emit_device_load(indent, instr)
                else:
                    self._emit_plain_load(indent, instr, k)
            else:
                add(indent, f"{self._var(instr)} = {self._value_expr(instr)}")

        # 5. phase A3: plain-store range checks (apply-time bases); the
        #    generic dispatch of device packets needs no pre-check
        if not device:
            for pos, instr in enumerate(instrs):
                if instr.op not in _STORE_OPS:
                    continue
                size = _STORE_SIZE[instr.op]
                indent = 1
                if instr.pred is not None:
                    add(1, f"if {self._pvar(instr)}:")
                    indent = 2
                m = self._instr_ids[id(instr)]
                base = self._fwd(instr.src2, instrs, pos)
                imm = instr.imm or 0
                addr = f"({base} + {imm}) & 0xFFFFFFFF" if imm else base
                add(indent, f"so{m} = ({addr}) - {self.mem_base}")
                add(indent,
                    f"if so{m} < 0 or so{m} > {self.mem_len - size}:")
                self._emit_bail(indent + 1, k)

        # 6. per-block stats at translated block heads — emitted after
        #    every bail point, so a bailed packet's block statistics are
        #    counted only once, by the interpreter's re-execution
        info = self.program.block_at.get(idx)
        if info is not None:
            self.st_src += info.n_instructions
            addr = info.source_addr
            add(1, f"_bex[{addr}] = _bex.get({addr}, 0) + 1")

        # 7. phase A4: execution counters (after every possible bail)
        for instr in real:
            if instr.pred is not None:
                add(1, f"if {self._pvar(instr)}: _ci += 1")
            else:
                self.st_instr += 1
        if not real:
            self.st_nop += 1
        elif all(i.pred is not None for i in real):
            test = " or ".join(self._pvar(i) for i in real)
            add(1, f"if not ({test}): _cn += 1")

        # 8. phase B: apply effects in packet order
        packet_has_halt = False
        halt_unpred = False
        has_store = False
        for pos, instr in enumerate(instrs):
            op = instr.op
            if op is TOp.NOP:
                continue
            guarded = instr.pred is not None
            if op is TOp.HALT:
                packet_has_halt = True
                halt_unpred = halt_unpred or not guarded
                if guarded:
                    add(1, f"if {self._pvar(instr)}: core.halted = True")
                else:
                    add(1, "core.halted = True")
                continue
            if op is TOp.B:
                self._emit_branch_apply(instr, instrs, pos)
                continue
            if op in _STORE_OPS:
                has_store = True
                indent = 1
                if guarded:
                    add(1, f"if {self._pvar(instr)}:")
                    indent = 2
                if device:
                    self._emit_device_store(indent, instr, instrs, pos)
                else:
                    self._emit_plain_store(indent, instr, instrs, pos)
                continue
            # register write
            delay = self._delay(op)
            var = self._var(instr)
            pred = self._pvar(instr) if guarded else None
            if delay == 0:
                if guarded:
                    add(1, f"if {pred}: regs[{instr.dst}] = {var}")
                else:
                    add(1, f"regs[{instr.dst}] = {var}")
            else:
                self.writes.append((k + 1 + delay, instr.dst, var, pred))

        # 9. a device packet ticks immediately (order vs. device writes
        #    matters); pure packets batch their tick into the epilogue
        if device:
            add(1, "sync.tick()")
            self.ticks_flushed = k + 1
            if has_store:
                # a bridge store may have hit the exit device: stop at
                # this packet, exactly like the interpretive run loop
                add(1, "if _exitdev.exited:")
                self._emit_epilogue(2, k + 1, k + 1, str(pc0 + k + 1),
                                    pending_branch=self._branch_in_flight_at(
                                        k + 1))
                add(2, "return None")

        # 10. conditional halt exit
        if packet_has_halt:
            if halt_unpred:
                self._emit_halt_exit(1, k)
            else:
                add(1, "if core.halted:")
                self._emit_halt_exit(2, k)

    def _emit_shared_guard(self, k: int, instrs) -> bool:
        """Bail to the interpreter on shared-segment device addresses.

        Emits one pre-access check per memory operation of a device
        packet, evaluated against post-commit (pre-execution) register
        state — the same state the interpreter would re-execute the
        packet from.  Returns ``False`` when the packet must *always*
        run interpreted (a store address depends on a same-packet
        result, so it cannot be pre-computed here); the caller then
        stops emitting the packet body.
        """
        checks = []
        for pos, instr in enumerate(instrs):
            if instr.op in _LOAD_OPS:
                base = f"regs[{instr.src1}]"
            elif instr.op in _STORE_OPS:
                base = self._fwd(instr.src2, instrs, pos)
                if base != f"regs[{instr.src2}]":
                    self._emit_bail(1, k)
                    return False
            else:
                continue
            imm = instr.imm or 0
            addr = f"({base} + {imm}) & 0xFFFFFFFF" if imm else base
            cond = (f"{_SHARED_LO} <= ({addr}) - {self.bridge_base} "
                    f"< {_SHARED_HI}")
            if instr.pred is not None:
                test = "!=" if instr.pred_sense else "=="
                cond = f"regs[{instr.pred}] {test} 0 and ({cond})"
            checks.append(f"({cond})")
        if checks:
            add = self.out.add
            add(1, f"if {' or '.join(checks)}:")
            self._emit_bail(2, k)
        return True

    def _emit_stall_loop(self, instrs) -> None:
        """Replicate ``C6xCore._packet_blocks``: stall while a
        sync-status read in this packet would block."""
        checks = []
        for instr in instrs:
            if instr.op not in _LOAD_OPS:
                continue
            m = self._instr_ids[id(instr)]
            imm = instr.imm or 0
            base = f"regs[{instr.src1}]"
            addr = f"({base} + {imm}) & 0xFFFFFFFF" if imm else base
            cond = (f"0 <= (w{m} := ({addr}) - {self.sync_base}) "
                    f"< {SYNC_WINDOW} and sync.read_blocks(w{m})")
            if instr.pred is not None:
                test = "!=" if instr.pred_sense else "=="
                cond = f"regs[{instr.pred}] {test} 0 and {cond}"
            checks.append(f"({cond})")
        if not checks:
            return
        add = self.out.add
        add(1, f"while {' or '.join(checks)}:")
        add(2, "core._stall_cycles += 1")
        add(2, "stats.sync_stall_cycles += 1")
        add(2, "sync.tick()")

    def _emit_plain_load(self, indent: int, instr, k: int) -> None:
        """Direct bytearray load with a plain-memory range guard."""
        add = self.out.add
        m = self._instr_ids[id(instr)]
        size = _LOAD_SIZE[instr.op]
        imm = instr.imm or 0
        base = f"regs[{instr.src1}]"
        addr = f"({base} + {imm}) & 0xFFFFFFFF" if imm else base
        add(indent, f"o{m} = ({addr}) - {self.mem_base}")
        add(indent, f"if o{m} < 0 or o{m} > {self.mem_len - size}:")
        self._emit_bail(indent + 1, k)
        var = self._var(instr)
        if size == 1:
            add(indent, f"{var} = mem[o{m}]")
        elif size == 2:
            add(indent, f"{var} = fb(mem[o{m}:o{m} + 2], 'little')")
        else:
            add(indent, f"{var} = fb(mem[o{m}:o{m} + 4], 'little')")
        self._emit_sign_fix(indent, instr, var)

    def _emit_device_load(self, indent: int, instr) -> None:
        """The interpreter's three-way load dispatch, inline."""
        add = self.out.add
        m = self._instr_ids[id(instr)]
        size = _LOAD_SIZE[instr.op]
        imm = instr.imm or 0
        base = f"regs[{instr.src1}]"
        addr = f"({base} + {imm}) & 0xFFFFFFFF" if imm else base
        var = self._var(instr)
        add(indent, f"a{m} = {addr}")
        add(indent, f"o{m} = a{m} - {self.sync_base}")
        add(indent, f"if 0 <= o{m} < {SYNC_WINDOW}:")
        add(indent + 1, f"{var} = sync.read_value(o{m})")
        add(indent + 1, f"core._stall_cycles += {self.sync_stall}")
        add(indent + 1, f"stats.sync_stall_cycles += {self.sync_stall}")
        add(indent, "else:")
        add(indent + 1, f"b{m} = a{m} - {self.bridge_base}")
        add(indent + 1, f"if 0 <= b{m} < {_BRIDGE_WINDOW}:")
        add(indent + 2, f"{var} = bridge.read(b{m}, {size})")
        add(indent + 2, f"core._stall_cycles += {self.bridge_stall}")
        add(indent + 2, f"stats.bridge_stall_cycles += {self.bridge_stall}")
        add(indent + 1, "else:")
        add(indent + 2, f"mo{m} = a{m} - {self.mem_base}")
        add(indent + 2, f"if mo{m} < 0 or mo{m} > {self.mem_len - size}:")
        add(indent + 3,
            f"raise _BusError('target load outside memory', a{m})")
        if size == 1:
            add(indent + 2, f"{var} = mem[mo{m}]")
        else:
            add(indent + 2,
                f"{var} = fb(mem[mo{m}:mo{m} + {size}], 'little')")
        self._emit_sign_fix(indent, instr, var)

    def _emit_sign_fix(self, indent: int, instr, var: str) -> None:
        if instr.op is TOp.LDH:
            self.out.add(indent, f"if {var} & 0x8000: {var} |= 0xFFFF0000")
        elif instr.op is TOp.LDB:
            self.out.add(indent, f"if {var} & 0x80: {var} |= 0xFFFFFF00")

    def _emit_plain_store(self, indent: int, instr, instrs, pos: int) -> None:
        add = self.out.add
        m = self._instr_ids[id(instr)]
        val = self._fwd(instr.src1, instrs, pos)
        size = _STORE_SIZE[instr.op]
        if size == 1:
            add(indent, f"mem[so{m}] = {val} & 0xFF")
        elif size == 2:
            add(indent, f"mem[so{m}:so{m} + 2] = "
                        f"({val} & 0xFFFF).to_bytes(2, 'little')")
        else:
            add(indent, f"mem[so{m}:so{m} + 4] = "
                        f"({val}).to_bytes(4, 'little')")

    def _emit_device_store(self, indent: int, instr, instrs,
                           pos: int) -> None:
        """The interpreter's three-way store dispatch, inline."""
        add = self.out.add
        m = self._instr_ids[id(instr)]
        size = _STORE_SIZE[instr.op]
        base = self._fwd(instr.src2, instrs, pos)
        imm = instr.imm or 0
        addr = f"({base} + {imm}) & 0xFFFFFFFF" if imm else base
        val = self._fwd(instr.src1, instrs, pos)
        add(indent, f"sa{m} = {addr}")
        add(indent, f"sv{m} = {val}")
        add(indent, f"o{m} = sa{m} - {self.sync_base}")
        add(indent, f"if 0 <= o{m} < {SYNC_WINDOW}:")
        add(indent + 1, f"sync.write(o{m}, sv{m})")
        add(indent + 1, f"core._stall_cycles += {self.sync_stall}")
        add(indent + 1, f"stats.sync_stall_cycles += {self.sync_stall}")
        add(indent, "else:")
        add(indent + 1, f"b{m} = sa{m} - {self.bridge_base}")
        add(indent + 1, f"if 0 <= b{m} < {_BRIDGE_WINDOW}:")
        add(indent + 2, f"bridge.write(b{m}, sv{m}, {size})")
        add(indent + 2, f"core._stall_cycles += {self.bridge_stall}")
        add(indent + 2, f"stats.bridge_stall_cycles += {self.bridge_stall}")
        add(indent + 1, "else:")
        add(indent + 2, f"mo{m} = sa{m} - {self.mem_base}")
        add(indent + 2, f"if mo{m} < 0 or mo{m} > {self.mem_len - size}:")
        add(indent + 3,
            f"raise _BusError('target store outside memory', sa{m})")
        if size == 1:
            add(indent + 2, f"mem[mo{m}] = sv{m} & 0xFF")
        elif size == 2:
            add(indent + 2, f"mem[mo{m}:mo{m} + 2] = "
                            f"(sv{m} & 0xFFFF).to_bytes(2, 'little')")
        else:
            add(indent + 2, f"mem[mo{m}:mo{m} + 4] = "
                            f"(sv{m}).to_bytes(4, 'little')")

    def _emit_branch_apply(self, instr, instrs, pos: int) -> None:
        """Record the branch; indirect targets resolve at apply time."""
        add = self.out.add
        self.branch_pred = (self._pvar(instr)
                            if instr.pred is not None else None)
        if instr.target is not None:
            self.branch_static_target = self.program.label_packet(
                instr.target)
            return
        m = self._instr_ids[id(instr)]
        indent = 1
        if self.branch_pred is not None:
            add(1, f"if {self.branch_pred}:")
            indent = 2
        value = self._fwd(instr.src1, instrs, pos)
        add(indent, f"bt{m} = {value}")
        add(indent, f"bi{m} = _a2p.get(bt{m})")
        add(indent, f"if bi{m} is None:")
        add(indent + 1, f"raise _SimulationError("
                        f"f\"indirect branch to untranslated source "
                        f"address {{bt{m}:#010x}}\")")
        self.branch_index_var = f"bi{m}"

    def _emit_halt_exit(self, indent: int, k: int) -> None:
        self._emit_epilogue(indent, k + 1, k + 1, str(self.pc0 + k + 1),
                            pending_branch=self._branch_in_flight_at(k + 1))
        self.out.add(indent, "return None")

    # -- region end -------------------------------------------------------

    def _emit_region_end(self) -> None:
        add = self.out.add
        K = self.n_packets
        pc_fall = self.pc0 + K
        if self.end_kind == "halt":
            # the halt exit emitted inside the packet already returned
            return
        if self.end_kind == "branch":
            target = self.branch_static_target
            if self.branch_pred is not None:
                add(1, f"if {self.branch_pred}:")
                if target is not None:
                    self._emit_epilogue(2, K, K, str(target),
                                        pending_branch=False)
                    self._emit_chain_return(2, "_ct", target)
                else:
                    var = self.branch_index_var
                    self._emit_epilogue(2, K, K, var, pending_branch=False)
                    add(2, f"return _goto({var})")
                self._emit_epilogue(1, K, K, str(pc_fall),
                                    pending_branch=False)
                self._emit_chain_return(1, "_cf", pc_fall)
            else:
                if target is not None:
                    self._emit_epilogue(1, K, K, str(target),
                                        pending_branch=False)
                    self._emit_chain_return(1, "_ct", target)
                else:
                    var = self.branch_index_var
                    self._emit_epilogue(1, K, K, var, pending_branch=False)
                    add(1, f"return _goto({var})")
            return
        if self.end_kind == "cut":
            self._emit_epilogue(1, K, K, str(pc_fall), pending_branch=False)
            self._emit_chain_return(1, "_cf", pc_fall)
            return
        # 'interp': a second in-flight branch or the end of the program
        self._emit_epilogue(1, K, K, str(pc_fall),
                            pending_branch=self.branch_off is not None)
        add(1, "return _INTERP")


def precompile_program(program, source_arch=None, sync_rate: float = 1.0,
                       bridge_stall: int = 4, sync_access_stall: int = 4,
                       strict: bool = True) -> int:
    """Populate *program*'s region-source cache without executing it.

    Builds a throwaway platform (region source bakes in the core's
    memory geometry and the platform's stall parameters, so a core must
    exist) and statically walks every reachable region.  After this,
    pickling the program ships the generated source along with it, and
    any :class:`PacketCompiler` with the same stall parameters — in
    this process or a worker — executes straight from the cache.
    Returns the number of regions generated.
    """
    from repro.vliw.platform import PrototypingPlatform

    platform = PrototypingPlatform(
        program, source_arch=source_arch, sync_rate=sync_rate,
        bridge_stall=bridge_stall, sync_access_stall=sync_access_stall,
        strict=strict, backend="compiled")
    return PacketCompiler(platform.core).precompile()
