"""Packet-compiled execution backend: the translated program, translated.

The paper's thesis applied one level up, as an explicit three-stage
pipeline (see ``docs/ir.md``): instead of interpreting the translated
C6x program one :meth:`C6xCore.step_packet` call per cycle (paying
Python dispatch, predicate checks and dict lookups every packet),
:class:`PacketCompiler` discovers straight-line packet *regions*,
**lowers** each to the typed Region IR of
:mod:`repro.vliw.codegen.lower`, and **emits** host code through a
pluggable :class:`~repro.vliw.codegen.RegionEmitter`:

* the ``compiled`` backend renders every region with the reference
  :class:`~repro.vliw.codegen.emit_python.PythonEmitter` — register
  numbers, immediates, predicates and load/store offsets resolved into
  direct list/bytearray operations, delay-slot writebacks placed
  statically, counters and sync-device ticks batched per region,
  device packets keeping the interpreter's exact dispatch and stall
  interleaving;
* the ``native`` backend additionally compiles *pure* (device-free)
  regions to C99 at run time (:mod:`repro.vliw.codegen.emit_c`,
  :mod:`repro.vliw.codegen.native`), falling back to the Python
  emitter per region for device packets, for entries discovered only
  at run time, and entirely when no C toolchain is available.

Compiled functions form a *block-function cache* keyed by entry packet
index, with direct chaining: each function returns the next block's
callable (lazily linked through a one-slot cell when the branch target
is static), so the hot path never re-enters ``step_packet``.  The
interpretive core remains the fallback for the rare shapes the
compiler does not specialize (a second branch issued inside another
branch's delay slots, running off the end of the program) and for any
plain memory access that turns out at run time not to target plain
target memory — a region bails out *before* mutating packet state, so
the interpreter can simply re-execute the packet.

The interpretive :class:`C6xCore` remains the reference semantics: a
compiled region mutates exactly the same core state (registers, memory,
stats, sync device), so execution can transfer between the two backends
at any region boundary and both produce identical
:class:`~repro.vliw.platform.PlatformResult` observables.

Known, deliberate divergences from the interpretive core (none of which
affect the results of schedulable programs):

* strict-mode hazard checking is skipped — the scheduler guarantees the
  absence of delay-shadow reads, like real hardware would;
* the ``max_cycles`` limit is checked at region granularity, so the
  :class:`SimulationError` it raises may fire a few packets later than
  the interpreter's per-packet check;
* when a packet raises (bus error, sync protocol violation), the
  ``instructions_executed`` count of that packet's earlier instructions
  may differ — no result is produced on that path.

Generated region *source* and *IR* are cached on the program object
itself, so several platforms executing the same translation (e.g.
repeated benchmark runs) share one lowering pass.  Both caches hold
plain picklable data — deliberately, because source strings and IR
dataclasses pickle while code objects and shared-library handles do
not: a translated program can be pickled and shipped to a worker
process (see :mod:`repro.eval.sharded`) with its region caches
attached, so workers ``compile()``/``exec`` the parent's Python
regions and re-bind (or, cache-cold, rebuild from the shipped IR) the
parent's native module instead of re-scanning and re-generating.  The
host ``compile()`` step itself is memoized per process, keyed by the
source text.
"""

from __future__ import annotations

from types import CodeType
from typing import Callable

from repro.errors import BusError, SimulationError
from repro.isa.c6x.instructions import TOp
from repro.vliw.codegen import TierConfig, resolve_backend
from repro.vliw.codegen.emit_python import PythonEmitter
from repro.vliw.codegen.lower import (
    lower_region,
    packet_device_flags,
    params_for_core,
)
from repro.vliw.core import C6xCore
from repro.utils.bits import s32


class _InterpSentinel:
    """Returned by compiled regions to hand control to the interpreter."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<interp>"


#: sentinel: "the next packet must run on the interpretive core".
INTERP = _InterpSentinel()

#: per-process memo of host ``compile()`` results, keyed by region
#: source.  The region name (which embeds the entry packet index) is
#: part of the source, so identical source implies identical behaviour;
#: every core executing the same region in one process shares one code
#: object regardless of which program object carried the source here.
#: The memo is only a cache: dropping it costs a recompile, never
#: correctness — so it is cleared wholesale once it grows past a bound
#: (a long sweep over many programs would otherwise pin every region's
#: code object for the process lifetime).
_HOST_CODE: dict[str, CodeType] = {}
_HOST_CODE_LIMIT = 8192


def _host_code(source: str, pc0: int) -> CodeType:
    code = _HOST_CODE.get(source)
    if code is None:
        if len(_HOST_CODE) >= _HOST_CODE_LIMIT:
            _HOST_CODE.clear()
        code = compile(source, f"<packet-region {pc0}>", "exec")
        _HOST_CODE[source] = code
    return code


class PacketCompiler:
    """Compiles and dispatches packet regions of one core's program.

    One compiler owns one :class:`C6xCore`; compiled functions close
    over that core's mutable state (register file, data memory, stats,
    sync device), so the compiler must be rebuilt if the core is.
    *backend* selects the stage-3 emitter set: ``"compiled"`` renders
    every region as host Python, ``"native"`` additionally routes
    regions through the C superblock emitter (transparently
    downgrading to the Python emitter when no toolchain is available),
    and ``"tiered"`` climbs the profile-guided ladder — interpreted,
    then Python-emitted, then native superblocks — per region entry,
    with thresholds from *tier* (defaulting to the ``REPRO_TIER_*``
    environment knobs).
    """

    def __init__(self, core: C6xCore, max_region_packets: int = 256,
                 backend: str = "compiled",
                 tier: TierConfig | None = None,
                 inline_shared: bool = True) -> None:
        spec = resolve_backend(backend)
        if not spec.compiled:
            raise SimulationError(
                f"backend {spec.name!r} does not use the packet compiler")
        self.core = core
        self.program = core.program
        self.target = core.target
        self.backend = backend
        #: inline shared-segment accesses at region entry (the modern
        #: fast path); False restores the historical emitter that bails
        #: every shared access to the interpreter — kept as the
        #: reference baseline of the lockstep differential contract
        self.inline_shared = inline_shared
        #: tier-ladder thresholds; also supplies the native demotion
        #: threshold when set explicitly (every compiled backend demotes)
        self.tier = tier if tier is not None else TierConfig.from_env()
        self.tiered = spec.tiered
        self.max_region_packets = max_region_packets
        self.exit_device = core.bridge.bus.device("exit")
        self.emitter = PythonEmitter(inline_shared=inline_shared)
        self.params = params_for_core(core)
        #: run-ahead flag cell (``_ra`` in region namespaces): while a
        #: provably-private window executes, inline shared-access
        #: entries bail instead of arbitrating — no shared access may
        #: ever run inside a window
        self.runahead: list = [False]
        #: shared-segment accesses executed inline by compiled regions
        #: (cell 0; incremented by emitted code)
        self.inline_calls: list = [0]
        #: packets handed back to the interpretive core by compiled
        #: regions (shared bails, uncompilable shapes)
        self.interp_bails = 0
        #: the active cycle limit native superblocks budget against:
        #: ``run_slice`` keeps cell 0 at ``min(until, max_cycles)`` so
        #: internal chain edges stop at the same lockstep-quantum
        #: boundaries per-region dispatch would
        self._limit: list = [200_000_000]
        #: block-function cache: entry packet index -> compiled callable
        #: (or the INTERP sentinel for entries only the core can run)
        self._fns: dict[int, Callable | _InterpSentinel] = {}
        #: tier ladder state (``backend="tiered"``): executions per
        #: region entry on the pre-native tiers, promoted callables,
        #: and promotion counters for :meth:`tier_stats`
        self.tier_counts: dict[int, int] = {}
        #: memo of :meth:`inline_entry_fn` (None entries cached too)
        self._inline_entry_fns: dict[int, Callable | None] = {}
        self._tier_python_fns: dict[int, Callable] = {}
        self._tier_native_fns: dict[int, Callable] = {}
        self.tier_promoted_python = 0
        self.tier_promoted_native = 0
        self._native_tried = False
        self.regions_compiled = 0
        #: regions whose source this compiler had to generate (cache
        #: misses) vs. regions whose source was already in the
        #: program-level cache — e.g. shipped from a parent process
        self.regions_generated = 0
        self.regions_from_cache = 0
        # Program-level caches of generated region source and IR,
        # shared by every compiler (and therefore platform) executing
        # this translation — and, because both pickle, by worker
        # processes receiving the pickled program.  Generated code
        # bakes in the platform's stall parameters (the memory and
        # device-window geometry is a property of the target
        # architecture, hence of the program itself), so the caches are
        # keyed by them: platforms with different stall costs never
        # share code.  Code entries are ``(source, name, n_packets)``;
        # ``(None, None, 0)`` marks entries only the interpreter runs
        # (mirrored by ``None`` in the IR cache).  The historical
        # bail-all-shared emitter renders different source, so it gets
        # its own key — the default (inline) key is the one
        # ``precompile_program`` fills and workers receive.
        self.cache_params = (core.sync_access_stall,
                             core.bridge.access_stall)
        if not inline_shared:
            self.cache_params += ("bail",)
        self._code_cache = self._program_cache("_region_code_cache")
        self._ir_cache = self._program_cache("_region_ir_cache")
        self._native = None
        if spec.native:
            from repro.vliw.codegen.native import NativeContext

            self._native = NativeContext.attach(self)
            self._native_tried = True

    def _program_cache(self, attr: str) -> dict:
        caches = getattr(self.program, attr, None)
        if caches is None:
            caches = {}
            setattr(self.program, attr, caches)
        return caches.setdefault(self.cache_params, {})

    @property
    def native_context(self):
        """The live native module context, or None (Python emitter)."""
        return self._native

    # -- dispatch ----------------------------------------------------------

    def run(self, max_cycles: int = 200_000_000) -> None:
        """Execute until halt, exit-device write, or the cycle limit."""
        self.run_slice(None, max_cycles)

    def run_slice(self, until: int | None,
                  max_cycles: int = 200_000_000) -> None:
        """Advance execution until ``core.cycles >= until``.

        ``None`` runs to completion (halt, exit-device write, or the
        cycle limit).  A finite *until* is the multi-core lockstep
        quantum: the core always makes forward progress and stops at
        the first region boundary at or past *until*, so it may
        overshoot by up to one region — machine state is
        architecturally consistent whenever this returns.

        Packets the compiler hands to the interpreter (INTERP regions,
        shared-device bails, pipeline drains after a spilled in-flight
        branch) run at **single-packet granularity with respect to the
        quantum**: once ``until`` is reached, the pending interpretive
        packet is deferred to the next slice instead of running now.
        That keeps every shared-device access executing while its core
        sits exactly at the lockstep scheduler's global minimum cycle,
        which is what makes shared-access interleaving identical for
        interpreted and packet-compiled cores.  Compiled dispatch only
        resumes once no branch is in flight — regions assume a clean
        pipeline at entry.
        """
        core = self.core
        fns = self._fns
        step = core.step_packet
        exit_device = self.exit_device
        # native superblocks (and the cold tier's device-packet
        # deferral) budget against this cell so internal chaining stops
        # at the same quantum boundary this loop checks below
        self._limit[0] = (max_cycles if until is None
                          else min(until, max_cycles))
        while (not core.halted and not exit_device.exited
               and (until is None or core.cycles < until)):
            if core._pending_branch is None:
                nxt = fns.get(core.pc)
                if nxt is None:
                    nxt = self.function_for(core.pc)
                while nxt is not None and nxt is not INTERP:
                    nxt = nxt()
                    if core.cycles >= max_cycles:
                        raise SimulationError(
                            f"target cycle limit {max_cycles} exceeded")
                    if (until is not None and core.cycles >= until
                            and nxt is not INTERP):
                        # re-entry dispatches through the
                        # block-function cache at core.pc, which every
                        # epilogue keeps set
                        return
                if nxt is None:  # a compiled region ran HALT or exit
                    return
                # INTERP hand-off: the next packet must run on the
                # interpretive core.  Defer it to the next slice when
                # this one is already exhausted (the loop head's
                # pending-branch check resumes a spilled pipeline).
                if until is not None and core.cycles >= until:
                    return
                self.interp_bails += 1
            step()
            if core.cycles >= max_cycles:
                raise SimulationError(
                    f"target cycle limit {max_cycles} exceeded")

    def run_private_slice(self, until: int,
                          max_cycles: int = 200_000_000) -> None:
        """Advance through provably-private code only (run-ahead).

        The adaptive lockstep barrier's window executor (see
        :meth:`~repro.vliw.sync.AdaptiveSyncMember.advance_private`):
        like :meth:`run_slice`, but **no shared-segment access and no
        interpreter step may execute** — while the window's ``_ra``
        flag is up, inline shared-access entries bail, and every INTERP
        hand-off (shared bails, uncompilable shapes, immature-branch
        drains) is deferred to the next *normal* lockstep round instead
        of stepping the core here.  Anything this method does execute
        is core-local and schedule independent, which is what makes the
        window invisible to every observable.
        """
        core = self.core
        exit_device = self.exit_device
        if (core.halted or exit_device.exited or core.cycles >= until
                or core._pending_branch is not None):
            return
        self._limit[0] = min(until, max_cycles)
        self.runahead[0] = True
        try:
            nxt = self._fns.get(core.pc)
            if nxt is None:
                nxt = self.function_for(core.pc)
            while nxt is not None and nxt is not INTERP:
                nxt = nxt()
                if core.cycles >= max_cycles:
                    raise SimulationError(
                        f"target cycle limit {max_cycles} exceeded")
                if core.cycles >= until and nxt is not INTERP:
                    return
            # nxt is None (halt/exit inside the window) or INTERP
            # (defer the pending packet to the next normal round)
        finally:
            self.runahead[0] = False

    def inline_entry_fn(self, pc0: int):
        """The Python rendering of the device-entry region at *pc0*.

        Used by the native runtime when a superblock bails at its own
        entry packet without retiring anything (a shared-access entry
        under inline mode): the Python rendering performs the access
        inline — arbitration, stalls and all — instead of bouncing the
        packet to the interpreter on every poll-loop iteration.
        Returns None (and the caller keeps the interpreter hand-off)
        when inline mode is off or the entry is not a device packet.
        """
        if pc0 in self._inline_entry_fns:
            return self._inline_entry_fns[pc0]
        fn = None
        if self.inline_shared:
            cached = self._code_cache.get(pc0)
            if cached is None:
                cached = self._generate_entry(pc0)
                self.regions_generated += 1
            source, name, n_packets = cached
            if (source is not None and n_packets
                    and packet_device_flags(self.program, pc0, 1)[0]):
                ns = self._namespace()
                exec(_host_code(source, pc0), ns)
                fn = ns[name]
        self._inline_entry_fns[pc0] = fn
        return fn

    def function_for(self, pc: int):
        """The compiled function entering at packet *pc* (cached)."""
        fn = self._fns.get(pc)
        if fn is None:
            fn = self._compile_region(pc)
            self._fns[pc] = fn
        return fn

    # -- region discovery --------------------------------------------------

    def _scan(self, pc0: int):
        """Find the straight-line region starting at packet *pc0*.

        Returns ``(n_packets, end_kind, branch_offset)`` where
        *end_kind* is one of:

        * ``'branch'`` — a single branch issued and matured inside the
          region; the region ends exactly at the maturation point;
        * ``'halt'`` — the last packet holds an unpredicated HALT;
        * ``'cut'`` — length cap reached; fall through to a chained
          successor region;
        * ``'interp'`` — the next packet needs the interpretive core
          (a second in-flight branch or the end of the program).
        """
        packets = self.program.packets
        bds = self.target.branch_delay_slots
        k = 0
        branch_off: int | None = None
        while True:
            if branch_off is not None and k == branch_off + 1 + bds:
                return k, "branch", branch_off
            idx = pc0 + k
            if idx >= len(packets):
                return k, "interp", branch_off
            packet = packets[idx]
            has_branch = any(i.op is TOp.B for i in packet.instrs)
            if has_branch and branch_off is not None:
                return k, "interp", branch_off
            if has_branch:
                branch_off = k
            elif branch_off is None and k >= self.max_region_packets:
                return k, "cut", None
            k += 1
            if any(i.op is TOp.HALT and i.pred is None
                   for i in packet.instrs):
                return k, "halt", branch_off

    # -- lowering + emission -----------------------------------------------

    def _generate_entry(self, pc0: int) -> tuple:
        """Scan, lower and emit the cache entries for the region at
        *pc0* — stage 2 (Region IR) and the reference stage-3 rendering
        (Python source) in one pass; both land in the program-level
        caches."""
        n_packets, end_kind, branch_off = self._scan(pc0)
        if n_packets == 0:
            entry = (None, None, 0)
            self._ir_cache[pc0] = None
        else:
            region_ir = lower_region(self.program, self.params, pc0,
                                     n_packets, end_kind, branch_off)
            source, name = self.emitter.emit(region_ir)
            entry = (source, name, n_packets)
            self._ir_cache[pc0] = region_ir
        self._code_cache[pc0] = entry
        return entry

    def _compile_region(self, pc0: int):
        cached = self._code_cache.get(pc0)
        if cached is None:
            cached = self._generate_entry(pc0)
            self.regions_generated += 1
        else:
            self.regions_from_cache += 1
        source, name, n_packets = cached
        if source is None:
            return INTERP
        if self.tiered:
            return self._tier_cold(pc0, n_packets)
        if self._native is not None:
            fn = self._native.wrapper_for(pc0)
            if fn is not None:
                self.regions_compiled += 1
                return fn
        ns = self._namespace()
        exec(_host_code(source, pc0), ns)
        self.regions_compiled += 1
        return ns[name]

    def _python_region(self, pc0: int):
        """The Python-emitted callable for region *pc0*, uncached.

        Used by the native runtime to demote a region whose packets
        keep bailing to the interpreter (bus-bridge traffic): the
        Python rendering dispatches device accesses inline instead of
        re-executing packets on the core, so it is the faster engine
        for exactly those regions.  Both renderings mutate identical
        state, so swapping at a region boundary is always safe.
        """
        source, name, _n_packets = self._code_cache[pc0]
        ns = self._namespace()
        exec(_host_code(source, pc0), ns)
        return ns[name]

    # -- the tier ladder (backend="tiered") --------------------------------

    def _tier_cold(self, pc0: int, n_packets: int):
        """Tier 0: interpret the region atomically while counting.

        The stub runs the region's packets through
        :meth:`C6xCore.step_packet` in one call, so the entry keeps the
        same region granularity the compiled tiers use (per-packet
        interpretation would re-dispatch — and discover new entries —
        at every packet boundary).  Device packets are deferred at a
        lockstep-quantum boundary exactly the way ``run_slice`` defers
        individual interpreted packets, which keeps shared-device
        accesses executing at the lockstep scheduler's global minimum
        cycle.  After :attr:`TierConfig.promote_python` executions the
        entry promotes to its Python-emitted rendering.
        """
        core = self.core
        step = core.step_packet
        goto = self.function_for
        exit_device = self.exit_device
        limit_cell = self._limit
        counts = self.tier_counts
        promote_python = self.tier.promote_python
        device_flags = packet_device_flags(self.program, pc0, n_packets)
        ra = self.runahead

        def cold():
            if ra[0]:
                # the stub steps the interpreter, which may touch the
                # shared segment: never run it inside a run-ahead
                # window — defer to the next normal round
                return INTERP
            n = counts.get(pc0, 0)
            if n >= promote_python:
                return self._tier_promote_python(pc0)()
            counts[pc0] = n + 1
            for k in range(n_packets):
                if device_flags[k] and core.cycles >= limit_cell[0]:
                    return INTERP  # defer to the next lockstep slice
                step()
                if core.halted or exit_device.exited:
                    return None
            # apply a branch that matured exactly at the region end
            # (the top of the interpreter's next step would): chaining
            # at the target keeps entries aligned with region heads
            pb = core._pending_branch
            if pb is not None:
                if pb[0] <= core._issue_index:
                    core.pc = pb[1]
                    core._pending_branch = None
                else:
                    return INTERP  # immature branch: interpreter drains
            return goto(core.pc)

        cold.__name__ = f"_tier_cold_{pc0}"
        return cold

    def _tier_promote_python(self, pc0: int):
        """Tier 1: the Python-emitted rendering, still counting.

        Idempotent and cheap when already promoted — stale references
        to the cold stub (chain cells in other regions' namespaces)
        forward through here, so a promotion can never be undone by an
        old callable.
        """
        fn = self._tier_python_fns.get(pc0)
        if fn is not None:
            return fn
        python_fn = self._python_region(pc0)
        counts = self.tier_counts
        promote_native = self.tier.promote_native

        def counting():
            n = counts.get(pc0, 0)
            if n >= promote_native:
                native_fn = self._tier_promote_native(pc0)
                if native_fn is not None:
                    return native_fn()
            counts[pc0] = n + 1
            return python_fn()

        counting.__name__ = f"_tier_python_{pc0}"
        self._tier_python_fns[pc0] = counting
        self.tier_promoted_python += 1
        self.regions_compiled += 1
        self._fns[pc0] = counting
        return counting

    def _tier_promote_native(self, pc0: int):
        """Tier 2: the native superblock wrapper, if one is available.

        Returns None — and the entry stays on the Python tier — when
        the native path is disabled, no toolchain exists, the entry is
        not in the module plan (discovered only at run time), or it was
        demoted for persistent bailing.
        """
        fn = self._tier_native_fns.get(pc0)
        if fn is None:
            self._ensure_native()
            if self._native is None:
                return None
            fn = self._native.wrapper_for(pc0)
            if fn is None:
                return None
            self._tier_native_fns[pc0] = fn
            self.tier_promoted_native += 1
            self._fns[pc0] = fn
        return fn

    def _ensure_native(self) -> None:
        """Attach the native module lazily (first native promotion)."""
        if self._native_tried:
            return
        self._native_tried = True
        from repro.vliw.codegen.native import NativeContext

        self._native = NativeContext.attach(self)

    def tier_stats(self) -> dict:
        """Tier-ladder profile of this compiler (``backend="tiered"``).

        Execution counters cover the pre-native tiers (an entry's
        counter freezes when it promotes into the native superblock
        module; native bail counts are tracked separately).
        """
        native = self._native
        demoted = native._demoted if native is not None else ()
        regions = {}
        for pc0, n in sorted(self.tier_counts.items()):
            if pc0 in self._tier_native_fns and pc0 not in demoted:
                level = "native"
            elif pc0 in self._tier_python_fns or pc0 in demoted:
                level = "python"
            else:
                level = "interp"
            regions[pc0] = {"executions": n, "tier": level}
        return {
            "regions": regions,
            "promoted_python": self.tier_promoted_python,
            "promoted_native": self.tier_promoted_native,
            "demoted": native.regions_demoted if native is not None else 0,
            "bails": dict(native._bails) if native is not None else {},
        }

    def precompile(self) -> int:
        """Generate source + IR for every statically reachable region.

        Walks the program from its entry, every label (static branch
        targets) and every indirect-branch landing site
        (``addr_to_packet``), following region fall-throughs, and fills
        the program-level caches without executing anything.  Returns
        the number of regions generated.  A parent process calls this
        once per translation so that pickled copies of the program
        carry ready-made region source and IR to worker processes.
        """
        program = self.program
        n = len(program.packets)
        pending = {program.entry}
        pending.update(program.labels.values())
        pending.update(program.addr_to_packet.values())
        seen: set[int] = set()
        generated = 0
        while pending:
            pc0 = pending.pop()
            if pc0 in seen or not 0 <= pc0 < n:
                continue
            seen.add(pc0)
            entry = self._code_cache.get(pc0)
            if entry is None:
                entry = self._generate_entry(pc0)
                generated += 1
            if entry[2]:
                pending.add(pc0 + entry[2])
        self.regions_generated += generated
        if self.tiered:
            # warm the native module too, so workers and repeated runs
            # skip the C build at the first native promotion
            self._ensure_native()
        return generated

    def _namespace(self) -> dict:
        core = self.core
        return dict(
            core=core,
            _regs=core.regs,
            _mem=core._mem,
            sync=core.sync,
            bridge=core.bridge,
            stats=core.stats,
            _bex=core.stats.block_executions,
            _a2p=self.program.addr_to_packet,
            _exitdev=self.exit_device,
            s32=s32,
            fb=int.from_bytes,
            _SimulationError=SimulationError,
            _BusError=BusError,
            _INTERP=INTERP,
            _ra=self.runahead,
            _ilc=self.inline_calls,
            _link=self._link,
            _goto=self.function_for,
            _ct=[None],
            _cf=[None],
        )

    def _link(self, cell: list, pc: int):
        """Lazily resolve a static chain target into its cell."""
        fn = self.function_for(pc)
        cell[0] = fn
        return fn


def precompile_program(program, source_arch=None, sync_rate: float = 1.0,
                       bridge_stall: int = 4, sync_access_stall: int = 4,
                       strict: bool = True, backend: str = "compiled",
                       tier: TierConfig | None = None,
                       inline_shared: bool = True) -> int:
    """Populate *program*'s region caches without executing it.

    Builds a throwaway platform (region code bakes in the core's
    memory geometry and the platform's stall parameters, so a core must
    exist) and statically walks every reachable region.  After this,
    pickling the program ships the generated source and IR along with
    it, and any :class:`PacketCompiler` with the same stall parameters
    — in this process or a worker — executes straight from the cache.
    ``backend="native"`` additionally emits, compiles and disk-caches
    the program's native module, so workers (sharing the cache
    directory) only ``dlopen`` it.  Returns the number of regions
    generated.

    *inline_shared* must match the emitter mode of the compilers that
    will consume the cache (the code caches are keyed by it): True for
    adaptive-quantum SoCs (the default everywhere), False for the
    historical fixed-quantum bail-all-shared mode.
    """
    from repro.vliw.platform import PrototypingPlatform

    platform = PrototypingPlatform(
        program, source_arch=source_arch, sync_rate=sync_rate,
        bridge_stall=bridge_stall, sync_access_stall=sync_access_stall,
        strict=strict, backend=backend, tier=tier)
    return PacketCompiler(platform.core, backend=backend, tier=tier,
                          inline_shared=inline_shared).precompile()
