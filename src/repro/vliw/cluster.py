"""Cluster: N multi-core SoCs in lockstep over a modeled interconnect.

Scales the prototyping platform one level above
:class:`~repro.vliw.multicore.MultiCoreSoC`: a cluster joins N SoCs
through a :class:`~repro.vliw.fabric.NetworkFabric`, advancing them in
lockstep *windows* of ``quantum`` target cycles under a pluggable
:class:`~repro.vliw.sync.SyncBarrier`:

* ``barrier="lockstep"`` advances the SoCs serially in-process;
* ``barrier="process"`` runs every SoC in its own spawned worker,
  exchanging lockstep-quantum tokens over pipes — SoCs execute their
  windows in parallel, reusing the sharded-runner transport
  (:func:`~repro.eval.sharded.child_import_path`, shipped Region IR
  and warm native caches from
  :func:`~repro.vliw.compiled.precompile_program`, so workers report
  ``regions_generated == 0``).

Both barriers produce **bit-identical observables** — the determinism
contract of :mod:`repro.vliw.fabric`: because the quantum never
exceeds the fabric's minimum latency, no word sent inside a window can
become visible in that same window, so routing at window barriers (in
the parent, in both modes) is order-independent.  Inside each window
an SoC runs exactly the rounds it would run standalone
(``MultiCoreSoC.run_slice``), so intra-SoC arbitration is untouched.
``tests/test_cluster_differential.py`` pins both properties.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.model import SourceArch, default_source_arch
from repro.errors import SimulationError
from repro.isa.c6x.packets import C6xProgram
from repro.soc.bus import BusAccess
from repro.vliw.fabric import (
    MAX_NODES,
    FabricConfig,
    FabricMessage,
    NetworkFabric,
)
from repro.vliw.multicore import (
    CONTENTION_STALL,
    MultiCorePlatformResult,
    MultiCoreSoC,
)
from repro.vliw.sync import LockstepBarrier, ProcessBarrier

BARRIERS = ("lockstep", "process")


def _build_soc(payload: dict) -> MultiCoreSoC:
    return MultiCoreSoC(
        payload["programs"],
        backends=payload["backends"],
        source_arch=payload["source_arch"],
        sync_rate=payload["sync_rate"],
        bridge_stall=payload["bridge_stall"],
        sync_access_stall=payload["sync_access_stall"],
        contention_stall=payload["contention_stall"],
        strict=payload["strict"],
        tier=payload["tier"],
        node=payload["node"],
        nodes=payload["nodes"],
        quantum=payload["core_quantum"],
    )


def _soc_regions_generated(soc: MultiCoreSoC) -> int:
    return sum(slot._compiler.regions_generated for slot in soc.slots
               if slot._compiler is not None)


def _finish_soc(soc: MultiCoreSoC) -> tuple:
    soc.flush()
    return (soc.collect_result(), soc.fabric_endpoint.device_stats(),
            _soc_regions_generated(soc))


def _cluster_worker(conn, payload: dict) -> None:
    """One SoC's worker loop (spawned process, ``barrier="process"``).

    Executes ``advance``/``deliver`` commands until ``finish``; any
    exception is marshalled back instead of killing the pipe silently.
    """
    try:
        soc = _build_soc(payload)
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                _, until, max_cycles = msg
                soc.run_slice(until, max_cycles)
                outbox = [
                    (m.src, m.dst, m.value, m.sent_at, m.seq)
                    for m in soc.fabric_endpoint.collect_outbox()
                ]
                conn.send(("state", soc.frontier, soc.finished, outbox))
            elif cmd == "deliver":
                for src, value, visible_at in msg[1]:
                    soc.fabric_endpoint.deliver(src, value, visible_at)
            elif cmd == "finish":
                conn.send(("result", _finish_soc(soc)))
                return
            else:  # "stop" or anything unknown: exit quietly
                return
    except EOFError:  # parent died; nothing to report to
        return
    except Exception as exc:  # noqa: BLE001 - marshal to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _LocalNode:
    """In-process cluster member: wraps one SoC for the barrier."""

    def __init__(self, index: int, payload: dict) -> None:
        self.index = index
        self.soc = _build_soc(payload)
        self.grants = 0

    @property
    def cycles(self) -> int:
        return self.soc.frontier

    @property
    def finished(self) -> bool:
        return self.soc.finished

    def advance(self, until: int, max_cycles: int) -> None:
        self.soc.run_slice(until, max_cycles)

    def collect_outbox(self) -> list[FabricMessage]:
        return self.soc.fabric_endpoint.collect_outbox()

    def deliver_batch(self, deliveries: list[tuple[int, int, int]]) -> None:
        for src, value, visible_at in deliveries:
            self.soc.fabric_endpoint.deliver(src, value, visible_at)

    def finish(self) -> tuple:
        return _finish_soc(self.soc)

    def shutdown(self) -> None:
        pass


class _RemoteNode:
    """Cross-process cluster member: proxies a worker over a pipe.

    Caches the worker's reported ``cycles``/``finished`` so the
    parent-side barrier sees the same frontier the serial barrier
    would compute.
    """

    def __init__(self, index: int, payload: dict, ctx) -> None:
        from repro.eval.sharded import child_import_path

        self.index = index
        self.conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(target=_cluster_worker,
                                args=(child_conn, payload),
                                daemon=True)
        with child_import_path():
            self.proc.start()
        child_conn.close()
        self.cycles = 0
        self.finished = False
        self.grants = 0
        self._outbox: list[FabricMessage] = []

    def _recv(self) -> tuple:
        # poll + liveness instead of a bare recv(): a worker that dies
        # before collecting its pipe end leaves a dup of it in the
        # parent's resource-sharer thread, so EOF would never arrive
        while True:
            try:
                if self.conn.poll(0.2):
                    msg = self.conn.recv()
                    break
            except (EOFError, OSError):
                raise SimulationError(
                    f"cluster node {self.index}: worker died without a "
                    f"reply") from None
            if not self.proc.is_alive():
                raise SimulationError(
                    f"cluster node {self.index}: worker exited with code "
                    f"{self.proc.exitcode} before replying")
        if msg[0] == "error":
            raise SimulationError(f"cluster node {self.index}: {msg[1]}")
        return msg

    def post_advance(self, until: int, max_cycles: int) -> None:
        self.conn.send(("advance", until, max_cycles))

    def wait_advance(self) -> None:
        _tag, cycles, finished, outbox = self._recv()
        self.cycles = cycles
        self.finished = finished
        self._outbox.extend(FabricMessage(*fields) for fields in outbox)

    def advance(self, until: int, max_cycles: int) -> None:
        self.post_advance(until, max_cycles)
        self.wait_advance()

    def collect_outbox(self) -> list[FabricMessage]:
        out, self._outbox = self._outbox, []
        return out

    def deliver_batch(self, deliveries: list[tuple[int, int, int]]) -> None:
        self.conn.send(("deliver", list(deliveries)))

    def finish(self) -> tuple:
        self.conn.send(("finish",))
        _tag, payload = self._recv()
        return payload

    def shutdown(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - hung worker
            self.proc.terminate()
            self.proc.join(timeout=5.0)


@dataclass
class ClusterResult:
    """Observables of one cluster execution."""

    per_soc: list[MultiCorePlatformResult]
    #: parent-side fabric routing statistics
    fabric: dict
    #: per-SoC endpoint counters (sent/received/popped/...)
    per_soc_fabric: list[dict]
    #: cluster-level scheduling grants per SoC
    grants: list[int] = field(default_factory=list)
    #: cluster-level lockstep windows executed
    rounds: int = 0
    #: regions each SoC's compilers generated (0 = warm caches)
    regions_generated: list[int] = field(default_factory=list)
    barrier: str = "lockstep"

    @property
    def n_socs(self) -> int:
        return len(self.per_soc)

    @property
    def target_cycles(self) -> int:
        """Cluster runtime: the slowest SoC's runtime."""
        return max((r.target_cycles for r in self.per_soc), default=0)

    def exit_codes(self) -> list[list[int | None]]:
        """Per-SoC, per-core exit codes."""
        return [[core.exit_code for core in soc.per_core]
                for soc in self.per_soc]

    def shared_traces(self) -> list[list[BusAccess]]:
        return [soc.shared_trace() for soc in self.per_soc]

    def observables(self) -> dict:
        """Everything the cross-barrier differential compares.

        Deliberately excludes host-side counters (wall time,
        ``regions_generated``) that legitimately differ between
        execution strategies.
        """
        return dict(
            per_soc=[soc.observables() for soc in self.per_soc],
            shared_traces=self.shared_traces(),
            soc_grants=[soc.grants for soc in self.per_soc],
            contention=[soc.contention_conflicts for soc in self.per_soc],
            grants=list(self.grants),
            rounds=self.rounds,
            fabric=dict(self.fabric),
            per_soc_fabric=[dict(stats) for stats in self.per_soc_fabric],
        )


class Cluster:
    """N SoCs × M cores in lockstep windows over a routed fabric.

    *programs* is one :class:`C6xProgram` replicated everywhere or a
    per-SoC sequence (each entry replicated onto that SoC's *cores*).
    *backends* is one name for every core, a per-core sequence of
    length *cores* (replicated per SoC), or a flattened per-core
    sequence of length ``socs * cores``.  *quantum* defaults to the
    fabric's minimum latency — the largest window the determinism
    contract allows — and an explicit value must not exceed it; when
    the shared-footprint analysis proves every program fully private
    (no device access at all, hence no fabric traffic), the default
    stretches far beyond the latency bound, since there are no sends a
    window could observe.  *core_quantum* is each SoC's **intra-SoC**
    lockstep mode (``"adaptive"`` or a fixed integer — see
    :class:`~repro.vliw.multicore.MultiCoreSoC`); observables are
    identical either way.

    With ``barrier="process"`` each SoC runs in a spawned worker;
    programs using compiled backends are precompiled in the parent
    first so the shipped region caches make workers report
    ``regions_generated == 0``.
    """

    def __init__(self, programs: C6xProgram | Sequence[C6xProgram],
                 socs: int | None = None,
                 cores: int = 1,
                 backends: str | Sequence[str] = "interp",
                 fabric: FabricConfig | None = None,
                 quantum: int | None = None,
                 barrier: str = "lockstep",
                 source_arch: SourceArch | None = None,
                 sync_rate: float = 1.0,
                 bridge_stall: int = 4,
                 sync_access_stall: int = 4,
                 contention_stall: int = CONTENTION_STALL,
                 strict: bool = True,
                 tier=None,
                 core_quantum: int | str = "adaptive") -> None:
        if isinstance(programs, C6xProgram):
            if socs is None:
                raise SimulationError(
                    "socs= is required when one program is replicated")
            program_list = [programs] * socs
        else:
            program_list = list(programs)
            if socs is not None and socs != len(program_list):
                raise SimulationError(
                    f"socs={socs} but {len(program_list)} programs given")
        if not program_list:
            raise SimulationError("a cluster needs at least one SoC")
        n = len(program_list)
        if n > MAX_NODES:
            raise SimulationError(
                f"{n} SoCs exceed the {MAX_NODES}-node limit of the "
                f"fabric address map")
        if cores < 1:
            raise SimulationError("each SoC needs at least one core")
        if barrier not in BARRIERS:
            raise SimulationError(
                f"unknown barrier {barrier!r} "
                f"(choose from {', '.join(BARRIERS)})")
        per_soc_backends = self._split_backends(backends, n, cores)
        self.fabric_config = fabric or FabricConfig()
        min_latency = self.fabric_config.min_latency(n)
        if quantum is None:
            self.quantum = self._derive_quantum(program_list, min_latency)
        else:
            self.quantum = quantum
            if not 1 <= quantum <= min_latency:
                raise SimulationError(
                    f"lockstep quantum {quantum} outside 1..{min_latency} "
                    f"(the fabric's minimum latency bounds the window: a "
                    f"larger quantum would let a window observe its own "
                    f"sends)")
        self.barrier_kind = barrier
        self.n_socs = n
        self.cores = cores
        self.source_arch = source_arch or default_source_arch()
        self.network = NetworkFabric(n, self.fabric_config)
        payloads = []
        for node in range(n):
            payloads.append(dict(
                programs=[program_list[node]] * cores,
                backends=per_soc_backends[node],
                source_arch=self.source_arch,
                sync_rate=sync_rate,
                bridge_stall=bridge_stall,
                sync_access_stall=sync_access_stall,
                contention_stall=contention_stall,
                strict=strict,
                tier=tier,
                node=node,
                nodes=n,
                core_quantum=core_quantum,
            ))
        if barrier == "process":
            self._precompile(payloads)
            ctx = multiprocessing.get_context("spawn")
            self.members = [_RemoteNode(i, payloads[i], ctx)
                            for i in range(n)]
            self.sync_barrier = ProcessBarrier(
                self.members, quantum=self.quantum,
                on_round_end=self._exchange)
        else:
            self.members = [_LocalNode(i, payloads[i]) for i in range(n)]
            self.sync_barrier = LockstepBarrier(
                self.members, quantum=self.quantum,
                on_round_end=self._exchange)

    @staticmethod
    def _derive_quantum(program_list: Sequence[C6xProgram],
                        min_latency: int) -> int:
        """Largest sound default window for these programs.

        The min-latency bound exists so a window cannot observe its
        own sends; when the shared-footprint analysis (see
        :mod:`repro.vliw.codegen.footprint`) proves every program
        fully private — not one packet carries a device access, so no
        core can ever reach its SoC's fabric endpoint — there are no
        sends to observe and the window may stretch far beyond the
        fabric latency.  Any shared-capable program falls back to the
        historical ``min_latency`` default.
        """
        from repro.arch.model import TargetArch
        from repro.vliw.codegen.footprint import (
            PRIVATE_CAP,
            shared_footprint,
        )

        bds = TargetArch().branch_delay_slots
        unique = {id(program): program for program in program_list}
        if all(shared_footprint(program, bds).fully_private
               for program in unique.values()):
            return max(min_latency, PRIVATE_CAP)
        return min_latency

    @staticmethod
    def _split_backends(backends: str | Sequence[str], socs: int,
                        cores: int) -> list[list[str]]:
        if isinstance(backends, str):
            return [[backends] * cores for _ in range(socs)]
        backend_list = list(backends)
        if len(backend_list) == cores:
            return [list(backend_list) for _ in range(socs)]
        if len(backend_list) == socs * cores:
            return [backend_list[i * cores:(i + 1) * cores]
                    for i in range(socs)]
        raise SimulationError(
            f"{len(backend_list)} backends for {socs} SoCs x {cores} cores "
            f"(give 1, {cores}, or {socs * cores})")

    @staticmethod
    def _precompile(payloads: list[dict]) -> None:
        """Warm the region caches of every shipped program.

        Same trick as :class:`~repro.eval.sharded.ShardedRunner`: the
        program object is the cache carrier, so precompiling before the
        worker pickles it ships Region IR (and disk-caches native
        modules) — workers then report ``regions_generated == 0``.
        """
        from repro.vliw.codegen import resolve_backend
        from repro.vliw.compiled import precompile_program

        done: set[tuple[int, str]] = set()
        for payload in payloads:
            for program, backend in zip(payload["programs"],
                                        payload["backends"]):
                if not resolve_backend(backend).compiled:
                    continue
                key = (id(program), backend)
                if key in done:
                    continue
                done.add(key)
                precompile_program(
                    program, source_arch=payload["source_arch"],
                    sync_rate=payload["sync_rate"],
                    bridge_stall=payload["bridge_stall"],
                    sync_access_stall=payload["sync_access_stall"],
                    strict=payload["strict"], backend=backend,
                    tier=payload["tier"],
                    inline_shared=payload["core_quantum"] == "adaptive")

    def _exchange(self, base: int, horizon: int) -> None:
        """Window barrier: drain outboxes, route, deliver."""
        messages: list[FabricMessage] = []
        for member in self.members:
            messages.extend(member.collect_outbox())
        if not messages:
            return
        deliveries = self.network.route(messages, base)
        for dst in sorted(deliveries):
            self.members[dst].deliver_batch(deliveries[dst])

    def run(self, max_cycles: int = 200_000_000) -> ClusterResult:
        """Run every SoC to completion under the configured barrier."""
        try:
            self.sync_barrier.run_until(None, max_cycles)
            finished = [member.finish() for member in self.members]
        finally:
            for member in self.members:
                member.shutdown()
        return ClusterResult(
            per_soc=[result for result, _stats, _regions in finished],
            fabric=self.network.stats.as_dict(),
            per_soc_fabric=[stats for _result, stats, _regions in finished],
            grants=[member.grants for member in self.members],
            rounds=self.sync_barrier.rounds,
            regions_generated=[regions for _r, _s, regions in finished],
            barrier=self.barrier_kind,
        )
