"""Synchronization device — the FPGA cycle-generation hardware.

Per Section 3.1 of the paper: at the beginning of each translated basic
block the program writes the predicted source-cycle count *n* to this
device; the device then generates *n* SoC clock cycles for the attached
hardware *in parallel* with the block's execution.  A read from the
status register blocks until generation has finished.  A second channel
produces the dynamic correction cycles of Section 3.4.

Register map (byte offsets from the device base):

====== ==============================================================
``+0``  CMD: write *n* starts main-channel generation
``+4``  STATUS: read blocks while the main channel is busy
``+8``  CORR_CMD: write *n* starts correction-channel generation
``+12`` CORR_STATUS: read blocks while the correction channel is busy
====== ==============================================================

The generated cycle count is the platform's *emulated clock*: it
drives the SoC bus, so peripherals observe bus traffic at emulated
time, which is what makes the translated program's I/O cycle accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

REG_CMD = 0x0
REG_STATUS = 0x4
REG_CORR_CMD = 0x8
REG_CORR_STATUS = 0xC
SYNC_WINDOW = 0x10


@dataclass
class SyncStats:
    """Counters for the speed analysis."""

    blocks_started: int = 0
    corrections_started: int = 0
    cycles_generated: int = 0
    correction_cycles_generated: int = 0
    wait_stall_cycles: int = 0


class SyncDevice:
    """Cycle generator co-simulated with the VLIW core.

    *rate* is the number of emulated SoC cycles generated per target
    (C6x) clock cycle; fractional rates accumulate.
    """

    def __init__(self, rate: float = 1.0) -> None:
        if rate <= 0:
            raise SimulationError("sync generation rate must be positive")
        self.rate = rate
        self.emulated_cycles = 0  # total generated so far (the SoC clock)
        self._pending_main = 0
        self._pending_corr = 0
        self._accumulator = 0.0
        self.stats = SyncStats()

    # -- device protocol ----------------------------------------------------

    def write(self, offset: int, value: int) -> None:
        if offset == REG_CMD:
            if self._pending_main:
                raise SimulationError(
                    "sync-device protocol violation: new cycle generation "
                    "started while the previous block is still generating "
                    "(missing sync wait — translator bug)")
            self._pending_main = value
            self.stats.blocks_started += 1
            return
        if offset == REG_CORR_CMD:
            if self._pending_corr:
                raise SimulationError(
                    "sync-device protocol violation: correction generation "
                    "already running")
            self._pending_corr = value
            if value:
                self.stats.corrections_started += 1
            return
        raise SimulationError(
            f"invalid sync-device register write at offset {offset:#x}")

    def read_blocks(self, offset: int) -> bool:
        """True if a read of *offset* must stall the core right now."""
        if offset == REG_STATUS:
            return self._pending_main > 0
        if offset == REG_CORR_STATUS:
            return self._pending_corr > 0
        raise SimulationError(
            f"invalid sync-device register read at offset {offset:#x}")

    def read_value(self, offset: int) -> int:
        """Value returned once a status read completes."""
        if offset in (REG_STATUS, REG_CORR_STATUS):
            return 0
        raise SimulationError(
            f"invalid sync-device register read at offset {offset:#x}")

    @property
    def busy(self) -> bool:
        return bool(self._pending_main or self._pending_corr)

    # -- co-simulation --------------------------------------------------------

    def tick(self) -> None:
        """Advance one target clock cycle of generation."""
        if not self.busy:
            self._accumulator = 0.0
            return
        self._accumulator += self.rate
        emit = int(self._accumulator)
        if emit <= 0:
            return
        self._accumulator -= emit
        while emit > 0 and self._pending_main > 0:
            step = min(emit, self._pending_main)
            self._pending_main -= step
            self.emulated_cycles += step
            self.stats.cycles_generated += step
            emit -= step
        while emit > 0 and self._pending_corr > 0:
            step = min(emit, self._pending_corr)
            self._pending_corr -= step
            self.emulated_cycles += step
            self.stats.correction_cycles_generated += step
            emit -= step

    def tick_n(self, count: int) -> None:
        """Advance *count* target clock cycles of generation at once.

        Exactly equivalent to *count* sequential :meth:`tick` calls —
        the packet-compiled execution backend uses it to coalesce the
        per-packet bookkeeping of straight-line code into one bulk
        update.  Integer rates keep the fractional accumulator at
        exactly ``0.0``, so the per-tick loop collapses to a closed
        form; fractional rates replay the per-tick float sequence to
        stay bit-identical with the interpretive core.
        """
        if count <= 0:
            return
        if not (self._pending_main or self._pending_corr):
            self._accumulator = 0.0
            return
        if self.rate == int(self.rate) and self._accumulator == 0.0:
            remaining = int(self.rate) * count
            if self._pending_main:
                step = min(remaining, self._pending_main)
                self._pending_main -= step
                self.emulated_cycles += step
                self.stats.cycles_generated += step
                remaining -= step
            if remaining and self._pending_corr:
                step = min(remaining, self._pending_corr)
                self._pending_corr -= step
                self.emulated_cycles += step
                self.stats.correction_cycles_generated += step
            return
        for _ in range(count):
            self.tick()

    def flush(self) -> None:
        """Finish all pending generation instantly (used at halt).

        Also clears the fractional-rate accumulator: a flushed device
        is idle, and :meth:`tick`/:meth:`tick_n` reset the accumulator
        whenever generation is idle — leaving residue here would make a
        reused device's first post-flush ``tick_n`` skip the integer
        fast path and inherit phase from the previous run.
        """
        self.emulated_cycles += self._pending_main + self._pending_corr
        self.stats.cycles_generated += self._pending_main
        self.stats.correction_cycles_generated += self._pending_corr
        self._pending_main = 0
        self._pending_corr = 0
        self._accumulator = 0.0
