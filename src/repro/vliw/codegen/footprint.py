"""Shared-footprint analysis: how far can a core run provably private?

The multi-core lockstep contract pins every *shared-segment* access to
the round whose base cycle equals the accessing core's own cycle
count.  Everything else — ALU packets, plain memory, the per-core
peripheral partition — is core-local and schedule independent, so a
core that is provably inside private-only code can be granted a
**run-ahead window** of many cycles without any observable changing
(see :class:`~repro.vliw.sync.AdaptiveLockstepBarrier`).

This module computes the window-sizing bound: for every packet index
``p`` of a translated program, ``dist[p]`` is a conservative lower
bound on the number of packets (and therefore target cycles — every
packet costs at least one cycle) that execution starting at ``p`` can
retire before the *first possibly-shared access* could issue.

Conservatism
    A packet is *risky* when it carries any device-flagged access: the
    translator device-flags every IO-region and unknown-region access,
    so every access that could dynamically land in the shared window
    is risky (most risky packets are in fact private-partition traffic
    — UART, per-core timer, exit device — but the bound does not try
    to distinguish; it only has to be a lower bound).  ``dist`` is the
    shortest path to a risky packet over *every* statically possible
    control successor: fall-through, both arms of predicated branches,
    every indirect-branch landing site.

Safety
    The bound is a **sizing heuristic, not a soundness requirement**:
    run-ahead execution additionally enforces "no shared access inside
    a window" dynamically (compiled regions bail on shared addresses
    and on the run-ahead flag, interpreter hand-offs are deferred, the
    interpreter itself only steps packets inside the proven prefix).
    An overly tight ``dist`` costs speed, never correctness.

Results are cached on the program object (the analysis is pure and the
packet list is immutable after translation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.isa.c6x.instructions import TOp

#: bound reported for packets from which no risky packet is statically
#: reachable (e.g. a pure compute loop): effectively "run freely until
#: another core's bound, the cycle budget, or completion cuts in".
PRIVATE_CAP = 1 << 16


@dataclass(frozen=True)
class SharedFootprint:
    """Per-packet shared-access distance of one translated program."""

    #: ``risky[p]``: packet *p* carries a possibly-shared access
    risky: tuple
    #: ``dist[p]``: packets guaranteed retirable from *p* before the
    #: first possibly-shared access (0 when ``risky[p]``); capped at
    #: :data:`PRIVATE_CAP`
    dist: tuple

    @property
    def fully_private(self) -> bool:
        """True when no packet of the program is possibly-shared."""
        return not any(self.risky)

    def bound(self, pc: int) -> int:
        """The run-ahead bound starting at packet *pc* (0 off-program:
        the interpreter owns everything past the translated packets)."""
        if 0 <= pc < len(self.dist):
            return self.dist[pc]
        return 0


def _successors(program, branch_delay_slots: int) -> list[list[int]]:
    """Static control successors of every packet.

    Conservative in both directions that matter: a branch issued at
    packet ``i`` contributes its target as a successor of the
    *maturation* packet ``i + branch_delay_slots`` (the last packet to
    retire before the jump), predicated branches keep the fall-through
    edge, and indirect branches fan out to every translated landing
    site.  An unpredicated HALT terminates its path.
    """
    packets = program.packets
    n = len(packets)
    succ: list[list[int]] = [[] for _ in range(n)]
    indirect_sites = None
    for i, packet in enumerate(packets):
        halts = any(ins.op is TOp.HALT and ins.pred is None
                    for ins in packet.instrs)
        if not halts and i + 1 < n:
            succ[i].append(i + 1)
        for ins in packet.instrs:
            if ins.op is not TOp.B:
                continue
            mature = min(i + branch_delay_slots, n - 1)
            if ins.target is not None:
                succ[mature].append(program.label_packet(ins.target))
            else:
                if indirect_sites is None:
                    indirect_sites = sorted(
                        set(program.addr_to_packet.values()))
                succ[mature].extend(indirect_sites)
    return succ


def compute_footprint(program, branch_delay_slots: int) -> SharedFootprint:
    """Analyze *program* (uncached); prefer :func:`shared_footprint`."""
    packets = program.packets
    n = len(packets)
    risky = tuple(any(ins.device for ins in packet.instrs)
                  for packet in packets)
    succ = _successors(program, branch_delay_slots)
    # multi-source BFS on the reversed graph: dist[p] = packets between
    # p and the nearest risky packet along any static path
    pred: list[list[int]] = [[] for _ in range(n)]
    for i, outs in enumerate(succ):
        for j in outs:
            pred[j].append(i)
    dist = [PRIVATE_CAP] * n
    queue: deque[int] = deque()
    for i, is_risky in enumerate(risky):
        if is_risky:
            dist[i] = 0
            queue.append(i)
    while queue:
        j = queue.popleft()
        d = dist[j] + 1
        for i in pred[j]:
            if d < dist[i]:
                dist[i] = d
                queue.append(i)
    return SharedFootprint(risky=risky, dist=tuple(dist))


def shared_footprint(program, branch_delay_slots: int) -> SharedFootprint:
    """The (cached) shared-footprint analysis of *program*."""
    cache = getattr(program, "_shared_footprint", None)
    if cache is None:
        cache = {}
        program._shared_footprint = cache
    fp = cache.get(branch_delay_slots)
    if fp is None:
        fp = compute_footprint(program, branch_delay_slots)
        cache[branch_delay_slots] = fp
    return fp
