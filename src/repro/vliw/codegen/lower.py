"""Lowering: straight-line packet regions to backend-neutral Region IR.

This is the second translation stage of the packet-compiled backend
(the first is the binary translator itself, the third is a pluggable
emitter).  :class:`RegionLowerer` walks the packets of one region in
issue order and records every side effect as a typed
:mod:`~repro.vliw.codegen.ir` node — the exact semantics the
interpretive :class:`~repro.vliw.core.C6xCore` implements, restated
once, so that every emitter renders from the same source of truth:

* delay-slot writebacks are *placed*: a write maturing inside the
  region becomes a :class:`~repro.vliw.codegen.ir.Commit` on the packet
  where it lands; one maturing past an exit becomes a
  :class:`~repro.vliw.codegen.ir.Spill` of that exit's epilogue;
* same-packet zero-delay forwarding is resolved into operand tuples
  (``("var", m)`` / ``("cvar", m, p, n)``), mirroring the packet-order
  apply phase of the core;
* cycle and counter updates are batched: each exit's
  :class:`~repro.vliw.codegen.ir.Epilogue` carries the static counter
  prefixes at that point plus the pending bulk sync-device advance;
* device packets keep their exact dispatch shape: tick barrier, the
  blocking-read stall loop, the shared-window guard that bails to the
  interpreter (multi-core lockstep), and the exit-device check after
  stores;
* region exits become block-chain edges (static successors) or typed
  interpreter hand-offs.

Lowering is pure: it reads the program and the platform geometry
parameters and returns an immutable :class:`RegionIR`; nothing here
touches core state or generates host code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.isa.c6x.instructions import TOp
from repro.soc.bus import SharedIoMap
from repro.vliw.codegen.ir import (
    AluOp,
    BranchEnd,
    BranchSpill,
    Commit,
    CutEnd,
    DeviceLoad,
    DeviceStore,
    Epilogue,
    GuardCheck,
    HaltOp,
    IndirectBranch,
    InterpEnd,
    PacketIR,
    PlainLoad,
    PlainStore,
    PredDef,
    RegionIR,
    RegWrite,
    SharedGuard,
    Spill,
    StallCheck,
    StoreCheck,
)
from repro.vliw.core import _LOAD_SIZE, _STORE_SIZE

_STORE_OPS = frozenset(_STORE_SIZE)
_LOAD_OPS = frozenset(_LOAD_SIZE)

#: bridge-window offsets of the multi-core shared-device segment (the
#: layout is fixed — see :class:`~repro.soc.bus.SharedIoMap`)
_SHARED_LO = SharedIoMap().base
_SHARED_HI = SharedIoMap().end


@dataclass(frozen=True)
class LoweringParams:
    """The platform geometry generated code bakes in.

    The program-level region cache is keyed by the *stall* parameters;
    the memory and device-window geometry is a property of the target
    architecture and therefore of the program itself.
    """

    mem_base: int
    mem_len: int
    sync_base: int
    bridge_base: int
    sync_stall: int
    bridge_stall: int
    load_delay_slots: int
    mul_delay_slots: int
    branch_delay_slots: int


def params_for_core(core) -> LoweringParams:
    """The lowering parameters of one platform core."""
    target = core.target
    return LoweringParams(
        mem_base=core._mem_base,
        mem_len=len(core._mem),
        sync_base=target.sync_base,
        bridge_base=target.bridge_base,
        sync_stall=core.sync_access_stall,
        bridge_stall=core.bridge.access_stall,
        load_delay_slots=target.load_delay_slots,
        mul_delay_slots=target.mul_delay_slots,
        branch_delay_slots=target.branch_delay_slots,
    )


def packet_device_flags(program, pc0: int, n_packets: int) -> tuple:
    """Per-packet device flags of the region at *pc0*.

    ``flags[k]`` is True when packet ``pc0 + k`` carries at least one
    device-flagged access — the same test
    :meth:`RegionLowerer._lower_packet` uses to give a packet its
    dispatch shape.  The tiered backend's cold (interpreted) tier uses
    these to defer device packets at a lockstep-quantum boundary, the
    way ``run_slice`` defers individual interpreted packets, without
    lowering the region first.
    """
    packets = program.packets
    return tuple(
        any(i.device for i in packets[pc0 + k].instrs)
        for k in range(n_packets))


def _is_value_op(op: TOp) -> bool:
    """True if *op* produces a register result."""
    return op not in (TOp.B, TOp.HALT, TOp.NOP) and op not in _STORE_OPS


def lower_region(program, params: LoweringParams, pc0: int, n_packets: int,
                 end_kind: str, branch_off: int | None) -> RegionIR:
    """Lower the scanned region at packet *pc0* to Region IR."""
    return RegionLowerer(program, params, pc0, n_packets, end_kind,
                         branch_off).lower()


class RegionLowerer:
    """Lowers one region; see :func:`lower_region`."""

    def __init__(self, program, params: LoweringParams, pc0: int,
                 n_packets: int, end_kind: str,
                 branch_off: int | None) -> None:
        self.program = program
        self.params = params
        self.pc0 = pc0
        self.n_packets = n_packets
        self.end_kind = end_kind
        self.branch_off = branch_off
        #: commits carried into the region mature within this window
        self.entry_window = max(params.load_delay_slots,
                                params.mul_delay_slots) + 1
        #: delayed register writes: (mature_offset, dst, var, pred|None)
        self.writes: list[tuple[int, int, int, int | None]] = []
        # running static counters (prefix totals at the build point)
        self.st_instr = 0
        self.st_nop = 0
        self.st_src = 0
        self.ticks_flushed = 0
        # branch bookkeeping (filled while lowering the branch packet)
        self.branch_pred: int | None = None
        self.branch_static_target: int | None = None
        self.branch_index_var: int | None = None

    # -- helpers ---------------------------------------------------------

    def _delay(self, op: TOp) -> int:
        if op in _LOAD_OPS:
            return self.params.load_delay_slots
        if op is TOp.MPY:
            return self.params.mul_delay_slots
        return 0

    def _id(self, instr) -> int:
        return self._instr_ids[id(instr)]

    def _fwd(self, reg: int, instrs, pos: int) -> tuple:
        """Apply-time operand for *reg* at instruction *pos*.

        Mirrors the interpretive core: effects apply in packet order,
        so a zero-delay write by an earlier instruction of the same
        packet is visible to later stores / indirect branches.
        """
        for n in range(pos - 1, -1, -1):
            prev = instrs[n]
            if (prev.op is not TOp.NOP and _is_value_op(prev.op)
                    and prev.dst == reg and self._delay(prev.op) == 0):
                m = self._id(prev)
                if prev.pred is not None:
                    return ("cvar", m, m, reg)
                return ("var", m)
        return ("reg", reg)

    # -- epilogues -------------------------------------------------------

    def _epilogue(self, executed: int, commits_ran: int,
                  pc: int | None, pc_var: int | None,
                  pending_branch: bool) -> Epilogue:
        """Snapshot the batched state flush of one exit site."""
        spills = tuple(
            Spill(mature=mature, dst=dst, var=var, pred=pred)
            for mature, dst, var, pred in self.writes
            if mature >= commits_ran)
        branch = None
        if pending_branch and self.branch_off is not None:
            effective = (self.branch_off + 1
                         + self.params.branch_delay_slots)
            branch = BranchSpill(effective=effective, pred=self.branch_pred,
                                 target=self.branch_static_target,
                                 target_var=self.branch_index_var)
        return Epilogue(
            executed=executed, commits_ran=commits_ran, pc=pc, pc_var=pc_var,
            instr_static=self.st_instr, use_ci=self.uses_ci,
            nop_static=self.st_nop, use_cn=self.uses_cn,
            src_static=self.st_src,
            ticks=executed - self.ticks_flushed,
            spills=spills, branch=branch)

    def _bail(self, packet_offset: int) -> Epilogue:
        """Hand the current packet to the interpretive core untouched."""
        return self._epilogue(
            packet_offset, packet_offset + 1, self.pc0 + packet_offset, None,
            pending_branch=self._branch_in_flight_at(packet_offset))

    def _branch_in_flight_at(self, offset: int) -> bool:
        return self.branch_off is not None and self.branch_off < offset

    # -- main build ------------------------------------------------------

    def lower(self) -> RegionIR:
        packets = self.program.packets
        pc0 = self.pc0

        # number every instruction in the region for variable naming
        self._instr_ids: dict[int, int] = {}
        counter = 0
        for k in range(self.n_packets):
            for instr in packets[pc0 + k].instrs:
                self._instr_ids[id(instr)] = counter
                counter += 1

        self.uses_ci = any(
            i.pred is not None and i.op is not TOp.NOP
            for k in range(self.n_packets)
            for i in packets[pc0 + k].instrs)
        self.uses_cn = any(
            self._packet_runtime_nop(packets[pc0 + k])
            for k in range(self.n_packets))

        packet_irs = tuple(self._lower_packet(k)
                           for k in range(self.n_packets))
        end = self._lower_end()
        chain: list[int] = []
        if isinstance(end, BranchEnd):
            if end.target is not None:
                chain.append(end.target)
            if end.fallthrough is not None:
                chain.append(end.fall_pc)
        elif isinstance(end, CutEnd):
            chain.append(end.chain_pc)

        p = self.params
        return RegionIR(
            pc0=pc0, n_packets=self.n_packets, end_kind=self.end_kind,
            entry_window=self.entry_window,
            use_ci=self.uses_ci, use_cn=self.uses_cn,
            packets=packet_irs, end=end, chain_targets=tuple(chain),
            mem_base=p.mem_base, mem_len=p.mem_len,
            sync_base=p.sync_base, bridge_base=p.bridge_base,
            sync_stall=p.sync_stall, bridge_stall=p.bridge_stall)

    @staticmethod
    def _packet_runtime_nop(packet) -> bool:
        """True if the packet's action count is predicate-dependent."""
        real = [i for i in packet.instrs if i.op is not TOp.NOP]
        return bool(real) and all(i.pred is not None for i in real)

    # -- per-packet lowering ---------------------------------------------

    def _lower_packet(self, k: int) -> PacketIR:
        idx = self.pc0 + k
        packet = self.program.packets[idx]
        instrs = packet.instrs
        device = any(i.device for i in instrs)

        # 1. writeback commits due at this packet's issue point
        entry_commit = k < self.entry_window
        commits = tuple(Commit(dst=dst, var=var, pred=pred)
                        for mature, dst, var, pred in self.writes
                        if mature == k)

        real = [i for i in instrs if i.op is not TOp.NOP]
        empty = PacketIR(
            index=idx, offset=k, entry_commit=entry_commit, commits=commits,
            device=device, guard=None, tick_flush=0, stall_checks=(),
            preds=(), values=(), store_checks=(), block=None, ci_preds=(),
            static_instr=0, static_nop=False, cn_preds=(), applies=(),
            device_tick=False, exit_check=None, halt_exit=None)

        # 2a. shared-segment guard: a device access landing in the
        #     multi-core shared window must run on the interpretive
        #     core (single-packet lockstep granularity), so the packet
        #     bails *before* any of its accesses execute
        guard = None
        if device:
            guard = self._lower_shared_guard(k, instrs)
            if guard is not None and not guard.checks:
                # the packet unconditionally bails; the rest is dead
                return replace(empty, guard=guard)

        # 2. device packets are tick barriers: flush batched ticks, then
        #    replicate the interpreter's blocking-read stall loop
        tick_flush = 0
        stall_checks: tuple[StallCheck, ...] = ()
        if device:
            tick_flush = max(k - self.ticks_flushed, 0)
            self.ticks_flushed = k
            stall_checks = tuple(
                StallCheck(m=self._id(i), src1=i.src1, imm=i.imm or 0,
                           pred_reg=i.pred, pred_sense=i.pred_sense)
                for i in instrs if i.op in _LOAD_OPS)

        # 3. phase A1: predicates (pre-packet register state)
        preds = tuple(PredDef(var=self._id(i), reg=i.pred,
                              sense=i.pred_sense)
                      for i in real if i.pred is not None)

        # 4. phase A2: values (loads carry their memory dispatch)
        values: list = []
        for instr in real:
            if not _is_value_op(instr.op):
                continue
            m = self._id(instr)
            pred = m if instr.pred is not None else None
            if instr.op in _LOAD_OPS:
                if device:
                    values.append(DeviceLoad(var=m, op=instr.op,
                                             src1=instr.src1,
                                             imm=instr.imm or 0, pred=pred))
                else:
                    values.append(PlainLoad(var=m, op=instr.op,
                                            src1=instr.src1,
                                            imm=instr.imm or 0, pred=pred,
                                            bail=self._bail(k)))
            else:
                values.append(AluOp(var=m, op=instr.op, dst=instr.dst,
                                    src1=instr.src1, src2=instr.src2,
                                    imm=instr.imm, pred=pred))

        # 5. phase A3: plain-store range checks (apply-time bases); the
        #    generic dispatch of device packets needs no pre-check
        store_checks: list[StoreCheck] = []
        if not device:
            for pos, instr in enumerate(instrs):
                if instr.op not in _STORE_OPS:
                    continue
                m = self._id(instr)
                store_checks.append(StoreCheck(
                    m=m, base=self._fwd(instr.src2, instrs, pos),
                    imm=instr.imm or 0, size=_STORE_SIZE[instr.op],
                    pred=m if instr.pred is not None else None,
                    bail=self._bail(k)))

        # 6. per-block stats at translated block heads — placed after
        #    every bail point, so a bailed packet's block statistics are
        #    counted only once, by the interpreter's re-execution
        block = None
        info = self.program.block_at.get(idx)
        if info is not None:
            self.st_src += info.n_instructions
            block = (info.source_addr, info.n_instructions)

        # 7. phase A4: execution counters (after every possible bail)
        ci_preds: list[int] = []
        static_instr = 0
        for instr in real:
            if instr.pred is not None:
                ci_preds.append(self._id(instr))
            else:
                static_instr += 1
        self.st_instr += static_instr
        static_nop = not real
        cn_preds: tuple[int, ...] = ()
        if static_nop:
            self.st_nop += 1
        elif all(i.pred is not None for i in real):
            cn_preds = tuple(self._id(i) for i in real)

        # 8. phase B: apply effects in packet order
        applies: list = []
        packet_has_halt = False
        halt_unpred = False
        has_store = False
        for pos, instr in enumerate(instrs):
            op = instr.op
            if op is TOp.NOP:
                continue
            m = self._id(instr)
            pred = m if instr.pred is not None else None
            if op is TOp.HALT:
                packet_has_halt = True
                halt_unpred = halt_unpred or pred is None
                applies.append(HaltOp(pred=pred))
                continue
            if op is TOp.B:
                self.branch_pred = pred
                if instr.target is not None:
                    self.branch_static_target = self.program.label_packet(
                        instr.target)
                    continue
                applies.append(IndirectBranch(
                    m=m, value=self._fwd(instr.src1, instrs, pos),
                    pred=pred))
                self.branch_index_var = m
                continue
            if op in _STORE_OPS:
                has_store = True
                size = _STORE_SIZE[op]
                val = self._fwd(instr.src1, instrs, pos)
                if device:
                    applies.append(DeviceStore(
                        m=m, base=self._fwd(instr.src2, instrs, pos),
                        val=val, imm=instr.imm or 0, size=size, pred=pred))
                else:
                    applies.append(PlainStore(m=m, val=val, size=size,
                                              pred=pred))
                continue
            # register write
            delay = self._delay(op)
            if delay == 0:
                applies.append(RegWrite(dst=instr.dst, var=m, pred=pred))
            else:
                self.writes.append((k + 1 + delay, instr.dst, m, pred))

        # 9. a device packet ticks immediately (order vs. device writes
        #    matters); pure packets batch their tick into the epilogue
        exit_check = None
        if device:
            self.ticks_flushed = k + 1
            if has_store:
                # a bridge store may have hit the exit device: stop at
                # this packet, exactly like the interpretive run loop
                exit_check = self._epilogue(
                    k + 1, k + 1, self.pc0 + k + 1, None,
                    pending_branch=self._branch_in_flight_at(k + 1))

        # 10. conditional halt exit
        halt_exit = None
        if packet_has_halt:
            halt_exit = (halt_unpred, self._epilogue(
                k + 1, k + 1, self.pc0 + k + 1, None,
                pending_branch=self._branch_in_flight_at(k + 1)))

        return PacketIR(
            index=idx, offset=k, entry_commit=entry_commit, commits=commits,
            device=device, guard=guard, tick_flush=tick_flush,
            stall_checks=stall_checks, preds=preds, values=tuple(values),
            store_checks=tuple(store_checks), block=block,
            ci_preds=tuple(ci_preds), static_instr=static_instr,
            static_nop=static_nop, cn_preds=cn_preds,
            applies=tuple(applies), device_tick=device,
            exit_check=exit_check, halt_exit=halt_exit)

    def _lower_shared_guard(self, k: int, instrs) -> SharedGuard | None:
        """Guard a device packet against shared-segment addresses.

        One pre-access check per memory operation, evaluated against
        post-commit (pre-execution) register state — the same state the
        interpreter would re-execute the packet from.  ``checks``
        coming back empty means the packet must *always* run
        interpreted (a store address depends on a same-packet result,
        so it cannot be pre-computed here).
        """
        checks: list[GuardCheck] = []
        for pos, instr in enumerate(instrs):
            if instr.op in _LOAD_OPS:
                base = ("reg", instr.src1)
            elif instr.op in _STORE_OPS:
                base = self._fwd(instr.src2, instrs, pos)
                if base[0] != "reg":
                    return SharedGuard(checks=(), bail=self._bail(k))
            else:
                continue
            checks.append(GuardCheck(base=base, imm=instr.imm or 0,
                                     pred_reg=instr.pred,
                                     pred_sense=instr.pred_sense))
        if not checks:
            return None
        return SharedGuard(checks=tuple(checks), bail=self._bail(k))

    # -- region end ------------------------------------------------------

    def _lower_end(self) -> BranchEnd | CutEnd | InterpEnd | None:
        K = self.n_packets
        pc_fall = self.pc0 + K
        if self.end_kind == "halt":
            # the halt exit lowered inside the packet already returned
            return None
        if self.end_kind == "branch":
            target = self.branch_static_target
            var = self.branch_index_var
            taken = self._epilogue(K, K, target, var, pending_branch=False)
            fallthrough = None
            if self.branch_pred is not None:
                fallthrough = self._epilogue(K, K, pc_fall, None,
                                             pending_branch=False)
            return BranchEnd(pred=self.branch_pred, target=target,
                             target_var=var, taken=taken,
                             fallthrough=fallthrough, fall_pc=pc_fall)
        if self.end_kind == "cut":
            return CutEnd(epilogue=self._epilogue(K, K, pc_fall, None,
                                                  pending_branch=False),
                          chain_pc=pc_fall)
        # 'interp': a second in-flight branch or the end of the program
        return InterpEnd(epilogue=self._epilogue(
            K, K, pc_fall, None,
            pending_branch=self.branch_off is not None))
