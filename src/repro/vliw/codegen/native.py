"""Native backend runtime: compile, cache, load and drive C regions.

:mod:`~repro.vliw.codegen.emit_c` renders regions to one C99
translation unit per (program, stall parameters); this module turns
that source into running code:

* **Toolchain discovery** — ``$REPRO_CC`` / ``$CC`` or the first of
  ``cc``/``gcc``/``clang``/``tcc`` that passes a probe compile,
  memoized per process.  ``REPRO_NATIVE=0`` disables the native path
  entirely; with no working toolchain the native backend silently
  renders every region through the Python emitter instead — same
  observables, no hard dependency.
* **Disk cache** — shared objects are content-addressed by the SHA-256
  of the generated C (which is itself a deterministic function of the
  Region IR set) plus the ABI revision, under ``$REPRO_NATIVE_CACHE``
  or ``~/.cache/repro-cabt/native``.  A second process — or a sharded
  evaluation worker — finds the parent's build and only ``dlopen``\\ s;
  a worker on a cold cache re-emits from the IR shipped with the
  pickled program and rebuilds.  Writes are atomic (temp + rename), so
  concurrent builders race harmlessly.
* **Bindings** — cffi in ABI mode when importable (faster calls),
  ctypes otherwise.  Both operate **in place** on the core's register
  file (an ``array('I')`` by construction) and data memory, so both
  buffers cross the FFI boundary without copying.
* **Wrappers** — each superblock *entry* gets a small Python closure
  obeying the dispatch contract of :mod:`repro.vliw.compiled` (return
  the next region's callable, ``INTERP``, or ``None``).  Per call the
  wrapper loads the sync-device mirror, the in-flight writebacks and
  the remaining lockstep-quantum budget into the ABI struct, calls the
  C function — which may chain through many member regions internally
  — then stores the mirror back (all exit paths: the device mutates
  exactly as far as the interpreter's would), applies the accumulated
  totals (statistics, dirty block-site counters, stall charges, the
  rebased in-flight set and pending branch) and chains.  A member that
  keeps bailing — bus-bridge traffic in a loop — is *demoted*: its bit
  in the module-wide ``sb_off`` bitmap turns every native entry and
  internal chain edge into an exit, and its Python rendering (which
  dispatches device accesses inline) takes over, so steady-state
  performance is never worse than the packet compiler's.  The bail
  threshold is :data:`BAIL_SWITCH` unless the compiler's
  :class:`~repro.vliw.codegen.tiering.TierConfig` overrides it.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile

from repro.errors import BusError, SimulationError
from repro.vliw.codegen.emit_c import (
    ABI_VERSION,
    CEmitter,
    KIND_BADBRANCH,
    KIND_BAIL,
    KIND_BUSERR_LOAD,
    KIND_BUSERR_STORE,
    KIND_CHAIN,
    KIND_ERROR_BASE,
    KIND_HALT,
    KIND_INFLIGHT_OVF,
    KIND_SYNC_BADREAD,
    KIND_SYNC_BADWRITE,
    KIND_SYNC_PROTO_CORR,
    KIND_SYNC_PROTO_MAIN,
    RIO_STRUCT,
)
from repro.vliw.codegen.ir import RegionIR

#: bails after which a native member demotes to its Python rendering
#: (the default demotion rung of the tier ladder; a compiler's
#: :class:`~repro.vliw.codegen.tiering.TierConfig` may override it)
BAIL_SWITCH = 16

#: probe program for toolchain discovery
_PROBE = "int _repro_probe(int x) { return x + 1; }\n"

#: per-process toolchain memo: unset / None (unavailable) / path
_TOOLCHAIN: list = []

#: per-process loaded modules, keyed by content digest
_LOADED: dict[str, object] = {}


def native_disabled() -> bool:
    return os.environ.get("REPRO_NATIVE", "").lower() in ("0", "off", "no")


def cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-cabt",
                        "native")


def toolchain() -> str | None:
    """Path of a working C compiler, or None (memoized per process).

    Pure probe: deliberately independent of ``REPRO_NATIVE`` (which is
    re-checked on every :meth:`NativeContext.attach`, so toggling the
    kill switch mid-process behaves), and not required at all when the
    module is already in the disk cache — use :func:`native_available`
    for "could the native backend produce C-backed regions right now".
    """
    if _TOOLCHAIN:
        return _TOOLCHAIN[0]
    found = None
    candidates = [os.environ.get("REPRO_CC"), os.environ.get("CC"),
                  "cc", "gcc", "clang", "tcc"]
    for candidate in candidates:
        if not candidate:
            continue
        path = shutil.which(candidate)
        if path and _probe(path):
            found = path
            break
    _TOOLCHAIN.append(found)
    return found


def native_available() -> bool:
    """True if ``backend="native"`` can compile regions to C *now*.

    The test suites skip C-path assertions on this (a warm disk cache
    can still serve prebuilt modules without a toolchain, but that is
    opportunistic, not something to assert on).
    """
    return not native_disabled() and toolchain() is not None


def _probe(cc: str) -> bool:
    """One throwaway shared-object build proves the toolchain works."""
    workdir = tempfile.mkdtemp(prefix="repro-cc-probe-")
    try:
        src = os.path.join(workdir, "probe.c")
        out = os.path.join(workdir, "probe.so")
        with open(src, "w") as handle:
            handle.write(_PROBE)
        result = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-std=c99", src, "-o", out],
            capture_output=True, timeout=60)
        return result.returncode == 0 and os.path.exists(out)
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def source_digest(c_source: str) -> str:
    """Content address of one module: generated C + ABI revision."""
    blob = f"abi{ABI_VERSION}\n{c_source}".encode()
    return hashlib.sha256(blob).hexdigest()


def build_shared(c_source: str, digest: str | None = None) -> str | None:
    """Compile *c_source* into the disk cache; returns the .so path.

    Cache hits skip the compiler entirely, so a host without a
    toolchain can still run modules built earlier (or elsewhere on a
    shared cache).  Returns None when the module is not cached and no
    toolchain is available or the build fails.
    """
    digest = digest or source_digest(c_source)
    directory = cache_dir()
    so_path = os.path.join(directory, f"{digest}.so")
    if os.path.exists(so_path):
        return so_path
    cc = toolchain()
    if cc is None:
        return None
    try:
        os.makedirs(directory, exist_ok=True)
        c_path = os.path.join(directory, f"{digest}.c")
        fd, tmp_c = tempfile.mkstemp(dir=directory, suffix=".c")
        with os.fdopen(fd, "w") as handle:
            handle.write(c_source)
        os.replace(tmp_c, c_path)
        fd, tmp_so = tempfile.mkstemp(dir=directory, suffix=".so")
        os.close(fd)
        result = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-std=c99", c_path,
             "-o", tmp_so],
            capture_output=True, timeout=300)
        if result.returncode != 0:
            os.unlink(tmp_so)
            return None
        os.replace(tmp_so, so_path)
        return so_path
    except (OSError, subprocess.SubprocessError):
        return None


# -- FFI bindings ------------------------------------------------------------


class CffiBinding:
    """cffi ABI-mode binding of one compiled module (preferred)."""

    kind = "cffi"

    def __init__(self, so_path: str, symbols) -> None:
        import cffi

        ffi = cffi.FFI()
        decls = "".join(
            f"int32_t {symbol}(uint32_t *regs, uint8_t *mem, rio_t *io);\n"
            for symbol in symbols)
        ffi.cdef(RIO_STRUCT + decls)
        self.ffi = ffi
        self.lib = ffi.dlopen(so_path)

    def fn(self, symbol: str):
        return getattr(self.lib, symbol)

    def new_io(self):
        return self.ffi.new("rio_t *")

    def u32_buffer(self, obj):
        return self.ffi.from_buffer("uint32_t[]", obj,
                                    require_writable=True)

    def u8_buffer(self, obj):
        return self.ffi.from_buffer("uint8_t[]", obj, require_writable=True)

    def set_a2p(self, io, addrs, idxs) -> tuple:
        """Install the landing map; returns refs the caller must hold."""
        if not addrs:
            io.a2p_n = 0
            io.a2p_addr = self.ffi.NULL
            io.a2p_idx = self.ffi.NULL
            return ()
        addr_arr = self.ffi.new("uint32_t[]", addrs)
        idx_arr = self.ffi.new("int32_t[]", idxs)
        io.a2p_n = len(addrs)
        io.a2p_addr = addr_arr
        io.a2p_idx = idx_arr
        return (addr_arr, idx_arr)

    def u8_array(self, n: int):
        return self.ffi.new("uint8_t[]", max(n, 1))

    def i64_array(self, n: int):
        return self.ffi.new("int64_t[]", max(n, 1))

    def i32_array(self, n: int):
        return self.ffi.new("int32_t[]", max(n, 1))

    def set_sb(self, io, off, blk, blk_dirty) -> None:
        """Install the module-wide superblock state arrays."""
        io.sb_off = off
        io.blk = blk
        io.blk_dirty = blk_dirty


class CtypesBinding:
    """ctypes binding: always available, slightly slower calls."""

    kind = "ctypes"

    def __init__(self, so_path: str, symbols) -> None:
        import ctypes

        from repro.vliw.codegen.emit_c import IN_MAX, SPILL_MAX

        class Rio(ctypes.Structure):
            _fields_ = [
                ("in_n", ctypes.c_int32),
                ("in_reg", ctypes.c_int32 * IN_MAX),
                ("in_mat", ctypes.c_int32 * IN_MAX),
                ("in_val", ctypes.c_uint32 * IN_MAX),
                ("a2p_n", ctypes.c_int32),
                ("a2p_addr", ctypes.POINTER(ctypes.c_uint32)),
                ("a2p_idx", ctypes.POINTER(ctypes.c_int32)),
                ("sb_off", ctypes.POINTER(ctypes.c_uint8)),
                ("blk", ctypes.POINTER(ctypes.c_int64)),
                ("blk_dirty", ctypes.POINTER(ctypes.c_int32)),
                ("kind", ctypes.c_int32),
                ("next_pc", ctypes.c_int32),
                ("sb_pc", ctypes.c_int32),
                ("aux", ctypes.c_uint32),
                ("blocks_done", ctypes.c_int32),
                ("n_spill", ctypes.c_int32),
                ("spill_reg", ctypes.c_int32 * SPILL_MAX),
                ("spill_mat", ctypes.c_int32 * SPILL_MAX),
                ("spill_val", ctypes.c_uint32 * SPILL_MAX),
                ("pb", ctypes.c_int32),
                ("pb_mat", ctypes.c_int32),
                ("pb_target", ctypes.c_int32),
                ("budget", ctypes.c_int64),
                ("executed_total", ctypes.c_int64),
                ("instr_total", ctypes.c_int64),
                ("nop_total", ctypes.c_int64),
                ("src_total", ctypes.c_int64),
                ("sync_stall", ctypes.c_int64),
                ("sync_rate", ctypes.c_double),
                ("sync_acc", ctypes.c_double),
                ("sync_pending_main", ctypes.c_int64),
                ("sync_pending_corr", ctypes.c_int64),
                ("sync_emulated", ctypes.c_int64),
                ("sync_blocks_started", ctypes.c_int64),
                ("sync_corrections_started", ctypes.c_int64),
                ("sync_cycles_generated", ctypes.c_int64),
                ("sync_corr_cycles_generated", ctypes.c_int64),
            ]

        self._ctypes = ctypes
        self._rio = Rio
        self.lib = ctypes.CDLL(so_path)
        argtypes = [ctypes.POINTER(ctypes.c_uint32),
                    ctypes.POINTER(ctypes.c_ubyte), ctypes.POINTER(Rio)]
        for symbol in symbols:
            fn = getattr(self.lib, symbol)
            fn.restype = ctypes.c_int32
            fn.argtypes = argtypes

    def fn(self, symbol: str):
        return getattr(self.lib, symbol)

    def new_io(self):
        return self._rio()

    def u32_buffer(self, obj):
        return (self._ctypes.c_uint32 * len(obj)).from_buffer(obj)

    def u8_buffer(self, obj):
        return (self._ctypes.c_ubyte * len(obj)).from_buffer(obj)

    def set_a2p(self, io, addrs, idxs) -> tuple:
        ctypes = self._ctypes
        if not addrs:
            io.a2p_n = 0
            return ()
        addr_arr = (ctypes.c_uint32 * len(addrs))(*addrs)
        idx_arr = (ctypes.c_int32 * len(idxs))(*idxs)
        io.a2p_n = len(addrs)
        io.a2p_addr = ctypes.cast(addr_arr, ctypes.POINTER(ctypes.c_uint32))
        io.a2p_idx = ctypes.cast(idx_arr, ctypes.POINTER(ctypes.c_int32))
        return (addr_arr, idx_arr)

    def u8_array(self, n: int):
        return (self._ctypes.c_uint8 * max(n, 1))()

    def i64_array(self, n: int):
        return (self._ctypes.c_int64 * max(n, 1))()

    def i32_array(self, n: int):
        return (self._ctypes.c_int32 * max(n, 1))()

    def set_sb(self, io, off, blk, blk_dirty) -> None:
        ctypes = self._ctypes
        io.sb_off = ctypes.cast(off, ctypes.POINTER(ctypes.c_uint8))
        io.blk = ctypes.cast(blk, ctypes.POINTER(ctypes.c_int64))
        io.blk_dirty = ctypes.cast(blk_dirty,
                                   ctypes.POINTER(ctypes.c_int32))


def _load_binding(so_path: str, symbols):
    """cffi if importable, ctypes otherwise."""
    try:
        return CffiBinding(so_path, symbols)
    except ImportError:
        return CtypesBinding(so_path, symbols)


# -- the per-compiler context ------------------------------------------------


class NativeContext:
    """Native execution state of one :class:`PacketCompiler`.

    Owns the loaded module, the core's FFI buffers and the per-region
    wrapper cache.  Construction is all-or-nothing per *module*; region
    coverage is partial by design — :meth:`wrapper_for` returns None
    for regions the module does not contain (declined shapes, entries
    discovered only at run time), and the compiler falls back to the
    Python emitter for exactly those.
    """

    @classmethod
    def attach(cls, compiler) -> "NativeContext | None":
        """Build or load the native module for *compiler*'s program.

        Returns None — native off, Python emitter everywhere — when the
        native path is disabled, no region compiled, or neither a
        cached shared object nor a working toolchain is available.
        """
        if native_disabled():
            return None
        program = compiler.program
        plans = getattr(program, "_native_plans", None)
        if plans is None:
            plans = {}
            program._native_plans = plans
        plan_entry = plans.get(compiler.cache_params)
        landing = tuple(sorted(program.addr_to_packet.values()))
        source = None
        if plan_entry is None:
            # emitting the module is pure Python: do it even without a
            # toolchain, because a warm disk cache can serve the .so
            # compiler-free (build_shared only compiles on a miss)
            source, plan = CEmitter().emit_module(
                cls._module_irs(compiler), landing)
            digest = source_digest(source)
            plans[compiler.cache_params] = (digest, plan)
        else:
            digest, plan = plan_entry
        if not plan:
            return None
        binding = _LOADED.get(digest)
        if binding is None:
            so_path = os.path.join(cache_dir(), f"{digest}.so")
            if not os.path.exists(so_path):
                if toolchain() is None:
                    return None
                if source is None:
                    # cold cache (e.g. a worker on a fresh cache dir):
                    # rebuild from the IR shipped with the program
                    source, plan = CEmitter().emit_module(
                        cls._module_irs(compiler), landing)
                    if source_digest(source) != digest:
                        return None  # pragma: no cover - caches in sync
                so_path = build_shared(source, digest)
                if so_path is None:
                    return None
            binding = _load_binding(so_path, plan.symbols())
            _LOADED[digest] = binding
        return cls(compiler, binding, plan)

    @staticmethod
    def _module_irs(compiler) -> list[RegionIR]:
        compiler.precompile()
        return [ir for ir in compiler._ir_cache.values() if ir is not None]

    def __init__(self, compiler, binding, plan) -> None:
        self.compiler = compiler
        self.binding = binding
        #: the :class:`~repro.vliw.codegen.trace.ModulePlan`
        self.plan = plan
        core = compiler.core
        # C6xCore guarantees buffer-protocol register storage from
        # construction; replacing the object here instead would strand
        # every Python-emitted region exec'd before a mid-run attach
        # (backend="tiered" attaches at the first native promotion) on
        # a dead snapshot of the register file
        self.regs_buf = binding.u32_buffer(core.regs)
        self.mem_buf = binding.u8_buffer(core._mem)
        self.io = binding.new_io()
        self.io.sync_rate = core.sync.rate
        landing = sorted(compiler.program.addr_to_packet.items())
        self._a2p_refs = binding.set_a2p(
            self.io, [addr for addr, _ in landing],
            [index for _, index in landing])
        # module-wide superblock state the generated C indexes: the
        # per-member demotion bitmap, the block-site counters and their
        # dirty list (wrapper folds + zeroes touched sites per call)
        self._off = binding.u8_array(plan.n_members)
        self._blk = binding.i64_array(len(plan.block_sites))
        self._blk_dirty = binding.i32_array(len(plan.block_sites))
        binding.set_sb(self.io, self._off, self._blk, self._blk_dirty)
        #: entry pc -> (wrapper, fallback cell) of built wrappers
        self._wrappers: dict[int, tuple] = {}
        #: interpreter bails per member entry (demotion attribution)
        self._bails: dict[int, int] = {}
        self._demoted: set[int] = set()
        #: superblock entries this core actually runs natively
        self.regions_native = 0
        #: native members demoted to their Python rendering at run time
        self.regions_demoted = 0

    @property
    def n_native_regions(self) -> int:
        """Region entries of the program's module compiled to C."""
        return len(self.plan)

    def wrapper_for(self, pc0: int):
        """The dispatch-contract callable for superblock entry *pc0*."""
        if pc0 in self._demoted:
            return None
        entry = self.plan.entry(pc0)
        if entry is None:
            return None
        cached = self._wrappers.get(pc0)
        if cached is None:
            fallback: list = [None]
            wrapper = self._make_wrapper(pc0, self.binding.fn(entry[0]),
                                         fallback)
            cached = (wrapper, fallback)
            self._wrappers[pc0] = cached
            self.regions_native += 1
        return cached[0]

    def _bail_switch(self) -> int:
        tier = getattr(self.compiler, "tier", None)
        if tier is not None and tier.demote_bails is not None:
            return tier.demote_bails
        return BAIL_SWITCH  # module global: patchable in tests

    def _count_bail(self, pc0: int) -> None:
        """One interpreter bail attributed to member entry *pc0*."""
        bails = self._bails.get(pc0, 0) + 1
        self._bails[pc0] = bails
        if bails >= self._bail_switch() and pc0 not in self._demoted:
            self.demote(pc0)

    def demote(self, pc0: int) -> None:
        """Retire member *pc0* from native execution for good.

        Bridge-window traffic in a loop: the member is
        interpreter-bound, so its Python rendering (which dispatches
        device accesses inline) wins.  Setting its bit in the
        module-wide ``sb_off`` bitmap turns every native dispatch and
        internal chain edge into an exit; the block-function cache and
        any stale wrapper reference (via its fallback cell) swap to the
        Python rendering for every future entry.
        """
        self._demoted.add(pc0)
        entry = self.plan.entry(pc0)
        if entry is not None:
            self._off[entry[1]] = 1
        python_fn = self.compiler._python_region(pc0)
        cached = self._wrappers.get(pc0)
        if cached is not None:
            cached[1][0] = python_fn
        self.compiler._fns[pc0] = python_fn
        self.regions_demoted += 1

    def _make_wrapper(self, pc0: int, cfun, fallback: list):
        """Close the Python half of one superblock entry over the core.

        The C function chains internally through member regions and
        reports accumulated totals, so the wrapper needs no per-region
        prefix tables: it syncs the sync-device mirror, folds the dirty
        block-site counters, applies the totals and the rebased
        in-flight set, and follows the exit kind.
        """
        from repro.vliw.compiled import INTERP

        context = self
        compiler = self.compiler
        core = compiler.core
        stats = core.stats
        sync = core.sync
        sync_stats = sync.stats
        bex = stats.block_executions
        goto = compiler.function_for
        io = self.io
        regs_buf = self.regs_buf
        mem_buf = self.mem_buf
        blk = self._blk
        blk_dirty = self._blk_dirty
        block_sites = self.plan.block_sites
        limit_cell = compiler._limit

        def region():
            python_fn = fallback[0]
            if python_fn is not None:
                return python_fn()
            inflight = core._inflight
            ii0 = core._issue_index
            n_in = 0
            for reg, (ready, value) in inflight.items():
                io.in_reg[n_in] = reg
                io.in_mat[n_in] = ready - ii0
                io.in_val[n_in] = value
                n_in += 1
            io.in_n = n_in
            io.blocks_done = 0
            io.sync_stall = 0
            io.executed_total = 0
            io.instr_total = 0
            io.nop_total = 0
            io.src_total = 0
            io.sb_pc = pc0
            io.budget = limit_cell[0] - core.cycles
            io.sync_acc = sync._accumulator
            io.sync_pending_main = sync._pending_main
            io.sync_pending_corr = sync._pending_corr
            io.sync_emulated = sync.emulated_cycles
            io.sync_blocks_started = sync_stats.blocks_started
            io.sync_corrections_started = sync_stats.corrections_started
            io.sync_cycles_generated = sync_stats.cycles_generated
            io.sync_corr_cycles_generated = (
                sync_stats.correction_cycles_generated)
            kind = cfun(regs_buf, mem_buf, io)
            # the device mutated exactly as far as the interpreter's
            # would — store the mirror back on every exit path
            sync._accumulator = io.sync_acc
            sync._pending_main = io.sync_pending_main
            sync._pending_corr = io.sync_pending_corr
            sync.emulated_cycles = io.sync_emulated
            sync_stats.blocks_started = io.sync_blocks_started
            sync_stats.corrections_started = io.sync_corrections_started
            sync_stats.cycles_generated = io.sync_cycles_generated
            sync_stats.correction_cycles_generated = (
                io.sync_corr_cycles_generated)
            stall = io.sync_stall
            if stall:
                core._stall_cycles += stall
                stats.sync_stall_cycles += stall
            for i in range(io.blocks_done):
                site = blk_dirty[i]
                bex[block_sites[site]] = (
                    bex.get(block_sites[site], 0) + blk[site])
                blk[site] = 0
            executed = io.executed_total
            ii = ii0 + executed
            core._issue_index = ii
            stats.packets_issued += executed
            stats.instructions_executed += io.instr_total
            if io.nop_total:
                stats.nop_packets += io.nop_total
            if io.src_total:
                stats.source_instructions += io.src_total
            # the C side rebased the resident in-flight set at every
            # member exit (commit-window drop + spill fold): replace
            # the dict with it wholesale
            if n_in or io.in_n:
                inflight.clear()
                for i in range(io.in_n):
                    inflight[io.in_reg[i]] = (ii + io.in_mat[i],
                                              io.in_val[i])
            if kind >= KIND_ERROR_BASE:
                # internally chained members that completed contributed
                # their totals above; the erroring member contributed
                # nothing (same contract as the packet-compiled backend)
                _raise_native_error(kind, io.aux)
            if io.pb:
                core._pending_branch = (ii + io.pb_mat, io.pb_target)
            next_pc = io.next_pc
            if kind == KIND_CHAIN:
                if executed == 0 and next_pc == pc0:
                    # stale reference to a demoted entry: no progress
                    # was made; hand the packet to the interpreter
                    return INTERP
                core.pc = next_pc
                return goto(next_pc)
            core.pc = next_pc
            if kind == KIND_HALT:
                core.halted = True
                return None
            if kind == KIND_BAIL:
                context._count_bail(io.sb_pc)
                if core._pending_branch is None:
                    # inline shared-access hand-off: chain into the
                    # Python rendering of the bailing device packet
                    # (inline arbitration, identical semantics) instead
                    # of the interpreter — the dispatch loop still
                    # applies its quantum/run-ahead checks before
                    # calling it, so deferral behavior is unchanged
                    handoff = compiler.inline_entry_fn(next_pc)
                    if handoff is not None:
                        return handoff
            return INTERP  # KIND_INTERP / KIND_BAIL

        region.__name__ = f"_native_superblock_{pc0}"
        return region


def _raise_native_error(kind: int, aux: int):
    """Re-raise the interpreter's exact exception for an error kind."""
    if kind == KIND_BADBRANCH:
        raise SimulationError(
            f"indirect branch to untranslated source address {aux:#010x}")
    if kind == KIND_BUSERR_LOAD:
        raise BusError("target load outside memory", aux)
    if kind == KIND_BUSERR_STORE:
        raise BusError("target store outside memory", aux)
    if kind == KIND_SYNC_BADWRITE:
        raise SimulationError(
            f"invalid sync-device register write at offset {aux:#x}")
    if kind == KIND_SYNC_BADREAD:
        raise SimulationError(
            f"invalid sync-device register read at offset {aux:#x}")
    if kind == KIND_SYNC_PROTO_MAIN:
        raise SimulationError(
            "sync-device protocol violation: new cycle generation "
            "started while the previous block is still generating "
            "(missing sync wait — translator bug)")
    if kind == KIND_SYNC_PROTO_CORR:
        raise SimulationError(
            "sync-device protocol violation: correction generation "
            "already running")
    if kind == KIND_INFLIGHT_OVF:
        raise SimulationError(
            "in-flight writeback overflow in native superblock "
            "(WAW scheduler hazard)")
    raise SimulationError(
        f"native region returned unknown exit kind {kind}")
