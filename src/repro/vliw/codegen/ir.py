"""Region IR: the typed intermediate representation between region
discovery and host code generation.

The packet-compiled backend is a three-stage pipeline (see
``docs/ir.md``):

1. **translate** — target binary to cycle-annotated
   :class:`~repro.isa.c6x.packets.C6xProgram` (``repro.translator``);
2. **lower** — straight-line packet regions of that program to the
   *Region IR* in this module (:mod:`repro.vliw.codegen.lower`);
3. **emit** — Region IR to executable host code through a pluggable
   :class:`~repro.vliw.codegen.RegionEmitter`
   (:mod:`repro.vliw.codegen.emit_python`,
   :mod:`repro.vliw.codegen.emit_c`).

The IR is deliberately *complete*: every observable side effect of a
region — register and memory mutation, statically placed delay-slot
writebacks, batched cycle/counter updates, device-dispatch points,
shared-window guards, interpreter bail-outs and block-chain edges — is
an explicit node, so an emitter is a dumb renderer and never re-derives
semantics.  Epilogues are precomputed per exit site (counter prefixes,
writeback spills, pending-branch spill), which is what makes backends
that cannot reach Python state (the C emitter) able to report exits
through a fixed ABI instead.

Everything here is an immutable dataclass built from plain ints,
strings and tuples: Region IR pickles, so the program-level cache can
ship lowered regions to worker processes (:mod:`repro.eval.sharded`),
and it renders deterministically, so the C emitted from it can be
content-addressed on disk (:mod:`repro.vliw.codegen.native` keys
shared objects by the SHA-256 of the generated source — itself a pure
function of the IR set — plus the ABI revision).

Value operands
    Operands that may be forwarded from an earlier instruction of the
    same packet are ``("reg", n)`` (pre-packet register state),
    ``("var", m)`` (the phase-1 result of instruction *m*) or
    ``("cvar", m, p, n)`` (instruction *m*'s result if predicate
    variable *p* is true, else ``regs[n]`` — a predicated zero-delay
    forward).  Instruction numbers *m* name the per-region value and
    predicate variables of the generated code.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

from repro.isa.c6x.instructions import TOp

#: operand tuple kinds (see module docstring)
OPERAND_KINDS = ("reg", "var", "cvar")


@dataclass(frozen=True)
class Spill:
    """One delay-slot writeback returned to the core's in-flight dict."""

    mature: int  # matures at issue index ``ii0 + mature``
    dst: int
    var: int  # value variable id
    pred: int | None  # predicate variable id gating the spill


@dataclass(frozen=True)
class BranchSpill:
    """An unmatured branch returned to ``core._pending_branch``."""

    effective: int  # takes effect at issue index ``ii0 + effective``
    pred: int | None  # predicate variable id, None = unconditional
    target: int | None  # static packet index ...
    target_var: int | None  # ... or the id of a resolved indirect target


@dataclass(frozen=True)
class Epilogue:
    """The batched state flush of one region exit, fully precomputed.

    *executed* packets issued; commit sections ran for the first
    *commits_ran* packets (``executed + 1`` at interpreter bails, whose
    packet re-executes on the core).  Counter fields are the static
    prefix totals at this exit; ``use_ci``/``use_cn`` add the region's
    run-time predicated counters on top.  *ticks* is the batched
    sync-device advance still owed at this exit.
    """

    executed: int
    commits_ran: int
    pc: int | None  # static packet index to resume at ...
    pc_var: int | None  # ... or the id of a resolved indirect target
    instr_static: int
    use_ci: bool
    nop_static: int
    use_cn: bool
    src_static: int
    ticks: int
    spills: tuple[Spill, ...]
    branch: BranchSpill | None


@dataclass(frozen=True)
class PredDef:
    """Phase-1 predicate evaluation against pre-packet state."""

    var: int
    reg: int
    sense: bool  # True: taken when reg != 0


@dataclass(frozen=True)
class AluOp:
    """A register-result computation (phase 1 of the packet)."""

    var: int
    op: TOp
    dst: int | None
    src1: int | None
    src2: int | None
    imm: int | None
    pred: int | None


@dataclass(frozen=True)
class PlainLoad:
    """A load the translator proved targets plain data memory.

    Carries the interpreter *bail* for the run-time case where the
    address leaves the plain-memory window after all.
    """

    var: int
    op: TOp
    src1: int
    imm: int
    pred: int | None
    bail: Epilogue


@dataclass(frozen=True)
class DeviceLoad:
    """A device-flagged load: the full three-way address dispatch."""

    var: int
    op: TOp
    src1: int
    imm: int
    pred: int | None


@dataclass(frozen=True)
class StoreCheck:
    """Pre-apply range check of a plain store (bails before mutating)."""

    m: int  # instruction id: names the ``so{m}`` offset variable
    base: tuple
    imm: int
    size: int
    pred: int | None
    bail: Epilogue


@dataclass(frozen=True)
class PlainStore:
    """Apply-phase plain store through the checked ``so{m}`` offset."""

    m: int
    val: tuple
    size: int
    pred: int | None


@dataclass(frozen=True)
class DeviceStore:
    """A device-flagged store: the full three-way address dispatch."""

    m: int
    base: tuple
    val: tuple
    imm: int
    size: int
    pred: int | None


@dataclass(frozen=True)
class RegWrite:
    """Apply-phase zero-delay register writeback."""

    dst: int
    var: int
    pred: int | None


@dataclass(frozen=True)
class HaltOp:
    """Apply-phase HALT: sets the core's halted flag."""

    pred: int | None


@dataclass(frozen=True)
class IndirectBranch:
    """Apply-phase indirect-branch resolution.

    Maps the run-time source address to a packet index through the
    program's landing map; an unmapped address is a simulation error
    raised at this point, exactly like the interpretive core.
    """

    m: int  # names the ``bt{m}``/``bi{m}`` variables
    value: tuple
    pred: int | None


@dataclass(frozen=True)
class Commit:
    """A statically placed delay-slot writeback maturing at a packet."""

    dst: int
    var: int
    pred: int | None


@dataclass(frozen=True)
class GuardCheck:
    """One address test of a shared-window guard."""

    base: tuple
    imm: int
    pred_reg: int | None
    pred_sense: bool


@dataclass(frozen=True)
class SharedGuard:
    """Shared-segment guard of a device packet (multi-core lockstep).

    ``checks`` empty means the packet *always* runs interpreted (a
    store address depends on a same-packet result and cannot be
    pre-computed); the packet body after the guard is dead.
    """

    checks: tuple[GuardCheck, ...]
    bail: Epilogue


@dataclass(frozen=True)
class StallCheck:
    """One load of a device packet's blocking-read stall loop."""

    m: int  # names the ``w{m}`` window-offset variable
    src1: int
    imm: int
    pred_reg: int | None
    pred_sense: bool


@dataclass(frozen=True)
class PacketIR:
    """Everything one execute packet contributes to the region body.

    Field order mirrors emission order: writeback commits, shared
    guard, tick flush + stall loop, predicates, values, store checks,
    block statistics, run-time counters, apply-phase effects, device
    tick + exit-device check, halt exit.
    """

    index: int  # absolute packet index
    offset: int  # packets into the region
    entry_commit: bool  # scan the in-flight dict (entry window)
    commits: tuple[Commit, ...]
    device: bool
    guard: SharedGuard | None
    tick_flush: int  # batched ticks owed before this device packet
    stall_checks: tuple[StallCheck, ...]
    preds: tuple[PredDef, ...]
    values: tuple[AluOp | PlainLoad | DeviceLoad, ...]
    store_checks: tuple[StoreCheck, ...]
    block: tuple[int, int] | None  # (source_addr, n_instructions)
    ci_preds: tuple[int, ...]  # predicate vars counting into ``_ci``
    static_instr: int  # unpredicated instructions this packet
    static_nop: bool  # statically known all-NOP packet
    cn_preds: tuple[int, ...]  # all-predicated packet: run-time NOP test
    applies: tuple[HaltOp | IndirectBranch | PlainStore | DeviceStore
                   | RegWrite, ...]
    device_tick: bool
    exit_check: Epilogue | None  # device store: stop if the exit device fired
    halt_exit: tuple[bool, Epilogue] | None  # (unpredicated, epilogue)


@dataclass(frozen=True)
class BranchEnd:
    """Region ends at a matured branch."""

    pred: int | None
    target: int | None  # static packet index; None = indirect
    target_var: int | None
    taken: Epilogue
    fallthrough: Epilogue | None  # predicated branches fall through
    fall_pc: int


@dataclass(frozen=True)
class CutEnd:
    """Region ends at the length cap; chains to the next packet."""

    epilogue: Epilogue
    chain_pc: int


@dataclass(frozen=True)
class InterpEnd:
    """The next packet needs the interpretive core."""

    epilogue: Epilogue


@dataclass(frozen=True)
class RegionIR:
    """One lowered region: the unit emitters consume.

    Geometry and stall parameters are part of the IR because generated
    code bakes them in — two platforms with different parameters never
    share code (the program-level cache is keyed accordingly).
    """

    pc0: int
    n_packets: int
    end_kind: str  # 'branch' | 'halt' | 'cut' | 'interp'
    entry_window: int
    use_ci: bool
    use_cn: bool
    packets: tuple[PacketIR, ...]
    end: BranchEnd | CutEnd | InterpEnd | None  # None: 'halt' exits inline
    #: static successor entries (block-chain edges): fall-throughs and
    #: static branch targets; indirect targets resolve at run time
    chain_targets: tuple[int, ...]
    # -- baked-in platform geometry --------------------------------------
    mem_base: int
    mem_len: int
    sync_base: int
    bridge_base: int
    sync_stall: int
    bridge_stall: int

    @property
    def pure(self) -> bool:
        """True if no packet touches a device or shared window.

        Pure regions mutate only registers, plain memory and counters;
        device packets carry dispatch points (tick barriers, stall
        loops, the bridge-window pre-check that bails bus traffic to
        the interpreter).
        """
        return not any(p.device for p in self.packets)

    @property
    def has_indirect(self) -> bool:
        """True if the region resolves a register-indirect branch.

        Trace formation (:mod:`repro.vliw.codegen.trace`) treats every
        indirect-branch landing site as a potential chain successor of
        such a region.
        """
        return any(isinstance(node, IndirectBranch)
                   for p in self.packets for node in p.applies)


def _fmt(node, out: list) -> None:
    """Canonical flat rendering of an IR node for fingerprinting."""
    if isinstance(node, tuple):
        out.append("(")
        for item in node:
            _fmt(item, out)
        out.append(")")
    elif hasattr(node, "__dataclass_fields__"):
        out.append(type(node).__name__)
        out.append("{")
        for f in fields(node):
            _fmt(getattr(node, f.name), out)
        out.append("}")
    elif isinstance(node, TOp):
        out.append(node.name)
    else:
        out.append(repr(node))
    out.append(";")


def fingerprint(ir: RegionIR) -> str:
    """Stable content hash of one lowered region.

    Two regions with equal fingerprints generate identical host code
    under every emitter.  This is the golden-snapshot pin of
    ``tests/test_region_ir.py``; the native backend's on-disk cache is
    keyed one derivation later, by the SHA-256 of the *generated C*
    (see :func:`repro.vliw.codegen.native.source_digest`) so that an
    emitter change invalidates it even when the IR is unchanged.
    """
    out: list[str] = []
    _fmt(ir, out)
    return hashlib.sha256("".join(out).encode()).hexdigest()
